//! `fairness-repro` — workspace facade.
//!
//! This crate re-exports the whole reproduction stack so the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) can reach every layer through one dependency:
//!
//! * [`dcsim`] — the discrete-event engine;
//! * [`netsim`] — the packet-level datacenter network model;
//! * [`faircc`] — the paper's mechanisms (Variable AI, Sampling
//!   Frequency) and the congestion-control trait;
//! * [`cc_hpcc`] / [`cc_swift`] / [`cc_dcqcn`] — the protocols;
//! * [`workloads`] / [`metrics`] / [`fluid`] — traffic, measurement, and
//!   the analytic model;
//! * [`fairsim`] — ready-made paper scenarios;
//! * [`fleet`] — declarative scenario sweeps, seed ensembles, and
//!   statistical reports over those scenarios.
//!
//! Start with `examples/quickstart.rs`.

#![deny(unsafe_code)]

pub use cc_dcqcn;
pub use cc_hpcc;
pub use cc_swift;
pub use cc_timely;
pub use dcsim;
pub use faircc;
pub use fairsim;
pub use fleet;
pub use fluid;
pub use metrics;
pub use netsim;
pub use workloads;
