//! The analytical side of the paper: integrate the Section IV-B fluid
//! model and check the convergence condition (Figure 4).
//!
//! ```text
//! cargo run --release --example fluid_model
//! ```

use fairness_repro::fluid::{integrate, FluidParams};

fn main() {
    let p = FluidParams::figure4();
    println!("Fluid model (paper Figure 4):");
    println!(
        "  r = {} ns, MTU = {} B, s = {}, beta = {}, C1 = {} B/ns, C0 = {} B/ns",
        p.rtt_ns, p.mtu, p.s, p.beta, p.c1, p.c0
    );
    println!(
        "  convergence condition 1/r < (C1+C0)/(s*MTU): {}",
        p.sf_converges_faster()
    );
    println!();
    println!("  t(us)   gap per-RTT   gap SF   (R1-R0)-(S1-S0)");
    for s in integrate(&p, 400_000.0, 5.0, 20) {
        println!(
            "  {:>5.0}   {:>11.3}   {:>6.3}   {:>15.3}",
            s.t_ns / 1e3,
            s.gap_rtt(),
            s.gap_sf(),
            s.fairness_difference()
        );
    }
    println!();
    println!("Sampling Frequency's quadratic decay closes the inter-flow rate gap");
    println!("far faster than per-RTT decrease while rates are high — exactly when");
    println!("a line-rate flow has just joined and fairness matters most.");

    // Show the flip side too: when sampling is too sparse relative to the
    // RTT, the advantage disappears.
    let sparse = FluidParams {
        s: 30_000.0,
        ..FluidParams::figure4()
    };
    println!(
        "\nWith s = 30000 (absurdly sparse sampling) the condition flips: {}",
        sparse.sf_converges_faster()
    );
}
