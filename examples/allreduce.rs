//! Distributed deep learning on a shared cluster — the paper's motivating
//! application.
//!
//! A ring all-reduce (the gradient exchange of data-parallel training)
//! moves large, bandwidth-bound flows between neighbouring workers. On a
//! shared fat-tree the ring competes with everyone else's small-flow
//! traffic, and because small flows *join at line rate*, the ring's long
//! flows are exactly the victims of slow convergence to fairness: the
//! all-reduce completes only when its **slowest** flow completes, so its
//! step time is a max over per-link tails.
//!
//! This example runs one all-reduce round (8 workers × 4 MB gradient
//! shards) against Alibaba-storage-shaped background traffic, under HPCC
//! and HPCC VAI SF, and reports the all-reduce completion time.
//!
//! ```text
//! cargo run --release --example allreduce
//! ```

use fairness_repro::dcsim::{Bytes, Nanos, Simulation};
use fairness_repro::fairsim::{CcSpec, NetEnv, ProtocolKind, Variant};
use fairness_repro::netsim::{
    run_watched, FatTreeConfig, FlowId, FlowSpec, MonitorConfig, NetConfig, RunOutcome,
};
use fairness_repro::workloads::{
    arrivals::{poisson_arrivals, ArrivalConfig},
    distributions,
};

const WORKERS: usize = 8;
const SHARD: u64 = 4_000_000; // 4 MB per ring step

fn run(variant: Variant) -> (String, f64, f64) {
    let topo = FatTreeConfig::reduced().build();
    let env = NetEnv::fat_tree(topo.base_rtt);
    let hosts = topo.hosts.clone();
    let spec = CcSpec::new(ProtocolKind::Hpcc, variant);
    let mut net = topo
        .builder
        .build(NetConfig::default(), MonitorConfig::default());

    // The ring: workers spread across the fabric (every 4th host, so the
    // ring crosses pods), each sending one shard to its successor.
    let mut ring_ids: Vec<FlowId> = Vec::new();
    for w in 0..WORKERS {
        let src = hosts[w * 4];
        let dst = hosts[((w + 1) % WORKERS) * 4];
        let id = net.add_flow(
            FlowSpec {
                src,
                dst,
                size: Bytes(SHARD),
                start: Nanos::from_micros(100),
            },
            spec.build(&env, 7_000 + w as u64),
        );
        ring_ids.push(id);
    }

    // Background: storage-shaped small flows at 30% load.
    let bg = poisson_arrivals(
        &ArrivalConfig {
            n_hosts: hosts.len(),
            host_rate: topo.host_rate,
            load: 0.3,
            horizon: Nanos::from_millis(2),
            seed: 99,
        },
        &distributions::ali_storage(),
    );
    let n_bg = bg.len();
    for (i, f) in bg.iter().enumerate() {
        net.add_flow(
            FlowSpec {
                src: hosts[f.src],
                dst: hosts[f.dst],
                size: f.size,
                start: f.start,
            },
            spec.build(&env, 50_000 + i as u64),
        );
    }

    let label = spec.label();
    let mut sim = Simulation::new(net);
    {
        let (world, queue) = sim.split_mut();
        world.prime(queue);
    }
    let outcome = run_watched(
        &mut sim,
        Nanos::from_millis(20),
        u64::MAX,
        Nanos::from_millis(2),
    );
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "all-reduce round must drain"
    );
    let net = sim.world();

    let finishes: Vec<f64> = ring_ids
        .iter()
        .map(|id| {
            net.flow(*id)
                .finished
                .expect("ring flow must complete")
                .as_micros_f64()
        })
        .collect();
    let step_time = finishes.iter().cloned().fold(f64::MIN, f64::max) - 100.0;
    let mean_fct = finishes.iter().map(|f| f - 100.0).sum::<f64>() / WORKERS as f64;
    println!(
        "  {label:<14} {n_bg} background flows; ring mean FCT {mean_fct:>7.0} us, \
         all-reduce step {step_time:>7.0} us"
    );
    (label, step_time, mean_fct)
}

fn main() {
    println!(
        "ring all-reduce: {WORKERS} workers x {} MB shards + storage background\n",
        SHARD / 1_000_000
    );
    let (_, base_step, _) = run(Variant::Default);
    let (_, mech_step, _) = run(Variant::VaiSf);
    println!(
        "\nall-reduce step time (max over ring flows): {:.2}x {} with VAI SF",
        (base_step / mech_step).max(mech_step / base_step),
        if mech_step < base_step {
            "faster"
        } else {
            "slower"
        },
    );
    println!("The step is a max over flows, so shaving the per-flow tail shaves the step.");
}
