//! The paper's headline microbenchmark, as an example: a 16-1 staggered
//! incast under stock HPCC/Swift versus the VAI + Sampling Frequency
//! variants.
//!
//! Prints each variant's convergence-to-fairness time, bottleneck queue,
//! and — the quantity the paper's Figures 2/3/8/9 visualize — the spread
//! between the first and last flow completion. Under a fair protocol the
//! staggered flows all finish together; under a slow-converging one, the
//! *last* flows to join finish *first*.
//!
//! ```text
//! cargo run --release --example incast_fairness
//! ```

use fairness_repro::fairsim::{CcSpec, IncastScenario, ProtocolKind, Variant};

fn main() {
    println!("16-1 staggered incast (two 1MB flows join every 20us):\n");
    println!(
        "{:<22} {:>16} {:>12} {:>12} {:>12} {:>18}",
        "variant",
        "converge@0.9(us)",
        "unfairness",
        "peak q (KB)",
        "mean q (KB)",
        "finish spread(us)"
    );
    println!("{}", "-".repeat(98));

    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        for variant in [Variant::Default, Variant::VaiSf] {
            let res = IncastScenario::paper(16, CcSpec::new(kind, variant), 42).run();
            assert!(res.all_finished, "incast must drain");
            println!(
                "{:<22} {:>16} {:>12.0} {:>12.1} {:>12.1} {:>18.0}",
                res.label,
                res.convergence_time(0.9)
                    .map(|t| format!("{t:.0}"))
                    .unwrap_or_else(|| "never".into()),
                res.unfairness_integral(),
                res.peak_queue() as f64 / 1e3,
                res.mean_queue() / 1e3,
                res.finish_spread_us(),
            );
        }
        println!();
    }

    println!("A small finish spread means the staggered flows completed together —");
    println!("the fast-convergence-to-fairness property the paper's mechanisms add.");
}
