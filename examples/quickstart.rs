//! Quickstart: two HPCC flows share a 100 Gbps bottleneck.
//!
//! Builds the smallest interesting network (three hosts, one switch),
//! runs one long flow, lets a second flow join mid-stream, and prints how
//! the protocol splits the bottleneck — the exact situation (a new
//! line-rate flow joining) whose unfairness the paper attacks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fairness_repro::dcsim::{Bytes, Nanos, Simulation};
use fairness_repro::fairsim::{CcSpec, NetEnv, ProtocolKind, Variant};
use fairness_repro::metrics::jain;
use fairness_repro::netsim::{run_watched, FlowSpec, MonitorConfig, NetConfig, Topology};

fn main() {
    // 1. Topology: a 3-host star (two senders, one receiver).
    let topo = Topology::paper_star(3);
    let hosts = topo.hosts.clone();
    let switch = topo.switches[0];
    let env = NetEnv::incast_star(topo.base_rtt);

    // 2. Network with per-flow rate sampling every 10 us.
    let mut net = topo.builder.build(
        NetConfig::default(),
        MonitorConfig {
            sample_interval: Some(Nanos::from_micros(10)),
            sample_until: Nanos::from_millis(5),
            watch_ports: vec![],
            track_flow_rates: true,
        },
    );
    net.monitor.cfg.watch_ports = vec![net.port_towards(switch, hosts[2]).expect("port")];

    // 3. Two HPCC flows to host 2: the second joins 100 us in, at line
    //    rate, stealing bandwidth from the first.
    let spec = CcSpec::new(ProtocolKind::Hpcc, Variant::Default);
    for (i, start_us) in [(0u64, 0u64), (1, 100)] {
        net.add_flow(
            FlowSpec {
                src: hosts[i as usize],
                dst: hosts[2],
                size: Bytes::from_mb(2),
                start: Nanos::from_micros(start_us),
            },
            spec.build(&env, i),
        );
    }

    // 4. Run.
    let mut sim = Simulation::new(net);
    {
        let (world, queue) = sim.split_mut();
        world.prime(queue);
    }
    let outcome = run_watched(
        &mut sim,
        Nanos::from_millis(5),
        u64::MAX,
        Nanos::from_millis(1),
    );
    let net = sim.world();
    println!("run outcome: {outcome}");
    println!();

    // 5. Report: per-flow goodput over time and the fairness index.
    println!("time(us)  flow0(Gbps)  flow1(Gbps)  queue(KB)  jain");
    println!("-----------------------------------------------------");
    for s in net.monitor.samples().iter().step_by(4) {
        let rate = |id: u32| {
            s.flow_rates
                .iter()
                .find(|(f, _)| f.0 == id)
                .map(|(_, r)| r / 1e9)
                .unwrap_or(0.0)
        };
        let rates: Vec<f64> = s.flow_rates.iter().map(|(_, r)| *r).collect();
        println!(
            "{:>8.0}  {:>11.1}  {:>11.1}  {:>9.1}  {:.3}",
            s.t.as_micros_f64(),
            rate(0),
            rate(1),
            s.queue_bytes[0] as f64 / 1e3,
            if rates.is_empty() { 1.0 } else { jain(&rates) },
        );
    }
    println!();
    for r in net.monitor.fcts() {
        println!(
            "flow {} ({}): start {} -> finish {}  (FCT {})",
            r.flow.0,
            r.size,
            r.start,
            r.finish,
            r.fct()
        );
    }
}
