//! Long-flow tail latency in a datacenter mix (a scaled-down Figure 10).
//!
//! Runs Facebook-Hadoop-shaped Poisson traffic at 50% load over a
//! 32-host 3-layer fat-tree, under HPCC and HPCC VAI SF, and reports the
//! 99.9% FCT slowdown by flow size. Long (> 1 MB) flows are
//! bandwidth-bound, so their tail is exactly where slow convergence to
//! fairness hurts.
//!
//! ```text
//! cargo run --release --example datacenter_tails
//! ```

use fairness_repro::fairsim::scenarios::LONG_FLOW_BYTES;
use fairness_repro::fairsim::{CcSpec, DatacenterScenario, ProtocolKind, Variant};

fn main() {
    let mut summaries = Vec::new();
    for variant in [Variant::Default, Variant::VaiSf] {
        let sc = DatacenterScenario::reduced(
            vec!["FB_Hadoop".to_string()],
            CcSpec::new(ProtocolKind::Hpcc, variant),
            42,
        );
        println!(
            "running {:?} on a {}-host fat-tree at {:.0}% load ...",
            sc.cc.label(),
            sc.fat_tree.num_hosts(),
            sc.load * 100.0
        );
        let res = sc.run();
        println!(
            "  {} flows offered, {} completed\n",
            res.n_flows, res.completed
        );

        println!("  {:<12} {:>10} {:>10}", "size bin", "p99.9", "median");
        for p in res.table.points.iter().rev().take(8).rev() {
            println!(
                "  {:<12} {:>9.1}x {:>9.1}x",
                fairness_repro::fairsim::render::fmt_size(p.size),
                p.tail,
                p.median
            );
        }
        let tail = res
            .table
            .mean_tail_above(LONG_FLOW_BYTES)
            .unwrap_or(f64::NAN);
        println!("\n  long-flow (>1MB) mean p99.9 slowdown: {tail:.1}x\n");
        summaries.push((res.label.clone(), tail));
    }

    let (base, vai_sf) = (&summaries[0], &summaries[1]);
    println!(
        "{} -> {}: long-flow tail improved {:.2}x (the paper reports ~2x at full scale)",
        base.0,
        vai_sf.0,
        base.1 / vai_sf.1
    );
}
