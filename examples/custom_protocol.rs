//! Extending the library: plug a *custom* congestion-control algorithm
//! into the simulator and bolt the paper's mechanisms onto it.
//!
//! The paper argues Variable AI and Sampling Frequency are "broadly
//! applicable to other sender reaction-based protocols". This example
//! demonstrates exactly that: a ~60-line AIMD protocol that halves its
//! window whenever per-hop INT telemetry reports a queue above a
//! threshold — a *deterministic* congestion signal, so (per the paper's
//! Section III-C) every competing flow reacts identically and convergence
//! to fairness is slow. Bolting on `faircc::VariableAi` and
//! `faircc::SamplingFrequency` — the same building blocks the HPCC and
//! Swift crates use — repairs it.
//!
//! ```text
//! cargo run --release --example custom_protocol
//! ```

use fairness_repro::dcsim::{BitRate, Bytes, Nanos, Simulation};
use fairness_repro::faircc::{
    AckFeedback, CcMode, CongestionControl, SamplingFrequency, SenderLimits, SfConfig, VaiConfig,
    VariableAi,
};
use fairness_repro::netsim::{
    run_watched, FlowSpec, MonitorConfig, NetConfig, RunOutcome, Topology,
};

/// A toy window-based AIMD protocol driven by a deterministic INT
/// queue-depth threshold, with optional Variable AI and Sampling
/// Frequency.
struct IntAimd {
    base_rtt: Nanos,
    /// Window in bytes.
    cwnd: f64,
    max_cwnd: f64,
    /// Base additive increase per RTT, bytes (50 Mbps equivalent).
    ai: f64,
    /// Queue depth treated as congestion.
    qlen_thresh: f64,
    acked_since_update: f64,
    vai: Option<VariableAi>,
    sf: Option<SamplingFrequency>,
    last_decrease: Nanos,
    name: &'static str,
}

impl IntAimd {
    fn new(base_rtt: Nanos, line: BitRate, with_mechanisms: bool) -> Self {
        let max_cwnd = line.bdp(base_rtt).as_f64();
        IntAimd {
            base_rtt,
            cwnd: max_cwnd, // RDMA convention: start at line rate
            max_cwnd,
            ai: BitRate::from_mbps(50).as_f64() * base_rtt.as_secs_f64() / 8.0,
            qlen_thresh: 30_000.0,
            acked_since_update: 0.0,
            // The same parameterization HPCC's VAI uses: congestion is a
            // queue depth in bytes, one token per KB, threshold = min BDP.
            vai: with_mechanisms.then(|| VariableAi::new(VaiConfig::hpcc_default(50_000.0))),
            sf: with_mechanisms.then(|| SamplingFrequency::new(SfConfig::paper_default())),
            last_decrease: Nanos::ZERO,
            name: if with_mechanisms {
                "int-aimd VAI SF"
            } else {
                "int-aimd"
            },
        }
    }
}

impl CongestionControl for IntAimd {
    fn on_ack(&mut self, fb: &AckFeedback) {
        self.acked_since_update += fb.acked.as_f64();
        let qlen = fb.int.max_qlen().as_f64();
        let congested = qlen > self.qlen_thresh;
        if let Some(vai) = &mut self.vai {
            vai.observe(qlen, congested);
        }
        let rtt_boundary = self.acked_since_update >= self.cwnd;
        if rtt_boundary {
            self.acked_since_update = 0.0;
            if let Some(vai) = &mut self.vai {
                vai.on_rtt_end();
            }
        }

        if congested {
            // Multiplicative decrease, gated per-RTT (stock) or per `s`
            // ACKs (Sampling Frequency).
            let may = match &mut self.sf {
                Some(sf) => sf.on_ack(),
                None => fb.now.saturating_sub(self.last_decrease) >= self.base_rtt,
            };
            if may {
                self.cwnd /= 2.0;
                self.last_decrease = fb.now;
            }
        } else {
            // Additive increase, VAI-scaled, amortized per ACK.
            let mult = self
                .vai
                .as_mut()
                .map(|v| v.ai_multiplier(rtt_boundary))
                .unwrap_or(1.0);
            self.cwnd += self.ai * mult * fb.acked.as_f64() / self.cwnd;
        }
        self.cwnd = self.cwnd.clamp(1_000.0, self.max_cwnd);
    }

    fn limits(&self) -> SenderLimits {
        SenderLimits::windowed(self.cwnd, self.base_rtt)
    }

    fn mode(&self) -> CcMode {
        CcMode::Window
    }

    fn name(&self) -> &str {
        self.name
    }
}

fn run(with_mechanisms: bool) -> (String, f64) {
    // The paper's 16-1 staggered incast.
    let topo = Topology::paper_star(17);
    let hosts = topo.hosts.clone();
    let base_rtt = topo.base_rtt;
    let mut net = topo
        .builder
        .build(NetConfig::default(), MonitorConfig::default());
    for i in 0..16 {
        net.add_flow(
            FlowSpec {
                src: hosts[i],
                dst: hosts[16],
                size: Bytes::from_mb(1),
                start: Nanos::from_micros(20 * (i as u64 / 2)),
            },
            Box::new(IntAimd::new(
                base_rtt,
                BitRate::from_gbps(100),
                with_mechanisms,
            )),
        );
    }
    let label = net
        .flow(fairness_repro::netsim::FlowId(0))
        .cc
        .name()
        .to_string();
    let mut sim = Simulation::new(net);
    {
        let (world, queue) = sim.split_mut();
        world.prime(queue);
    }
    let outcome = run_watched(
        &mut sim,
        Nanos::from_millis(50),
        u64::MAX,
        Nanos::from_millis(5),
    );
    assert_eq!(outcome, RunOutcome::Completed, "incast must drain");
    let net = sim.world();
    let finishes: Vec<f64> = net
        .monitor
        .fcts()
        .iter()
        .map(|r| r.finish.as_micros_f64())
        .collect();
    let spread = finishes.iter().cloned().fold(f64::MIN, f64::max)
        - finishes.iter().cloned().fold(f64::MAX, f64::min);
    (label, spread)
}

fn main() {
    println!("16-1 staggered incast with a custom INT-threshold AIMD protocol:\n");
    let (base_label, base) = run(false);
    let (mech_label, mech) = run(true);
    println!("  {base_label:<18} finish spread = {base:>7.0} us");
    println!("  {mech_label:<18} finish spread = {mech:>7.0} us");
    println!(
        "\nVariable AI + Sampling Frequency transplanted onto a third-party \
         protocol with deterministic feedback: finish spread improved {:.2}x.",
        base / mech
    );
}
