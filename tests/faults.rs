//! Fault-schedule determinism: identical seeds and fault plans must
//! yield bit-identical runs across reruns and across event schedulers
//! (binary heap vs hierarchical timing wheel), *including* mid-flight
//! link-down drops, failover rerouting, wire loss, and RTO backoff with
//! deterministic jitter. Also exercises the stall watchdog end to end on
//! a permanently partitioned fabric.

use fairness_repro::dcsim::{
    BitRate, Bytes, EventQueue, Nanos, Scheduler, SchedulerKind, Simulation, TimingWheel,
};
use fairness_repro::fairsim::{CcSpec, NetEnv, ProtocolKind, Variant};
use fairness_repro::netsim::{
    self, run_watched, FaultPlan, FaultStats, FlapSchedule, FlowSpec, LinkFault, LossModel,
    MonitorConfig, NetBuilder, NetConfig, RtoBackoff, RunOutcome,
};

/// FNV-1a over a word stream — the same trace-fingerprint hash the
/// scheduler golden tests use.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Everything a faulted golden run is compared on: the structured
/// outcome, all four fault counters, dispatch count, per-flow FCTs, and
/// a hash folding the lot together.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    outcome: RunOutcome,
    stats: FaultStats,
    events_handled: u64,
    fcts: Vec<(u32, u64, u64)>,
    trace_hash: u64,
}

/// Node ids of the diamond fabric (fixed by construction order below).
struct Diamond {
    ingress: netsim::NodeId,
    upper: netsim::NodeId,
    lower: netsim::NodeId,
}

fn diamond_ids() -> Diamond {
    // 8 hosts first (ids 0..8), then switches in, upper, lower, out.
    Diamond {
        ingress: netsim::NodeId(8),
        upper: netsim::NodeId(9),
        lower: netsim::NodeId(10),
    }
}

/// Four flows crossing a two-path diamond: every sender shares the
/// ingress switch, ECMP spreads flows over the upper/lower spine, and a
/// fault plan can cut or degrade either path while traffic is in flight.
fn build_diamond(faults: FaultPlan) -> netsim::Network {
    let mut b = NetBuilder::new();
    let senders: Vec<_> = (0..4).map(|_| b.add_host()).collect();
    let receivers: Vec<_> = (0..4).map(|_| b.add_host()).collect();
    let ingress = b.add_switch();
    let upper = b.add_switch();
    let lower = b.add_switch();
    let egress = b.add_switch();
    for &h in &senders {
        b.link(h, ingress, BitRate::from_gbps(100), Nanos::MICRO);
    }
    b.link(ingress, upper, BitRate::from_gbps(100), Nanos::MICRO);
    b.link(ingress, lower, BitRate::from_gbps(100), Nanos::MICRO);
    b.link(upper, egress, BitRate::from_gbps(100), Nanos::MICRO);
    b.link(lower, egress, BitRate::from_gbps(100), Nanos::MICRO);
    for &h in &receivers {
        b.link(egress, h, BitRate::from_gbps(100), Nanos::MICRO);
    }
    let mut net = b.build(
        NetConfig {
            rto: Nanos::from_micros(50),
            rto_backoff: RtoBackoff {
                multiplier: 2,
                cap: Nanos::from_micros(400),
                jitter_frac: 0.1, // exercise the fault-stream jitter draw
            },
            faults,
            ..NetConfig::default()
        },
        MonitorConfig::default(),
    );
    let env = NetEnv::incast_star(Nanos::from_micros(7));
    let cc = CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf);
    for (i, (&src, &dst)) in senders.iter().zip(&receivers).enumerate() {
        net.add_flow(
            FlowSpec {
                src,
                dst,
                size: Bytes::from_kb(300),
                start: Nanos::ZERO,
            },
            cc.build(&env, 100 + i as u64),
        );
    }
    net
}

/// Run the diamond under `faults` to a golden fingerprint. The watchdog
/// (2 ms) comfortably exceeds both the RTT (~6 µs) and the largest
/// backed-off RTO (400 µs cap), so slow recovery never reads as a stall.
fn diamond_golden(scheduler: SchedulerKind, faults: &FaultPlan) -> Golden {
    fn go<S: Scheduler<netsim::Event> + Default>(faults: FaultPlan) -> Golden {
        let mut sim = Simulation::with_scheduler(build_diamond(faults), S::default());
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        let outcome = run_watched(
            &mut sim,
            Nanos::from_millis(20),
            u64::MAX,
            Nanos::from_millis(2),
        );
        let stats = sim.world().fault_stats();
        let fcts: Vec<(u32, u64, u64)> = sim
            .world()
            .monitor
            .fcts()
            .iter()
            .map(|r| (r.flow.0, r.start.as_u64(), r.finish.as_u64()))
            .collect();
        let words = fcts
            .iter()
            .flat_map(|&(f, s, e)| [u64::from(f), s, e])
            .chain([
                stats.wire_drops,
                stats.link_down_drops,
                stats.reroutes,
                stats.rto_fires,
            ])
            .collect::<Vec<_>>();
        Golden {
            outcome,
            stats,
            events_handled: sim.events_handled(),
            fcts,
            trace_hash: fnv1a(words),
        }
    }

    match scheduler {
        SchedulerKind::Heap => go::<EventQueue<netsim::Event>>(faults.clone()),
        SchedulerKind::Wheel => go::<TimingWheel<netsim::Event>>(faults.clone()),
    }
}

/// Outage on the upper path at 12 µs (packets in flight on it are
/// destroyed, survivors fail over to the lower path), Bernoulli wire
/// loss on the lower path, and a badly degraded host link on the first
/// receiver. Loss applies to both link directions, so the host link
/// also eats cumulative ACKs — a gap NACK can never repair those, which
/// forces the RTO/backoff machinery to fire. Every fault mechanism is
/// exercised in one run.
fn loss_and_cut_plan() -> FaultPlan {
    let d = diamond_ids();
    FaultPlan::none()
        .link(
            LinkFault::on(d.ingress, d.upper).with_flap(FlapSchedule::once(
                Nanos::from_micros(12),
                Nanos::from_micros(30),
            )),
        )
        .link(LinkFault::on(d.ingress, d.lower).with_loss(LossModel::uniform(0.01)))
        .link(
            LinkFault::on(diamond_egress(), netsim::NodeId(4)).with_loss(LossModel::uniform(0.25)),
        )
}

/// The egress switch id (fixed by construction order in
/// [`build_diamond`]: 8 hosts, then ingress/upper/lower/egress).
fn diamond_egress() -> netsim::NodeId {
    netsim::NodeId(11)
}

/// Gilbert–Elliott bursty loss on both spine paths, no topology changes.
fn bursty_plan() -> FaultPlan {
    let d = diamond_ids();
    let ge = LossModel::bursty(0.02, 0.2, 0.5);
    FaultPlan::none()
        .link(LinkFault::on(d.ingress, d.upper).with_loss(ge))
        .link(LinkFault::on(d.ingress, d.lower).with_loss(ge))
}

#[test]
fn faulted_golden_is_scheduler_and_run_invariant() {
    let plan = loss_and_cut_plan();
    let runs = [
        diamond_golden(SchedulerKind::Heap, &plan),
        diamond_golden(SchedulerKind::Heap, &plan),
        diamond_golden(SchedulerKind::Wheel, &plan),
        diamond_golden(SchedulerKind::Wheel, &plan),
    ];
    // The faults really fired: the outage destroyed in-flight frames,
    // both the down and the up transition recomputed routes, the lossy
    // wire ate packets, and go-back-N rewound senders — yet every flow
    // still completed.
    let g = &runs[0];
    assert_eq!(g.outcome, RunOutcome::Completed);
    assert_eq!(g.fcts.len(), 4, "all four flows must complete");
    assert!(
        g.stats.link_down_drops > 0,
        "outage caught nothing in flight"
    );
    assert!(g.stats.reroutes >= 2, "down+up must both recompute routes");
    assert!(g.stats.wire_drops > 0, "lossy wire dropped nothing");
    assert!(g.stats.rto_fires > 0, "recovery never rewound a sender");
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(&runs[0], r, "faulted run {i} diverged from run 0");
    }
}

#[test]
fn bursty_loss_golden_is_scheduler_and_run_invariant() {
    let plan = bursty_plan();
    let runs = [
        diamond_golden(SchedulerKind::Heap, &plan),
        diamond_golden(SchedulerKind::Heap, &plan),
        diamond_golden(SchedulerKind::Wheel, &plan),
        diamond_golden(SchedulerKind::Wheel, &plan),
    ];
    let g = &runs[0];
    assert_eq!(g.outcome, RunOutcome::Completed);
    assert!(g.stats.wire_drops > 0, "bursty channel dropped nothing");
    assert_eq!(g.stats.reroutes, 0, "loss-only plan must not reroute");
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(&runs[0], r, "bursty run {i} diverged from run 0");
    }
}

#[test]
fn empty_plan_matches_faultless_build() {
    // Zero-cost-when-off at the integration level: an explicit empty
    // plan is bit-identical to the same network with default config
    // faults, and no fault counter ever moves.
    let a = diamond_golden(SchedulerKind::Heap, &FaultPlan::none());
    let b = diamond_golden(SchedulerKind::Wheel, &FaultPlan::none());
    assert_eq!(a, b);
    assert_eq!(a.stats, FaultStats::default());
    assert_eq!(a.outcome, RunOutcome::Completed);
}

#[test]
fn fault_plans_change_the_fingerprint() {
    // The golden hash is a real function of the fault schedule.
    let clean = diamond_golden(SchedulerKind::Heap, &FaultPlan::none());
    let faulted = diamond_golden(SchedulerKind::Heap, &loss_and_cut_plan());
    let bursty = diamond_golden(SchedulerKind::Heap, &bursty_plan());
    assert_ne!(clean.trace_hash, faulted.trace_hash);
    assert_ne!(clean.trace_hash, bursty.trace_hash);
    assert_ne!(faulted.trace_hash, bursty.trace_hash);
}

#[test]
fn severed_fabric_stalls_with_offender_list() {
    // Cut both spine paths permanently while all four flows are mid
    // transfer: no route can ever deliver another byte, RTO timers keep
    // the event queue alive, and the watchdog must call the stall well
    // before the 20 ms horizon burns.
    let d = diamond_ids();
    let plan = FaultPlan::none()
        .link(
            LinkFault::on(d.ingress, d.upper)
                .with_flap(FlapSchedule::permanent(Nanos::from_micros(12))),
        )
        .link(
            LinkFault::on(d.ingress, d.lower)
                .with_flap(FlapSchedule::permanent(Nanos::from_micros(12))),
        );
    let mut sim = Simulation::new(build_diamond(plan));
    {
        let (w, q) = sim.split_mut();
        w.prime(q);
    }
    let outcome = run_watched(
        &mut sim,
        Nanos::from_millis(20),
        u64::MAX,
        Nanos::from_millis(2),
    );
    match outcome {
        RunOutcome::Stalled { flows } => {
            assert_eq!(flows.len(), 4, "all four flows are wedged: {flows:?}");
        }
        other => panic!("expected a stall, got {other}"),
    }
    assert!(
        sim.now() < Nanos::from_millis(20),
        "stall must be detected early, not at the horizon"
    );
    assert!(sim.world().fault_stats().link_down_drops > 0);
}
