//! Property-based integration tests: random topologies and traffic must
//! uphold the simulator's conservation invariants. Randomness comes from
//! the in-repo deterministic RNG (seeded per case), so failures replay
//! exactly.

use fairness_repro::dcsim::{BitRate, Bytes, DetRng, Nanos, Simulation};
use fairness_repro::faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};
use fairness_repro::netsim::{FlowSpec, MonitorConfig, NetBuilder, NetConfig};

struct FixedRate(BitRate);
impl CongestionControl for FixedRate {
    fn on_ack(&mut self, _: &AckFeedback) {}
    fn limits(&self) -> SenderLimits {
        SenderLimits::rate_based(self.0)
    }
    fn mode(&self) -> CcMode {
        CcMode::Rate
    }
    fn name(&self) -> &str {
        "fixed"
    }
}

/// On a random star with random fixed-rate flows, every flow always
/// completes, every byte is conserved (acked == size), and no FCT
/// beats the physics bound size/line_rate.
#[test]
fn prop_star_flows_complete_and_conserve_bytes() {
    for case in 0..24u64 {
        let mut rng = DetRng::new(0xface_0000 + case);
        let n_hosts = 3 + rng.below(7) as usize;
        let mut b = NetBuilder::new();
        let hosts: Vec<_> = (0..n_hosts).map(|_| b.add_host()).collect();
        let sw = b.add_switch();
        for &h in &hosts {
            b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
        }
        let mut net = b.build(NetConfig::default(), MonitorConfig::default());
        let mut n_flows = 0usize;
        for _ in 0..1 + rng.below(11) {
            let src = rng.below(n_hosts as u64) as usize;
            let dst = rng.below(n_hosts as u64) as usize;
            if src == dst {
                continue;
            }
            n_flows += 1;
            net.add_flow(
                FlowSpec {
                    src: hosts[src],
                    dst: hosts[dst],
                    size: Bytes(10_000 + rng.below(490_000)),
                    start: Nanos::from_micros(rng.below(200)),
                },
                Box::new(FixedRate(BitRate::from_gbps(1 + rng.below(79)))),
            );
        }
        if n_flows == 0 {
            continue;
        }
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(200));
        let net = sim.world();
        assert!(net.all_finished(), "case {case}: some flow never completed");
        for (i, rec) in net.monitor.fcts().iter().enumerate() {
            let f = net.flow(rec.flow);
            // Byte conservation: the sender accounted exactly the flow
            // size, no more (no duplication), no less (no loss).
            assert_eq!(f.acked, f.spec.size.0, "case {case}");
            assert_eq!(f.sent, f.spec.size.0, "case {case}");
            // Physics: FCT at least size / line-rate.
            let floor = BitRate::from_gbps(100).serialization_delay(f.spec.size);
            assert!(
                rec.fct() >= floor,
                "case {case}: flow {i} FCT {:?} beat serialization floor {floor:?}",
                rec.fct(),
            );
        }
    }
}

/// The event engine never runs time backwards and conserves pushes/pops
/// across arbitrary interleaving (driven through the whole network stack
/// rather than the raw queue).
#[test]
fn prop_simulation_time_monotone() {
    for seed in (0..1000u64).step_by(41) {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let sw = b.add_switch();
        b.link(h0, sw, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(h1, sw, BitRate::from_gbps(100), Nanos::MICRO);
        let mut net = b.build(
            NetConfig {
                seed,
                ..NetConfig::default()
            },
            MonitorConfig {
                sample_interval: Some(Nanos::from_micros(7)),
                sample_until: Nanos::from_millis(1),
                watch_ports: vec![],
                track_flow_rates: true,
            },
        );
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(100_000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(50))),
        );
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        let mut last = Nanos::ZERO;
        while sim.step() {
            assert!(sim.now() >= last, "seed {seed}: time ran backwards");
            last = sim.now();
        }
        assert!(sim.world().all_finished());
        // Samples are strictly time-ordered.
        let samples = sim.world().monitor.samples();
        for w in samples.windows(2) {
            assert!(w[1].t > w[0].t, "seed {seed}: samples out of order");
        }
    }
}
