//! Property-based integration tests: random topologies and traffic must
//! uphold the simulator's conservation invariants.

use fairness_repro::dcsim::{BitRate, Bytes, Nanos, Simulation};
use fairness_repro::faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};
use fairness_repro::netsim::{FlowSpec, MonitorConfig, NetBuilder, NetConfig};
use proptest::prelude::*;

struct FixedRate(BitRate);
impl CongestionControl for FixedRate {
    fn on_ack(&mut self, _: &AckFeedback) {}
    fn limits(&self) -> SenderLimits {
        SenderLimits::rate_based(self.0)
    }
    fn mode(&self) -> CcMode {
        CcMode::Rate
    }
    fn name(&self) -> &str {
        "fixed"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a random star with random fixed-rate flows, every flow always
    /// completes, every byte is conserved (acked == size), and no FCT
    /// beats the physics bound size/line_rate.
    #[test]
    fn prop_star_flows_complete_and_conserve_bytes(
        n_hosts in 3usize..10,
        flows in prop::collection::vec(
            (0usize..20, 0usize..20, 10_000u64..500_000, 0u64..200, 1u64..80),
            1..12,
        ),
    ) {
        let mut b = NetBuilder::new();
        let hosts: Vec<_> = (0..n_hosts).map(|_| b.add_host()).collect();
        let sw = b.add_switch();
        for &h in &hosts {
            b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
        }
        let mut net = b.build(NetConfig::default(), MonitorConfig::default());
        let mut specs = Vec::new();
        for (src, dst, size, start_us, rate_g) in flows {
            let src = src % n_hosts;
            let dst = dst % n_hosts;
            if src == dst {
                continue;
            }
            specs.push((src, dst, size));
            net.add_flow(
                FlowSpec {
                    src: hosts[src],
                    dst: hosts[dst],
                    size: Bytes(size),
                    start: Nanos::from_micros(start_us),
                },
                Box::new(FixedRate(BitRate::from_gbps(rate_g))),
            );
        }
        prop_assume!(!specs.is_empty());
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(200));
        let net = sim.world();
        prop_assert!(net.all_finished(), "some flow never completed");
        for (i, rec) in net.monitor.fcts().iter().enumerate() {
            let f = net.flow(rec.flow);
            // Byte conservation: the sender accounted exactly the flow
            // size, no more (no duplication), no less (no loss).
            prop_assert_eq!(f.acked, f.spec.size.0);
            prop_assert_eq!(f.sent, f.spec.size.0);
            // Physics: FCT at least size / line-rate.
            let floor = BitRate::from_gbps(100).serialization_delay(f.spec.size);
            prop_assert!(
                rec.fct() >= floor,
                "flow {} FCT {:?} beat serialization floor {:?}",
                i, rec.fct(), floor
            );
        }
    }

    /// The event engine never runs time backwards and conserves
    /// pushes/pops across arbitrary interleaving (driven through the
    /// whole network stack rather than the raw queue).
    #[test]
    fn prop_simulation_time_monotone(seed in 0u64..1000) {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let sw = b.add_switch();
        b.link(h0, sw, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(h1, sw, BitRate::from_gbps(100), Nanos::MICRO);
        let mut net = b.build(
            NetConfig { seed, ..NetConfig::default() },
            MonitorConfig {
                sample_interval: Some(Nanos::from_micros(7)),
                sample_until: Nanos::from_millis(1),
                watch_ports: vec![],
                track_flow_rates: true,
            },
        );
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(100_000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(50))),
        );
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        let mut last = Nanos::ZERO;
        while sim.step() {
            prop_assert!(sim.now() >= last);
            last = sim.now();
        }
        prop_assert!(sim.world().all_finished());
        // Samples are strictly time-ordered.
        let samples = sim.world().monitor.samples();
        for w in samples.windows(2) {
            prop_assert!(w[1].t > w[0].t);
        }
    }
}
