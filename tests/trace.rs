//! Golden tests for the simtrace observability layer: the structured
//! event stream must be byte-identical across repeated runs and across
//! event schedulers, and the Chrome `trace_event` export must have the
//! shape Perfetto expects. Compiled only with `--features trace`.
#![cfg(feature = "trace")]

use fairness_repro::dcsim::SchedulerKind;
use fairness_repro::fairsim::{
    CcSpec, IncastResult, IncastScenario, ProtocolKind, RunCtx, Scenario, TraceConfig, TraceLevel,
    Variant,
};
use minijson::Value;

fn traced_incast(scheduler: SchedulerKind, level: TraceConfig) -> IncastResult {
    let sc = IncastScenario::paper(8, CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf), 7);
    sc.run_with(&RunCtx::new(7).with_scheduler(scheduler).with_trace(level))
}

#[test]
fn trace_jsonl_is_run_and_scheduler_invariant() {
    let a = traced_incast(SchedulerKind::Heap, TraceConfig::full());
    let b = traced_incast(SchedulerKind::Heap, TraceConfig::full());
    let c = traced_incast(SchedulerKind::Wheel, TraceConfig::full());

    let ja = a
        .trace
        .as_ref()
        .expect("full tracing yields a tracer")
        .to_jsonl();
    let jb = b
        .trace
        .as_ref()
        .expect("full tracing yields a tracer")
        .to_jsonl();
    let jc = c
        .trace
        .as_ref()
        .expect("full tracing yields a tracer")
        .to_jsonl();

    assert!(!ja.is_empty(), "a traced incast must record events");
    assert_eq!(ja, jb, "repeat run trace diverged");
    assert_eq!(ja, jc, "heap vs wheel trace diverged");

    // The Chrome export is derived from the same buffer, so it inherits
    // the determinism; check it anyway since it is a separate code path.
    assert_eq!(
        a.trace.as_ref().expect("tracer").to_chrome(),
        c.trace.as_ref().expect("tracer").to_chrome(),
    );
}

#[test]
fn trace_jsonl_lines_are_wellformed_and_cover_subsystems() {
    let res = traced_incast(SchedulerKind::Heap, TraceConfig::full());
    let jsonl = res.trace.as_ref().expect("tracer").to_jsonl();

    let mut subs_seen = std::collections::BTreeSet::new();
    let mut last_t = 0u64;
    for line in jsonl.lines() {
        let v = Value::parse(line).expect("every JSONL line parses");
        let t = v["t"].as_u64().expect("t is a non-negative integer");
        assert!(t >= last_t, "timestamps must be non-decreasing");
        last_t = t;
        subs_seen.insert(v["sub"].as_str().expect("sub is a string").to_owned());
        assert!(v["ev"].as_str().is_some(), "ev is a string");
    }
    for want in ["port", "flow", "cc"] {
        assert!(
            subs_seen.contains(want),
            "missing '{want}' events: {subs_seen:?}"
        );
    }
}

#[test]
fn chrome_trace_has_perfetto_shape() {
    let res = traced_incast(SchedulerKind::Heap, TraceConfig::full());
    let chrome = res.trace.as_ref().expect("tracer").to_chrome();
    let v = Value::parse(&chrome).expect("chrome export parses as JSON");

    assert_eq!(v["displayTimeUnit"].as_str(), Some("ns"));
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    let mut complete_events = 0usize;
    for ev in events {
        assert!(ev.get("name").is_some(), "event has a name");
        assert!(ev.get("cat").is_some(), "event has a category");
        assert!(ev.get("ts").is_some(), "event has a timestamp");
        assert_eq!(ev["pid"].as_u64(), Some(1));
        assert!(ev.get("tid").is_some(), "event has a track id");
        match ev["ph"].as_str().expect("phase is a string") {
            "X" => {
                assert!(ev.get("dur").is_some(), "complete events carry dur");
                complete_events += 1;
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // Each of the eight incast flows finishes, emitting one complete
    // ("X") span whose duration is the FCT.
    assert_eq!(complete_events, 8);
}

#[test]
fn subsystem_filter_restricts_the_stream() {
    let cfg = TraceConfig::full().with_filter(fairness_repro::fairsim::Subsystem::Port);
    let res = traced_incast(SchedulerKind::Heap, cfg);
    let jsonl = res.trace.as_ref().expect("tracer").to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        let v = Value::parse(line).expect("line parses");
        assert_eq!(v["sub"].as_str(), Some("port"));
    }
}

#[test]
fn counters_level_publishes_metrics_without_events() {
    let res = traced_incast(SchedulerKind::Heap, TraceConfig::counters());
    let tr = res.trace.as_ref().expect("counters level keeps the tracer");
    assert_eq!(tr.config().level, TraceLevel::Counters);
    assert!(tr.is_empty(), "no event stream at counters level");

    let reg = tr.metrics();
    assert_eq!(reg.counter("net.flows"), Some(8));
    assert_eq!(reg.counter("net.flows_finished"), Some(8));
    let fct = reg.histogram("monitor.fct_ns").expect("FCT histogram");
    assert_eq!(fct.count(), 8);

    // Tracing must observe, not perturb: the physical results match an
    // untraced run bit for bit.
    let plain = traced_incast(SchedulerKind::Heap, TraceConfig::off());
    assert!(plain.trace.is_none(), "TraceLevel::Off carries no tracer");
    let fcts = |r: &IncastResult| -> Vec<(u32, u64)> {
        r.fcts
            .iter()
            .map(|f| (f.flow.0, f.finish.as_u64()))
            .collect()
    };
    assert_eq!(fcts(&res), fcts(&plain));
    assert_eq!(res.events_handled, plain.events_handled);
}

#[test]
fn occupancy_high_water_is_reported() {
    // The profiling hook in the engine feeds the scenario result; a run
    // with dozens of concurrent timers must have a nonzero high-water
    // mark, and it must be scheduler-stable for the heap (the wheel
    // counts slot occupancy differently but must also be reproducible).
    let a = traced_incast(SchedulerKind::Heap, TraceConfig::off());
    let b = traced_incast(SchedulerKind::Heap, TraceConfig::off());
    assert!(a.occupancy_hwm > 0);
    assert_eq!(a.occupancy_hwm, b.occupancy_hwm);
}
