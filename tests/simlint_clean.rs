//! Tier-1 gate: the workspace must stay clean under its own static
//! analysis pass. Equivalent to `cargo run -p simlint` exiting 0, but
//! enforced by `cargo test` so a violating change cannot land even when
//! the CI lint job is skipped.

use std::path::Path;

#[test]
fn workspace_has_no_simlint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, scanned) = simlint::scan_tree(root).expect("workspace tree scans");
    assert!(
        scanned > 50,
        "suspiciously few files scanned ({scanned}) — walker broken?"
    );
    assert!(
        findings.is_empty(),
        "simlint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
