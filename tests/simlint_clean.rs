//! Tier-1 gate: the workspace must stay clean under its own static
//! analysis pass — the v1 line rules (D1–D6), the v2 semantic rules
//! (U1–U3, O1, E1, P1–P5, S1), and the v4 cost rules (A1–A4) — and
//! every file must be parseable by the v2 parser. Equivalent to
//! `cargo run -p simlint -- --baseline simlint.baseline` exiting 0, but
//! enforced by `cargo test` so a violating change cannot land even when
//! the CI lint job is skipped.
//!
//! Findings listed in `simlint.baseline` are tolerated; the baseline is
//! a ratchet, so an entry whose finding has been swept away fails the
//! gate until the entry is removed.

use std::path::Path;

fn workspace_baseline(root: &Path) -> simlint::Baseline {
    let text = std::fs::read_to_string(root.join("simlint.baseline"))
        .expect("simlint.baseline exists at the workspace root");
    simlint::Baseline::parse(&text).expect("simlint.baseline parses")
}

#[test]
fn workspace_has_no_unbaselined_simlint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = simlint::analyze_tree(root).expect("workspace tree scans");
    assert!(
        analysis.scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        analysis.scanned
    );
    assert!(
        analysis.parse_failures.is_empty(),
        "simlint could not parse {} file(s):\n{}",
        analysis.parse_failures.len(),
        analysis
            .parse_failures
            .iter()
            .map(|e| format!("{}:{}: {}", e.path, e.line, e.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let baseline = workspace_baseline(root);
    let (new, _tolerated) = baseline.split(&analysis.findings);
    assert!(
        new.is_empty(),
        "simlint found {} unbaselined violation(s):\n{}",
        new.len(),
        new.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_baseline_has_no_stale_entries() {
    // The ratchet only shrinks: a baseline entry whose finding was fixed
    // must be deleted, or it could silently mask a future regression at
    // the same site.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = simlint::analyze_tree(root).expect("workspace tree scans");
    let baseline = workspace_baseline(root);
    let stale = baseline.stale(&analysis.findings);
    assert!(
        stale.is_empty(),
        "baseline entries no longer matched by any finding (delete them):\n{}",
        stale
            .iter()
            .map(|(rule, path, line)| format!("{rule}\t{path}\t{line}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_autofix_is_a_no_op() {
    // A clean tree must stay byte-identical under `--fix`; CI asserts
    // the same with `git diff --exit-code`. Baselined findings carry no
    // mechanical fix, so the baseline does not exempt anything here.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = simlint::read_tree(root).expect("workspace tree reads");
    let applied = simlint::fix_source_set(&mut files);
    assert_eq!(applied, 0, "clean workspace should need no fixes");
}
