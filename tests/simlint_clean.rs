//! Tier-1 gate: the workspace must stay clean under its own static
//! analysis pass — the v1 line rules (D1–D5) and the v2 semantic rules
//! (U1–U3, O1, E1, S1) — and every file must be parseable by the v2
//! parser. Equivalent to `cargo run -p simlint` exiting 0, but enforced
//! by `cargo test` so a violating change cannot land even when the CI
//! lint job is skipped.

use std::path::Path;

#[test]
fn workspace_has_no_simlint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = simlint::analyze_tree(root).expect("workspace tree scans");
    assert!(
        analysis.scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        analysis.scanned
    );
    assert!(
        analysis.parse_failures.is_empty(),
        "simlint could not parse {} file(s):\n{}",
        analysis.parse_failures.len(),
        analysis
            .parse_failures
            .iter()
            .map(|e| format!("{}:{}: {}", e.path, e.line, e.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        analysis.findings.is_empty(),
        "simlint found {} violation(s):\n{}",
        analysis.findings.len(),
        analysis
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_autofix_is_a_no_op() {
    // A clean tree must stay byte-identical under `--fix`; CI asserts
    // the same with `git diff --exit-code`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = simlint::read_tree(root).expect("workspace tree reads");
    let applied = simlint::fix_source_set(&mut files);
    assert_eq!(applied, 0, "clean workspace should need no fixes");
}
