//! Proof that the `sim-audit` invariant checks actually fire.
//!
//! Each test deliberately violates one audited invariant — through the
//! `audit_corrupt_*` test hooks or by driving an API outside the engine
//! contract — and asserts the audit panics with its signature message.
//! A final test runs a real scenario end-to-end under audit to show the
//! checks are silent on healthy executions (and that golden results are
//! unchanged, via tests/determinism.rs which also runs under this
//! feature in CI).
//!
//! The whole file is compiled only with `--features sim-audit`; without
//! the feature the hooks do not exist and the checks are compiled out.

#![cfg(feature = "sim-audit")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use fairness_repro::dcsim::{Bytes, DetRng, EventQueue, Nanos, Scheduler, TimingWheel};
use fairness_repro::faircc::{VaiConfig, VariableAi};
use fairness_repro::fairsim::{CcSpec, IncastScenario, ProtocolKind, SchedulerKind, Variant};
use fairness_repro::netsim::packet::{PacketKind, PacketPool};
use fairness_repro::netsim::pfc::PauseCounter;
use fairness_repro::netsim::port::Port;
use fairness_repro::netsim::{NodeId, PortNo};
use fairness_repro::workloads::IncastConfig;

/// Run `f` and return the panic message the audit produced.
fn audit_panic_message<F: FnOnce()>(f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("audit check did not fire");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string")
}

fn test_port() -> Port {
    Port::new(
        (NodeId(1), PortNo(0)),
        fairness_repro::dcsim::BitRate::from_gbps(100),
        Nanos::MICRO,
    )
}

#[test]
fn corrupted_port_ledger_trips_byte_conservation() {
    let mut pool = PacketPool::new();
    let mut rng = DetRng::new(7);
    let mut port = test_port();
    let h = pool.alloc();
    let pkt = pool.get_mut(h);
    pkt.kind = PacketKind::Data;
    pkt.wire_size = 1000;
    port.enqueue(h, &mut pool, &mut rng)
        .expect("no buffer limit set");

    // Inflate the resident-byte ledger behind the counters' back: the
    // next enqueue's conservation check must catch the mismatch.
    port.audit_corrupt_qbytes(999);
    let msg = audit_panic_message(|| {
        let h = pool.alloc();
        let pkt = pool.get_mut(h);
        pkt.kind = PacketKind::Data;
        pkt.wire_size = 500;
        let _ = port.enqueue(h, &mut pool, &mut rng);
    });
    assert!(msg.contains("sim-audit invariant violated"), "{msg}");
    assert!(msg.contains("port byte conservation"), "{msg}");
}

#[test]
fn pool_double_free_trips_generation_audit() {
    // Freeing the same handle twice is the C-style lifetime bug the
    // generation tags exist to catch: the second free presents a stale
    // generation and must panic instead of corrupting the free list.
    let mut pool = PacketPool::new();
    let h = pool.alloc();
    pool.free(h);
    let msg = audit_panic_message(|| pool.free(h));
    assert!(msg.contains("sim-audit invariant violated"), "{msg}");
    assert!(msg.contains("double free or stale handle"), "{msg}");
}

#[test]
fn pool_stale_handle_read_trips_generation_audit() {
    // A handle kept across a free/realloc of its slot would silently read
    // the *new* occupant's packet without the generation check.
    let mut pool = PacketPool::new();
    let stale = pool.alloc();
    pool.free(stale);
    let fresh = pool.alloc(); // recycles the same slot, bumped generation
    let msg = audit_panic_message(|| {
        let _ = pool.get(stale);
    });
    assert!(msg.contains("sim-audit invariant violated"), "{msg}");
    assert!(msg.contains("stale packet handle read"), "{msg}");
    // The live handle still works after the aborted stale access.
    assert_eq!(pool.get(fresh).wire_size, 0);
}

#[test]
fn pool_stale_handle_write_trips_generation_audit() {
    let mut pool = PacketPool::new();
    let stale = pool.alloc();
    pool.free(stale);
    let _fresh = pool.alloc();
    let msg = audit_panic_message(|| {
        pool.get_mut(stale).wire_size = 1;
    });
    assert!(msg.contains("sim-audit invariant violated"), "{msg}");
    assert!(msg.contains("stale packet handle write"), "{msg}");
}

#[test]
fn heap_time_regression_trips_pop_order_audit() {
    // The engine contract forbids scheduling into the past; doing it
    // straight on the queue makes the pop-order witness fire.
    let mut q = EventQueue::new();
    q.push(Nanos(10), "late");
    assert_eq!(q.pop(), Some((Nanos(10), "late")));
    q.push(Nanos(5), "early");
    let msg = audit_panic_message(|| {
        let _ = q.pop();
    });
    assert!(msg.contains("heap pop order regressed"), "{msg}");
}

#[test]
fn wheel_push_behind_cursor_trips_monotonicity_audit() {
    let mut w: TimingWheel<&str> = TimingWheel::new();
    w.push(Nanos(10), "late");
    assert_eq!(w.pop(), Some((Nanos(10), "late")));
    let msg = audit_panic_message(|| {
        w.push(Nanos(5), "early");
    });
    // In debug builds the engine's pre-existing debug_assert fires first;
    // in release-with-audit builds the audit_assert does. Both name the
    // cursor the push fell behind.
    assert!(msg.contains("cursor"), "{msg}");
}

#[test]
fn unbalanced_pfc_resume_trips_pairing_audit() {
    let mut c = PauseCounter::default();
    c.apply(true);
    c.apply(false); // balanced — fine
    let msg = audit_panic_message(|| {
        c.apply(false); // RESUME with no outstanding PAUSE
    });
    // debug_assert ("unbalanced PFC resume") in debug builds, the audit
    // ("PFC pairing: ...") in release-with-audit builds.
    assert!(
        msg.contains("PFC pairing") || msg.contains("unbalanced PFC resume"),
        "{msg}"
    );
}

#[test]
fn corrupted_vai_bank_trips_bounds_audit() {
    let mut vai = VariableAi::new(VaiConfig::hpcc_default(50_000.0));
    // Push the bank past Bank_Cap behind the algorithm's back.
    vai.audit_corrupt_bank(VaiConfig::hpcc_default(50_000.0).bank_cap * 2.0);
    let msg = audit_panic_message(|| {
        vai.observe(0.0, false);
        vai.on_rtt_end();
    });
    assert!(msg.contains("VAI bank"), "{msg}");

    let mut vai = VariableAi::new(VaiConfig::hpcc_default(50_000.0));
    vai.audit_corrupt_bank(-5.0);
    let msg = audit_panic_message(|| {
        vai.on_rtt_end();
    });
    assert!(msg.contains("VAI bank"), "{msg}");
}

/// A healthy end-to-end run must pass every audit silently, on both
/// schedulers — the audits constrain the implementation, not the model.
#[test]
fn clean_scenario_runs_silently_under_audit() {
    for scheduler in [SchedulerKind::Heap, SchedulerKind::Wheel] {
        let res = IncastScenario {
            incast: IncastConfig {
                senders: 4,
                flow_size: Bytes::from_kb(200),
                flows_per_interval: 2,
                interval: Nanos::from_micros(20),
            },
            cc: CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
            seed: 23,
            sample_interval: Nanos::from_micros(5),
            horizon: Nanos::from_millis(20),
            scheduler,
        }
        .run();
        assert!(res.all_finished, "{scheduler:?} stalled under audit");
        assert_eq!(res.fcts.len(), 4);
    }
}
