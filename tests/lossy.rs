//! Finite-buffer (lossy) integration: verifies the DESIGN.md claim that
//! the deep-buffer lossless abstraction is faithful *for the protocols
//! under study* — i.e. that with realistic finite switch buffers they
//! would not have dropped anything anyway — and that when drops do
//! happen, go-back-N recovery preserves correctness end to end.

use fairness_repro::dcsim::{Bytes, Nanos, Simulation};
use fairness_repro::fairsim::{CcSpec, NetEnv, ProtocolKind, Variant};
use fairness_repro::netsim::{
    run_watched, FlowSpec, MonitorConfig, NetConfig, RunOutcome, Topology,
};
use fairness_repro::workloads::{staggered_incast, IncastConfig};

fn run_incast_with_buffer(cc: CcSpec, buffer: Bytes) -> (u64, RunOutcome) {
    let topo = Topology::paper_star(17);
    let env = NetEnv::incast_star(topo.base_rtt);
    let hosts = topo.hosts.clone();
    let mut builder = topo.builder;
    if cc.needs_red() {
        builder.red_on_switches(fairness_repro::netsim::RedConfig::dcqcn_100g());
    }
    let mut net = builder.build(
        NetConfig {
            switch_buffer: Some(buffer),
            rto: Nanos::from_micros(100),
            ..NetConfig::default()
        },
        MonitorConfig::default(),
    );
    for (i, f) in staggered_incast(&IncastConfig::paper_16_1())
        .iter()
        .enumerate()
    {
        net.add_flow(
            FlowSpec {
                src: hosts[f.src],
                dst: hosts[f.dst],
                size: f.size,
                start: f.start,
            },
            cc.build(&env, 31 * i as u64 + 7),
        );
    }
    let mut sim = Simulation::new(net);
    {
        let (w, q) = sim.split_mut();
        w.prime(q);
    }
    // Watchdog well above the largest backed-off RTO (default cap
    // 10 ms), so slow go-back-N recovery never reads as a stall.
    let outcome = run_watched(
        &mut sim,
        Nanos::from_millis(200),
        u64::MAX,
        Nanos::from_millis(25),
    );
    (sim.world().dropped_data_packets(), outcome)
}

/// HPCC and Swift on the paper's 16-1 incast with a realistic 512 KB
/// switch buffer: zero drops — the lossless abstraction assumed by the
/// default experiments is exactly what these protocols produce.
#[test]
fn paper_protocols_never_overflow_realistic_buffers() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        for variant in [Variant::Default, Variant::VaiSf] {
            let (drops, outcome) =
                run_incast_with_buffer(CcSpec::new(kind, variant), Bytes::from_kb(512));
            assert_eq!(
                drops, 0,
                "{kind:?}/{variant:?} dropped packets in a 512 KB buffer"
            );
            assert_eq!(outcome, RunOutcome::Completed);
        }
    }
}

/// Squeeze the same incast through an unrealistically tiny buffer: drops
/// happen, go-back-N recovers, and all 16 MB still arrive intact.
#[test]
fn tiny_buffers_drop_but_everything_still_delivers() {
    let (drops, outcome) = run_incast_with_buffer(
        CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
        Bytes::from_kb(30),
    );
    assert!(
        drops > 0,
        "a 30 KB buffer must overflow under a 16-1 incast"
    );
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "go-back-N failed to recover the incast"
    );
}

/// DCQCN's multi-MB incast queues *do* overflow realistic buffers — the
/// well-known reason RoCE deployments need PFC — yet go-back-N still
/// delivers every flow.
#[test]
fn dcqcn_overflows_realistic_buffers_but_recovers() {
    let (drops, outcome) = run_incast_with_buffer(
        CcSpec::new(ProtocolKind::Dcqcn, Variant::Default),
        Bytes::from_kb(512),
    );
    assert!(drops > 0, "DCQCN incast should overflow 512 KB");
    assert_eq!(outcome, RunOutcome::Completed);
}
