//! Cross-crate protocol integration: every protocol × variant drives the
//! packet simulator to completion on the paper's microbenchmark, with
//! sane dynamics.

use fairness_repro::dcsim::{Bytes, Nanos};
use fairness_repro::fairsim::{CcSpec, IncastScenario, ProtocolKind, SchedulerKind, Variant};
use fairness_repro::workloads::IncastConfig;

fn scenario(kind: ProtocolKind, variant: Variant) -> IncastScenario {
    IncastScenario {
        incast: IncastConfig {
            senders: 8,
            flow_size: Bytes::from_kb(400),
            flows_per_interval: 2,
            interval: Nanos::from_micros(20),
        },
        cc: CcSpec::new(kind, variant),
        seed: 17,
        sample_interval: Nanos::from_micros(5),
        horizon: Nanos::from_millis(30),
        scheduler: SchedulerKind::default(),
    }
}

#[test]
fn every_protocol_variant_completes_the_incast() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        for variant in [
            Variant::Default,
            Variant::HighAi,
            Variant::Probabilistic,
            Variant::Vai,
            Variant::Sf,
            Variant::VaiSf,
        ] {
            let res = scenario(kind, variant).run();
            assert!(res.all_finished, "{kind:?}/{variant:?} stalled");
            assert_eq!(res.fcts.len(), 8);
            // Goodput sanity: total bytes over total time within 2x of
            // the bottleneck capacity (protocols cannot beat physics).
            let last_finish = res
                .fcts
                .iter()
                .map(|r| r.finish.as_secs_f64())
                .fold(f64::MIN, f64::max);
            let total_bytes = 8.0 * 400_000.0;
            let rate = total_bytes * 8.0 / last_finish;
            assert!(
                rate < 100e9 * 1.01,
                "{kind:?}/{variant:?} beat line rate: {rate}"
            );
            assert!(
                rate > 10e9,
                "{kind:?}/{variant:?} pathologically slow: {rate}"
            );
        }
    }
}

#[test]
fn timely_completes_the_incast() {
    // Timely (RTT-gradient, rate-based) queues heavily under line-rate
    // incast joins — its known weakness — but must still drain.
    let res = scenario(ProtocolKind::Timely, Variant::Default).run();
    assert!(res.all_finished);
    assert_eq!(res.fcts.len(), 8);
    let vai_sf = scenario(ProtocolKind::Timely, Variant::VaiSf).run();
    assert!(vai_sf.all_finished);
}

#[test]
fn dcqcn_baseline_completes_with_red_marking() {
    let res = scenario(ProtocolKind::Dcqcn, Variant::Default).run();
    assert!(res.all_finished);
    assert_eq!(res.fcts.len(), 8);
}

#[test]
fn queues_stay_bounded_for_all_variants() {
    // HPCC and Swift react per-RTT and keep incast queues to a few
    // hundred KB. DCQCN's CNPs arrive at 50 us granularity against
    // line-rate joiners, so its incast queue legitimately reaches the
    // multi-MB range (the weakness DCQCN+ [Gao et al.] addresses); it
    // must still stay within a real switch's buffer budget.
    for (kind, budget) in [
        (ProtocolKind::Hpcc, 500_000u64),
        (ProtocolKind::Swift, 500_000),
        (ProtocolKind::Dcqcn, 8_000_000),
    ] {
        let res = scenario(kind, Variant::Default).run();
        assert!(
            res.peak_queue() < budget,
            "{kind:?} peak queue {} above budget {budget}",
            res.peak_queue()
        );
    }
}

#[test]
fn fcts_scale_with_incast_degree() {
    // 16 senders into one link take ~2x as long as 8 senders.
    let small = scenario(ProtocolKind::Hpcc, Variant::Default).run();
    let mut big_cfg = scenario(ProtocolKind::Hpcc, Variant::Default);
    big_cfg.incast.senders = 16;
    let big = big_cfg.run();
    let last = |r: &fairness_repro::fairsim::IncastResult| {
        r.fcts
            .iter()
            .map(|x| x.finish.as_micros_f64())
            .fold(f64::MIN, f64::max)
    };
    let ratio = last(&big) / last(&small);
    assert!(
        (1.5..3.0).contains(&ratio),
        "16-1 should take ~2x the 8-1 drain time, got {ratio}"
    );
}

#[test]
fn flows_share_within_protocol_family_reasonably() {
    // At the end of a long overlap phase, per-flow FCTs of the first two
    // (simultaneously started) flows should be close for every protocol.
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift, ProtocolKind::Dcqcn] {
        let res = scenario(kind, Variant::Default).run();
        let f0 = res
            .fcts
            .iter()
            .find(|r| r.flow.0 == 0)
            .expect("flow 0 finished");
        let f1 = res
            .fcts
            .iter()
            .find(|r| r.flow.0 == 1)
            .expect("flow 1 finished");
        let a = f0.fct().as_secs_f64();
        let b = f1.fct().as_secs_f64();
        let ratio = a.max(b) / a.min(b);
        assert!(
            ratio < 1.5,
            "{kind:?}: simultaneous twins diverged {ratio}x ({a} vs {b})"
        );
    }
}
