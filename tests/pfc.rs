//! PFC integration: the paper's protocols keep queues so low that PFC
//! never engages at realistic watermarks — and when a misbehaving sender
//! does trip it, the fabric pauses instead of dropping.

use fairness_repro::dcsim::{BitRate, Bytes, Nanos, Simulation};
use fairness_repro::faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};
use fairness_repro::fairsim::{CcSpec, ProtocolKind, Variant};
use fairness_repro::netsim::pfc::PfcConfig;
use fairness_repro::netsim::{FlowSpec, MonitorConfig, NetConfig, Topology};
use fairness_repro::workloads::{staggered_incast, IncastConfig};

/// Run the paper's 16-1 incast with PFC armed; return the peak queue.
fn incast_peak_queue_with_pfc(cc: CcSpec) -> u64 {
    let topo = Topology::paper_star(17);
    let env = fairness_repro::fairsim::NetEnv::incast_star(topo.base_rtt);
    let hosts = topo.hosts.clone();
    let switch = topo.switches[0];
    let mut net = topo.builder.build(
        NetConfig {
            pfc: Some(PfcConfig::default_100g()),
            ..NetConfig::default()
        },
        MonitorConfig::default(),
    );
    let (n, p) = net
        .port_towards(switch, hosts[16])
        .expect("switch has a port toward every attached host");
    for (i, f) in staggered_incast(&IncastConfig::paper_16_1())
        .iter()
        .enumerate()
    {
        net.add_flow(
            FlowSpec {
                src: hosts[f.src],
                dst: hosts[f.dst],
                size: f.size,
                start: f.start,
            },
            cc.build(&env, i as u64),
        );
    }
    let mut sim = Simulation::new(net);
    {
        let (w, q) = sim.split_mut();
        w.prime(q);
    }
    sim.run_until(Nanos::from_millis(50));
    let net = sim.world();
    assert!(net.all_finished(), "{} stalled under PFC", cc.label());
    net.node(n).ports[p.idx()].max_qbytes()
}

#[test]
fn paper_protocols_never_trip_pfc() {
    let xoff = PfcConfig::default_100g().xoff.as_u64();
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        for variant in [Variant::Default, Variant::VaiSf] {
            let peak = incast_peak_queue_with_pfc(CcSpec::new(kind, variant));
            assert!(
                peak < xoff,
                "{kind:?}/{variant:?} peak queue {peak} crossed XOFF {xoff}"
            );
        }
    }
}

/// A sender that ignores all congestion feedback.
struct Blaster;
impl CongestionControl for Blaster {
    fn on_ack(&mut self, _: &AckFeedback) {}
    fn limits(&self) -> SenderLimits {
        SenderLimits::rate_based(BitRate::from_gbps(100))
    }
    fn mode(&self) -> CcMode {
        CcMode::Rate
    }
    fn name(&self) -> &str {
        "blaster"
    }
}

#[test]
fn pfc_bounds_a_misbehaving_sender_without_loss() {
    let topo = Topology::paper_star(4);
    let hosts = topo.hosts.clone();
    let switch = topo.switches[0];
    let pfc = PfcConfig {
        xoff: Bytes::from_kb(64),
        xon: Bytes::from_kb(48),
    };
    let mut net = topo.builder.build(
        NetConfig {
            pfc: Some(pfc),
            ..NetConfig::default()
        },
        MonitorConfig::default(),
    );
    let (n, p) = net
        .port_towards(switch, hosts[3])
        .expect("switch has a port toward every attached host");
    for i in 0..3 {
        net.add_flow(
            FlowSpec {
                src: hosts[i],
                dst: hosts[3],
                size: Bytes::from_mb(1),
                start: Nanos::ZERO,
            },
            Box::new(Blaster),
        );
    }
    let mut sim = Simulation::new(net);
    {
        let (w, q) = sim.split_mut();
        w.prime(q);
    }
    sim.run_until(Nanos::from_millis(20));
    let net = sim.world();
    // Lossless: every byte of every flow was delivered despite 3x
    // overload, because PFC paused the NICs instead of dropping.
    assert!(net.all_finished());
    // And the switch buffer stayed near the watermark: xoff plus the
    // pause-reaction slop (200 Gbps excess for ~1 us of PAUSE propagation
    // = 25 KB) plus up to three links' worth of in-flight packets
    // (3 x 12.5 KB) that land after the pause takes effect.
    let peak = net.node(n).ports[p.idx()].max_qbytes();
    assert!(
        peak < pfc.xoff.as_u64() + 70_000,
        "peak {} far above xoff {}",
        peak,
        pfc.xoff.as_u64()
    );
}
