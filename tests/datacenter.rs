//! Datacenter-scale integration: the fat-tree + Poisson workload pipeline
//! produces sane slowdown tables under every protocol (a fast, shrunken
//! version of the Figures 10-13 pipeline).

use fairness_repro::dcsim::Nanos;
use fairness_repro::fairsim::{CcSpec, DatacenterScenario, ProtocolKind, SchedulerKind, Variant};
use fairness_repro::netsim::FatTreeConfig;

fn tiny(cc: CcSpec, workload: &str, seed: u64) -> fairness_repro::fairsim::DatacenterResult {
    DatacenterScenario {
        fat_tree: FatTreeConfig {
            pods: 2,
            tors_per_pod: 1,
            aggs_per_pod: 1,
            hosts_per_tor: 4,
            spines: 1,
            ..FatTreeConfig::reduced()
        },
        workloads: vec![workload.to_string()],
        load: 0.4,
        horizon: Nanos::from_micros(400),
        cc,
        seed,
        scheduler: SchedulerKind::default(),
    }
    .run()
}

#[test]
fn all_protocols_run_hadoop_traffic() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift, ProtocolKind::Dcqcn] {
        let res = tiny(CcSpec::new(kind, Variant::Default), "FB_Hadoop", 2);
        assert!(res.n_flows > 10, "{kind:?}: only {} flows", res.n_flows);
        assert_eq!(
            res.completed, res.n_flows,
            "{kind:?}: {}/{} flows completed",
            res.completed, res.n_flows
        );
        for p in &res.table.points {
            assert!(p.tail >= 1.0 - 1e-9, "{kind:?}: slowdown {} < 1", p.tail);
            assert!(p.median <= p.tail + 1e-9);
            assert!(p.tail < 10_000.0, "{kind:?}: slowdown {} insane", p.tail);
        }
    }
}

#[test]
fn mixed_workload_pipeline_works() {
    let res = tiny(
        CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        "WebSearch",
        5,
    );
    assert!(res.completed > 0);
    // WebSearch has real long flows: even a 400 us arrival window should
    // sample well past the small-flow mass.
    let max_size = res
        .table
        .points
        .iter()
        .map(|p| p.size)
        .max()
        .expect("FCT table is non-empty");
    assert!(max_size > 300_000, "largest bin only {max_size}");
}

#[test]
fn same_seed_same_arrivals_across_variants() {
    // The workload must be identical across protocol variants (paired
    // comparison): same flow count for the same seed.
    let a = tiny(
        CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
        "FB_Hadoop",
        11,
    );
    let b = tiny(
        CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
        "FB_Hadoop",
        11,
    );
    assert_eq!(a.n_flows, b.n_flows);
}

#[test]
fn slowdown_grows_with_flow_size_at_the_tail() {
    // Bandwidth-bound flows suffer more than latency-bound ones under
    // congestion — the structural premise of Figures 10-13. Compare the
    // mean tail of the smallest vs largest deciles.
    let res = tiny(
        CcSpec::new(ProtocolKind::Swift, Variant::Default),
        "WebSearch",
        5,
    );
    let pts = &res.table.points;
    if pts.len() >= 10 {
        let n = pts.len();
        let small: f64 = pts[..n / 5].iter().map(|p| p.tail).sum::<f64>() / (n / 5) as f64;
        let large: f64 = pts[n - n / 5..].iter().map(|p| p.tail).sum::<f64>() / (n / 5) as f64;
        assert!(
            large > small,
            "large-flow tail {large} should exceed small-flow tail {small}"
        );
    }
}
