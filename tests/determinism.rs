//! Reproducibility: identical seeds must yield bit-identical experiment
//! outputs across runs (including across the thread-parallel harness),
//! and different seeds must actually perturb randomized components.

use fairness_repro::fairsim::{CcSpec, IncastScenario, ProtocolKind, Variant};

fn fingerprint(kind: ProtocolKind, variant: Variant, seed: u64) -> Vec<(u32, u64)> {
    let res = IncastScenario::paper(16, CcSpec::new(kind, variant), seed).run();
    res.fcts
        .iter()
        .map(|r| (r.flow.0, r.finish.as_u64()))
        .collect()
}

#[test]
fn identical_seeds_identical_completions() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift, ProtocolKind::Dcqcn] {
        let a = fingerprint(kind, Variant::Default, 7);
        let b = fingerprint(kind, Variant::Default, 7);
        assert_eq!(a, b, "{kind:?} is not deterministic");
        assert_eq!(a.len(), 16);
    }
}

#[test]
fn probabilistic_variant_depends_on_seed() {
    let a = fingerprint(ProtocolKind::Hpcc, Variant::Probabilistic, 1);
    let b = fingerprint(ProtocolKind::Hpcc, Variant::Probabilistic, 2);
    assert_ne!(a, b, "different seeds should change probabilistic gating");
}

#[test]
fn deterministic_variants_are_seed_independent_in_dynamics() {
    // Default HPCC uses no randomness at all: two different seeds give
    // identical completions (the seed only feeds RED and the
    // probabilistic gate, which are unused here).
    let a = fingerprint(ProtocolKind::Hpcc, Variant::Default, 1);
    let b = fingerprint(ProtocolKind::Hpcc, Variant::Default, 2);
    assert_eq!(a, b);
}

#[test]
fn parallel_runs_match_serial_runs() {
    // The figure harness runs variants on threads; verify thread-level
    // parallelism cannot leak into results.
    let serial = fingerprint(ProtocolKind::Swift, Variant::VaiSf, 9);
    let parallel: Vec<_> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|_| fingerprint(ProtocolKind::Swift, Variant::VaiSf, 9)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    for p in parallel {
        assert_eq!(p, serial);
    }
}
