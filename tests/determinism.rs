//! Reproducibility: identical seeds must yield bit-identical experiment
//! outputs across runs — across the thread-parallel harness and across
//! event schedulers (binary heap vs hierarchical timing wheel).

use fairness_repro::dcsim::{
    BitRate, Bytes, EventQueue, Nanos, Scheduler, SchedulerKind, Simulation, TimingWheel,
};
use fairness_repro::fairsim::{CcSpec, IncastScenario, NetEnv, ProtocolKind, Variant};
use fairness_repro::netsim::{self, FlowSpec, MonitorConfig, NetBuilder, NetConfig};

fn fingerprint(kind: ProtocolKind, variant: Variant, seed: u64) -> Vec<(u32, u64)> {
    let res = IncastScenario::paper(16, CcSpec::new(kind, variant), seed).run();
    res.fcts
        .iter()
        .map(|r| (r.flow.0, r.finish.as_u64()))
        .collect()
}

#[test]
fn identical_seeds_identical_completions() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift, ProtocolKind::Dcqcn] {
        let a = fingerprint(kind, Variant::Default, 7);
        let b = fingerprint(kind, Variant::Default, 7);
        assert_eq!(a, b, "{kind:?} is not deterministic");
        assert_eq!(a.len(), 16);
    }
}

#[test]
fn probabilistic_variant_depends_on_seed() {
    let a = fingerprint(ProtocolKind::Hpcc, Variant::Probabilistic, 1);
    let b = fingerprint(ProtocolKind::Hpcc, Variant::Probabilistic, 2);
    assert_ne!(a, b, "different seeds should change probabilistic gating");
}

#[test]
fn deterministic_variants_are_seed_independent_in_dynamics() {
    // Default HPCC uses no randomness at all: two different seeds give
    // identical completions (the seed only feeds RED and the
    // probabilistic gate, which are unused here).
    let a = fingerprint(ProtocolKind::Hpcc, Variant::Default, 1);
    let b = fingerprint(ProtocolKind::Hpcc, Variant::Default, 2);
    assert_eq!(a, b);
}

#[test]
fn parallel_runs_match_serial_runs() {
    // The figure harness runs variants on threads; verify thread-level
    // parallelism cannot leak into results.
    let serial = fingerprint(ProtocolKind::Swift, Variant::VaiSf, 9);
    let parallel: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|| fingerprint(ProtocolKind::Swift, Variant::VaiSf, 9)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fingerprint thread panicked"))
            .collect()
    });
    for p in parallel {
        assert_eq!(p, serial);
    }
}

// ---------------------------------------------------------------------------
// Scheduler golden tests: heap and wheel must produce identical traces.
// ---------------------------------------------------------------------------

/// FNV-1a over a word stream — a tiny, stable trace-fingerprint hash.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Everything a golden run is compared on: dispatch count, per-flow
/// completion records, and a hash folding in the full observable trace
/// (FCTs plus the sampled fairness/queue series where available).
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    events_handled: u64,
    fcts: Vec<(u32, u64, u64)>,
    trace_hash: u64,
}

fn incast_golden_variant(scheduler: SchedulerKind, variant: Variant, seed: u64) -> Golden {
    let sc = IncastScenario::paper(16, CcSpec::new(ProtocolKind::Hpcc, variant), seed)
        .with_scheduler(scheduler);
    let res = sc.run();
    assert!(res.all_finished, "incast must drain");
    let fcts: Vec<(u32, u64, u64)> = res
        .fcts
        .iter()
        .map(|r| (r.flow.0, r.start.as_u64(), r.finish.as_u64()))
        .collect();
    let words = fcts
        .iter()
        .flat_map(|&(f, s, e)| [u64::from(f), s, e])
        .chain(
            res.jain
                .iter()
                .flat_map(|&(t, j)| [t.to_bits(), j.to_bits()]),
        )
        .chain(res.queue.iter().flat_map(|&(t, q)| [t.to_bits(), q]))
        .collect::<Vec<_>>();
    Golden {
        events_handled: res.events_handled,
        fcts,
        trace_hash: fnv1a(words),
    }
}

fn incast_golden(scheduler: SchedulerKind, seed: u64) -> Golden {
    incast_golden_variant(scheduler, Variant::VaiSf, seed)
}

/// Two flow pairs crossing a shared bottleneck link (the classic
/// dumbbell), driven directly through `Simulation<Network, S>`.
fn dumbbell_golden(scheduler: SchedulerKind) -> Golden {
    fn build() -> netsim::Network {
        let mut b = NetBuilder::new();
        let s0 = b.add_host();
        let s1 = b.add_host();
        let r0 = b.add_host();
        let r1 = b.add_host();
        let left = b.add_switch();
        let right = b.add_switch();
        for h in [s0, s1] {
            b.link(h, left, BitRate::from_gbps(100), Nanos::MICRO);
        }
        for h in [r0, r1] {
            b.link(h, right, BitRate::from_gbps(100), Nanos::MICRO);
        }
        b.link(left, right, BitRate::from_gbps(100), Nanos::MICRO);
        let mut net = b.build(NetConfig::default(), MonitorConfig::default());
        let env = NetEnv::incast_star(Nanos::from_micros(7));
        let cc = CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf);
        for (i, (src, dst)) in [(s0, r0), (s1, r1)].into_iter().enumerate() {
            net.add_flow(
                FlowSpec {
                    src,
                    dst,
                    size: Bytes::from_kb(300),
                    start: Nanos::ZERO,
                },
                cc.build(&env, 100 + i as u64),
            );
        }
        net
    }

    fn go<S: Scheduler<netsim::Event> + Default>() -> Golden {
        let mut sim = Simulation::with_scheduler(build(), S::default());
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(5));
        assert!(sim.world().all_finished(), "dumbbell must drain");
        let fcts: Vec<(u32, u64, u64)> = sim
            .world()
            .monitor
            .fcts()
            .iter()
            .map(|r| (r.flow.0, r.start.as_u64(), r.finish.as_u64()))
            .collect();
        let words = fcts
            .iter()
            .flat_map(|&(f, s, e)| [u64::from(f), s, e])
            .collect::<Vec<_>>();
        Golden {
            events_handled: sim.events_handled(),
            fcts,
            trace_hash: fnv1a(words),
        }
    }

    match scheduler {
        SchedulerKind::Heap => go::<EventQueue<netsim::Event>>(),
        SchedulerKind::Wheel => go::<TimingWheel<netsim::Event>>(),
    }
}

#[test]
fn incast_golden_is_scheduler_and_run_invariant() {
    // Each scheduler twice with the same seed: reruns must be
    // bit-identical, and the two schedulers must agree with each other on
    // dispatch count, per-flow FCTs, and the full trace fingerprint.
    let runs = [
        incast_golden(SchedulerKind::Heap, 7),
        incast_golden(SchedulerKind::Heap, 7),
        incast_golden(SchedulerKind::Wheel, 7),
        incast_golden(SchedulerKind::Wheel, 7),
    ];
    assert_eq!(runs[0].fcts.len(), 16);
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(&runs[0], r, "incast run {i} diverged from run 0");
    }
}

#[test]
fn dumbbell_golden_is_scheduler_and_run_invariant() {
    let runs = [
        dumbbell_golden(SchedulerKind::Heap),
        dumbbell_golden(SchedulerKind::Heap),
        dumbbell_golden(SchedulerKind::Wheel),
        dumbbell_golden(SchedulerKind::Wheel),
    ];
    assert_eq!(runs[0].fcts.len(), 2);
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(&runs[0], r, "dumbbell run {i} diverged from run 0");
    }
}

#[test]
fn incast_golden_depends_on_seed() {
    // The fingerprint hash is a real function of the run. VaiSf is fully
    // deterministic (seed-independent), so probe with the probabilistic
    // variant, whose gating actually draws from the seeded stream.
    let a = incast_golden_variant(SchedulerKind::Heap, Variant::Probabilistic, 7);
    let b = incast_golden_variant(SchedulerKind::Heap, Variant::Probabilistic, 8);
    assert_ne!(a.trace_hash, b.trace_hash);
}
