//! Fleet sweep harness: spec-expansion properties and report
//! determinism.
//!
//! The expansion properties run as seeded DetRng case loops (the
//! workspace's hermetic stand-in for a property-testing crate): each
//! case draws a random spec — protocol set, degree axis, ensemble — and
//! checks the invariants the report layer builds on. The golden test
//! then pins the end-to-end contract: a sweep's report JSON is
//! byte-identical across reruns, worker counts, and event-scheduler
//! backends.

use fairness_repro::dcsim::{DetRng, SchedulerKind};
use fairness_repro::fairsim::{CcSpec, ProtocolKind, Variant};
use fairness_repro::fleet::{run_sweep, Ensemble, SweepConfig, SweepSpec, WorkloadAxis};

const KINDS: [ProtocolKind; 4] = [
    ProtocolKind::Hpcc,
    ProtocolKind::Swift,
    ProtocolKind::Dcqcn,
    ProtocolKind::Timely,
];
const VARIANTS: [Variant; 6] = [
    Variant::Default,
    Variant::HighAi,
    Variant::Probabilistic,
    Variant::Vai,
    Variant::Sf,
    Variant::VaiSf,
];

/// Draw a random incast sweep spec: 1-4 distinct cc specs, 1-4 distinct
/// degrees, a 1-4 replicate ensemble.
fn arbitrary_spec(rng: &mut DetRng) -> SweepSpec {
    let mut cc: Vec<CcSpec> = Vec::new();
    let n_cc = 1 + rng.below(4) as usize;
    while cc.len() < n_cc {
        let kind = KINDS[rng.below(KINDS.len() as u64) as usize];
        let variant = VARIANTS[rng.below(VARIANTS.len() as u64) as usize];
        let spec = CcSpec::new(kind, variant);
        if !cc.contains(&spec) {
            cc.push(spec);
        }
    }
    let mut degrees: Vec<usize> = Vec::new();
    let n_deg = 1 + rng.below(4) as usize;
    while degrees.len() < n_deg {
        let d = 2 + rng.below(96) as usize;
        if !degrees.contains(&d) {
            degrees.push(d);
        }
    }
    SweepSpec {
        name: "prop".to_string(),
        cc,
        workload: WorkloadAxis::Incast { degrees },
        ensemble: Ensemble::new(rng.next_u64(), 1 + rng.below(4) as usize),
    }
}

#[test]
fn expansion_count_is_the_product_of_axis_sizes() {
    let mut rng = DetRng::new(0x5EED_0001);
    for _ in 0..50 {
        let spec = arbitrary_spec(&mut rng);
        let cells = spec.expand();
        assert_eq!(cells.len(), spec.cell_count());
        assert_eq!(cells.len(), spec.points().len() * spec.cc.len());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i, "cell index must equal its position");
            assert_eq!(
                c.seeds.len(),
                spec.ensemble.replicates,
                "every cell runs the full ensemble"
            );
        }
    }
}

#[test]
fn expansion_has_no_duplicate_cells_and_is_deterministic() {
    let mut rng = DetRng::new(0x5EED_0002);
    for _ in 0..50 {
        let spec = arbitrary_spec(&mut rng);
        let cells = spec.expand();
        let mut ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate cell ids in expansion");

        // Expansion is a pure function of the spec: rerunning it yields
        // the same cells in the same order.
        let again = spec.expand();
        assert_eq!(cells, again, "expand() must be rerun-stable");
    }
}

#[test]
fn per_cell_seeds_are_rerun_stable_and_shared_across_cc() {
    let mut rng = DetRng::new(0x5EED_0003);
    for _ in 0..50 {
        let spec = arbitrary_spec(&mut rng);
        let cells = spec.expand();
        let n_cc = spec.cc.len();
        for (i, c) in cells.iter().enumerate() {
            // Replicate 0 is the ensemble root: a 1-replicate sweep
            // reproduces the classic single-seed runs.
            assert_eq!(c.seeds[0], spec.ensemble.root_seed);
            // Cells at the same workload point share seeds (common
            // random numbers across the protocol axis)...
            let point_first = &cells[(i / n_cc) * n_cc];
            assert_eq!(c.seeds, point_first.seeds, "cc axis must share seeds");
            // ...and the derivation is rerun-stable.
            assert_eq!(c.seeds, spec.ensemble.seeds_for(&c.point.key()));
        }
        // Distinct points draw distinct derived seeds (replicate >= 1).
        if spec.ensemble.replicates > 1 && spec.points().len() > 1 {
            let a = &cells[0].seeds;
            let b = &cells[cells.len() - 1].seeds;
            assert_ne!(a[1..], b[1..], "points must not share derived seeds");
        }
    }
}

/// The golden end-to-end contract: a 3-seed, 2-variant incast sweep
/// produces byte-identical report JSON across reruns, across worker
/// counts, and across the heap and timing-wheel schedulers.
#[test]
fn sweep_report_json_is_byte_identical_everywhere() {
    let spec = SweepSpec {
        name: "golden".to_string(),
        cc: vec![
            CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
            CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        ],
        workload: WorkloadAxis::Incast { degrees: vec![8] },
        ensemble: Ensemble::new(7, 3),
    };
    let json_of = |scheduler: SchedulerKind, workers: usize| {
        run_sweep(
            &spec,
            &SweepConfig::new()
                .with_scheduler(scheduler)
                .with_workers(workers),
        )
        .report()
        .to_json()
    };
    let reference = json_of(SchedulerKind::Heap, 4);
    assert_eq!(
        reference,
        json_of(SchedulerKind::Heap, 4),
        "rerunning the same sweep changed the report"
    );
    assert_eq!(
        reference,
        json_of(SchedulerKind::Heap, 1),
        "worker count leaked into the report"
    );
    assert_eq!(
        reference,
        json_of(SchedulerKind::Wheel, 3),
        "the scheduler backend leaked into the report"
    );

    let v = minijson::Value::parse(&reference).expect("report is valid JSON");
    let cells = v["cells"].as_array().expect("report has a cells array");
    assert_eq!(cells.len(), 2, "1 degree x 2 variants = 2 cells");
    for cell in cells {
        assert_eq!(
            cell["seeds"].as_array().map(<[minijson::Value]>::len),
            Some(3)
        );
        assert!(
            cell["p99"]["median"].as_f64().is_some(),
            "every cell reports an ensemble-median p99"
        );
        assert_eq!(
            cell["p99"]["ci95"].as_array().map(<[minijson::Value]>::len),
            Some(2),
            "every cell reports a bootstrap CI"
        );
    }
}
