//! Scheduler equivalence: the hierarchical timing wheel must be
//! observationally identical to the binary heap — same `(time, event)`
//! pop sequence, including FIFO order within same-timestamp bursts — on
//! randomized push/pop interleavings.
//!
//! The generator deliberately hits the wheel's hard cases:
//! * bursts of events at one timestamp (FIFO tie-break),
//! * re-entrant pushes at exactly the time just dispatched (`now`),
//! * deltas spanning every wheel level, slot boundaries, and the
//!   overflow/spill range beyond the wheel's 2^36 ns span.

use fairness_repro::dcsim::{DetRng, EventQueue, Nanos, Scheduler, TimingWheel};

/// Total randomized sequences checked (the issue floor is 1000).
const SEQUENCES: u64 = 1200;

/// One delta drawn from a mix of wheel-level ranges.
fn random_delta(rng: &mut DetRng) -> u64 {
    match rng.below(8) {
        0 => rng.below(2),                   // now / now+1
        1 => rng.below(64),                  // level 0
        2 => rng.below(1 << 12),             // level 1-2
        3 => rng.below(1 << 24),             // mid levels
        4 => rng.below(1 << 35),             // top in-span level
        5 => (1 << 36) + rng.below(1 << 30), // spill range
        6 => 63 + rng.below(3),              // slot boundary straddle
        _ => (1 << 30) - 1 + rng.below(3),   // coarse block boundary
    }
}

struct Pair {
    heap: EventQueue<u64>,
    wheel: TimingWheel<u64>,
    now: u64,
    next_id: u64,
}

impl Pair {
    fn push(&mut self, t: Nanos) {
        self.heap.push(t, self.next_id);
        self.wheel.push(t, self.next_id);
        self.next_id += 1;
    }

    /// Pop both, assert byte-identical `(time, id)`, advance `now`.
    fn pop(&mut self, seq: u64) -> Option<Nanos> {
        assert_eq!(
            self.heap.peek_time(),
            self.wheel.peek_time(),
            "seq {seq}: peek_time diverged"
        );
        let a = self.heap.pop();
        let b = self.wheel.pop();
        assert_eq!(a, b, "seq {seq}: pop diverged (heap vs wheel)");
        assert_eq!(self.heap.len(), self.wheel.len(), "seq {seq}: len diverged");
        a.map(|(t, _)| {
            self.now = self.now.max(t.0);
            t
        })
    }
}

#[test]
fn wheel_matches_heap_on_randomized_sequences() {
    for seq in 0..SEQUENCES {
        let mut rng = DetRng::new(0x5eed_0000 + seq);
        let mut pair = Pair {
            heap: EventQueue::default(),
            wheel: TimingWheel::default(),
            now: 0,
            next_id: 0,
        };
        let ops = 40 + rng.below(120);
        for _ in 0..ops {
            if rng.chance(0.55) {
                // Push a burst (possibly size 1) at a single timestamp —
                // the pop order within the burst must be push order.
                let t = Nanos(pair.now + random_delta(&mut rng));
                for _ in 0..1 + rng.below(3) {
                    pair.push(t);
                }
            } else if let Some(t) = pair.pop(seq) {
                // Re-entrant push at exactly the dispatched time: the
                // engine contract allows scheduling at `now`.
                if rng.chance(0.3) {
                    pair.push(t);
                }
            }
        }
        // Drain fully; the complete tail order must match too.
        while pair.pop(seq).is_some() {}
        assert!(pair.heap.is_empty() && pair.wheel.is_empty());
        assert_eq!(pair.heap.total_popped(), pair.wheel.total_popped());
    }
}

#[test]
fn fifo_ties_survive_a_mid_burst_drain() {
    // A same-timestamp burst pushed in two halves around an unrelated
    // pop must still pop in overall push order.
    let mut pair = Pair {
        heap: EventQueue::default(),
        wheel: TimingWheel::default(),
        now: 0,
        next_id: 0,
    };
    let t = Nanos(1_000);
    for _ in 0..4 {
        pair.push(t);
    }
    pair.push(Nanos(10)); // earlier event, popped first
    assert_eq!(pair.pop(u64::MAX), Some(Nanos(10)));
    for _ in 0..4 {
        pair.push(t); // second half of the tie burst
    }
    for _ in 0..8 {
        assert_eq!(pair.pop(u64::MAX), Some(t));
    }
    assert!(pair.heap.is_empty() && pair.wheel.is_empty());
}

#[test]
fn clear_preserves_counters_and_later_pushes() {
    let mut pair = Pair {
        heap: EventQueue::default(),
        wheel: TimingWheel::default(),
        now: 0,
        next_id: 0,
    };
    for d in [5u64, 70, 1 << 20, (1 << 36) + 9] {
        pair.push(Nanos(d));
    }
    pair.pop(u64::MAX);
    pair.heap.clear();
    pair.wheel.clear();
    assert!(pair.heap.is_empty() && pair.wheel.is_empty());
    assert_eq!(pair.heap.total_pushed(), pair.wheel.total_pushed());
    assert_eq!(pair.heap.total_popped(), pair.wheel.total_popped());
    // Pushes after a clear must still work from the last popped time.
    let t = Nanos(pair.now + 3);
    pair.push(t);
    assert_eq!(pair.pop(u64::MAX), Some(t));
}
