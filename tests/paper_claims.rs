//! End-to-end checks of the paper's central claims, at the paper's own
//! microbenchmark scale (16-1 staggered incast, 1 MB flows, 100 Gbps).
//!
//! These are the workspace's "does the reproduction reproduce?" tests:
//! each asserts a *direction* the paper reports (who wins), never an
//! absolute number.

use fairness_repro::fairsim::{CcSpec, IncastScenario, ProtocolKind, Variant};

fn run(kind: ProtocolKind, variant: Variant) -> fairness_repro::fairsim::IncastResult {
    let res = IncastScenario::paper(16, CcSpec::new(kind, variant), 42).run();
    assert!(res.all_finished, "{:?}/{:?} did not drain", kind, variant);
    res
}

/// Section III-E: "Flows that begin last finish first" under default
/// HPCC/Swift — the staggered incast's late joiners (line-rate starts)
/// overtake the early flows.
#[test]
fn default_protocols_let_late_flows_finish_first() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        let res = run(kind, Variant::Default);
        let sf = res.start_finish();
        let first_start_finish = sf.first().expect("16 flows").1;
        let last_start_finish = sf.last().expect("16 flows").1;
        assert!(
            last_start_finish < first_start_finish,
            "{kind:?}: expected the last-joining flow to finish before the first \
             (got {last_start_finish} vs {first_start_finish})"
        );
    }
}

/// Section VI-B1 / Figures 8-9: with VAI + SF "the finish time of the
/// flows is much closer together".
#[test]
fn vai_sf_shrinks_finish_spread() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        let default = run(kind, Variant::Default);
        let vai_sf = run(kind, Variant::VaiSf);
        assert!(
            vai_sf.finish_spread_us() < default.finish_spread_us() / 2.0,
            "{kind:?}: VAI SF spread {} should be well under default {}",
            vai_sf.finish_spread_us(),
            default.finish_spread_us()
        );
    }
}

/// Figures 5(a)/6(a): VAI SF converges to a Jain index near 1 much
/// quicker than the default settings.
#[test]
fn vai_sf_converges_faster() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        let default = run(kind, Variant::Default);
        let vai_sf = run(kind, Variant::VaiSf);
        let t_default = default.convergence_time(0.9);
        let t_vai_sf = vai_sf.convergence_time(0.9).expect("VAI SF must converge");
        // A default run that never converges is an even stronger win.
        if let Some(t) = t_default {
            assert!(
                t_vai_sf < t,
                "{kind:?}: VAI SF converged at {t_vai_sf} vs default {t}"
            );
        }
    }
}

/// The scalar form of the convergence claim: the unfairness integral
/// ∫(1−J)dt over the whole incast must shrink substantially under VAI+SF.
#[test]
fn vai_sf_shrinks_the_unfairness_integral() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        let default = run(kind, Variant::Default);
        let vai_sf = run(kind, Variant::VaiSf);
        assert!(
            vai_sf.unfairness_integral() < default.unfairness_integral() * 0.7,
            "{kind:?}: integral {} should be well under default {}",
            vai_sf.unfairness_integral(),
            default.unfairness_integral()
        );
    }
}

/// Figure 1(a,c): the 1 Gbps AI and probabilistic baselines also converge
/// faster than default — the paper's motivation experiments.
#[test]
fn high_ai_and_probabilistic_baselines_improve_fairness() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        let default = run(kind, Variant::Default);
        for variant in [Variant::HighAi, Variant::Probabilistic] {
            let alt = run(kind, variant);
            assert!(
                alt.finish_spread_us() < default.finish_spread_us(),
                "{kind:?}/{variant:?}: spread {} should beat default {}",
                alt.finish_spread_us(),
                default.finish_spread_us()
            );
        }
    }
}

/// Figure 1(b,d): the high-AI variant pays for its fairness with more
/// standing queue than default (the latency/fairness trade the paper's
/// mechanisms are designed to avoid).
#[test]
fn high_ai_sustains_more_queue_than_default() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        let default = run(kind, Variant::Default);
        let high = run(kind, Variant::HighAi);
        assert!(
            high.mean_queue() > default.mean_queue(),
            "{kind:?}: high-AI mean queue {} should exceed default {}",
            high.mean_queue(),
            default.mean_queue()
        );
    }
}

/// Figure 5(b): HPCC VAI SF still keeps queues near zero outside the
/// join transients (mean queue within a small multiple of default's).
#[test]
fn hpcc_vai_sf_keeps_small_queues() {
    let default = run(ProtocolKind::Hpcc, Variant::Default);
    let vai_sf = run(ProtocolKind::Hpcc, Variant::VaiSf);
    assert!(
        vai_sf.mean_queue() < default.mean_queue() * 4.0 + 10_000.0,
        "VAI SF mean queue {} vs default {}",
        vai_sf.mean_queue(),
        default.mean_queue()
    );
}

/// The 96-1 scaling claim (Figures 5(c,d)/6(c,d)): with six times the
/// senders, VAI SF still converges and drains every flow.
#[test]
fn incast_96_1_with_vai_sf_converges_and_drains() {
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        let res = IncastScenario::paper(96, CcSpec::new(kind, Variant::VaiSf), 42).run();
        assert!(res.all_finished, "{kind:?} 96-1 did not drain");
        assert_eq!(res.fcts.len(), 96);
        assert!(
            res.convergence_time(0.85).is_some(),
            "{kind:?} 96-1 never became fair"
        );
    }
}

/// The headline tail-latency claim, restated over a seed ensemble: the
/// *ensemble median* of per-seed p99 slowdowns under VAI+SF stays below
/// the baseline's on the 16-1 incast.
///
/// Tolerance: we require VAI+SF to win by at least 3% (factor 0.97)
/// rather than merely tie. The 3-seed ensemble at seed 42 shows a ~11%
/// gap (p99 median ≈ 14.8x vs 16.7x), so 3% leaves headroom for seed
/// noise while still failing if the mechanism stops helping the tail;
/// a strict `<` would pass on a 0.01% fluke win and test nothing.
#[test]
fn vai_sf_improves_ensemble_median_p99_slowdown() {
    use fairness_repro::fleet::{run_sweep, Ensemble, SweepConfig, SweepSpec, WorkloadAxis};

    let spec = SweepSpec {
        name: "claim-p99".to_string(),
        cc: vec![
            CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
            CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        ],
        workload: WorkloadAxis::Incast { degrees: vec![16] },
        ensemble: Ensemble::new(42, 3),
    };
    let report = run_sweep(&spec, &SweepConfig::new()).report();
    assert_eq!(report.cells.len(), 2);
    let base = report.cells[0]
        .p99_median
        .expect("baseline ensemble produced samples");
    let vai_sf = report.cells[1]
        .p99_median
        .expect("VAI+SF ensemble produced samples");
    assert!(
        vai_sf < base * 0.97,
        "ensemble-median p99 slowdown: VAI+SF {vai_sf:.3} should beat baseline {base:.3} \
         by at least 3%"
    );
}
