//! `repro` — regenerate the paper's figures.
//!
//! ```text
//! repro <figure>... [--full-scale] [--seed N]
//! repro all [--full-scale] [--seed N]
//! repro --sweep NAME_OR_FILE [--ensemble N] [--jobs N] [--sweep-out FILE]
//! repro list
//! ```
//!
//! Figures: fig1-fig6, fig8-fig13 (fig7 is the topology diagram,
//! reproduced as `netsim::topology::FatTreeConfig::paper()` and its unit
//! tests), plus the ablations: `ablation-mechanisms` (VAI/SF/both),
//! `ablation-sf` (cadence sweep), `ablation-dampener`,
//! `ablation-hyper-ai` (Timely-style HAI on Swift), `ablation-timely`
//! (mechanism generality), `ablation-permutation` (boundary of
//! applicability), `ablation-sf-increases` (negative control),
//! `ablation-degree` (incast-degree sweep), and `ablation-pfc`.
//! `--faults` (or the `faults` figure name) runs the fault-injection
//! sweep: slowdown CDFs under fabric wire loss and link flaps, baseline
//! vs VAI+SF.
//! `--json` emits machine-readable summaries for the fig* targets.
//!
//! `--sweep NAME_OR_FILE` runs a declarative fleet sweep instead of a
//! figure: a preset name (`repro list` prints them) or a path to a
//! `fleet::SweepSpec` JSON file. The report (per-cell p50/p95/p99/p99.9
//! slowdown, ensemble medians, bootstrap 95% CIs) prints as a text table,
//! or as report JSON with `--json`; `--sweep-out FILE` also writes the
//! JSON to a file. `--ensemble N` overrides the spec's replicate count,
//! `--seed` its root seed, and `--jobs N` pins the worker-pool width
//! (never affects the report bytes). Exits 1 if any run stalled.
//!
//! Default scale runs the incast microbenchmarks exactly as in the paper
//! and the fat-tree simulations at reduced scale (see DESIGN.md);
//! `--full-scale` switches the fat-tree runs to the paper's 320 hosts and
//! 50 ms (very slow).
//!
//! `--trace DIR` writes per-run trace artifacts under `DIR`
//! (`<figure>.<variant>.trace.jsonl`, `.chrome.json` for Perfetto, and
//! `.metrics.json`; sweep runs use `<tag>.<cell-slug>.s<seed>.*`);
//! `--trace-filter SUB` (repeatable) restricts event collection to the
//! named subsystems (engine/port/flow/cc/pfc/fault). The binary must be
//! built with `--features trace` for events to be recorded; without it
//! `--trace` still runs but emits a warning.

use bench::{run_figure, run_figure_json, FigureCtx, Scale, ALL_FIGURES, DEFAULT_SEED};
use fairsim::{SchedulerKind, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut seed: Option<u64> = None;
    let mut json = false;
    let mut scheduler = SchedulerKind::default();
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut trace_cfg = TraceConfig::full();
    let mut figures: Vec<String> = Vec::new();
    let mut sweep: Option<String> = None;
    let mut ensemble: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut sweep_out: Option<std::path::PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full-scale" => scale = Scale::Full,
            "--json" => json = true,
            "--faults" => figures.push("faults".to_string()),
            "--seed" => {
                i += 1;
                seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer")),
                );
            }
            "--scheduler" => {
                i += 1;
                scheduler = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scheduler needs 'heap' or 'wheel'"));
            }
            "--trace" => {
                i += 1;
                let dir = args
                    .get(i)
                    .unwrap_or_else(|| die("--trace needs a directory path"));
                trace_dir = Some(std::path::PathBuf::from(dir));
            }
            "--trace-filter" => {
                i += 1;
                let sub = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--trace-filter needs engine|port|flow|cc|pfc"));
                trace_cfg = trace_cfg.with_filter(sub);
            }
            "--sweep" => {
                i += 1;
                let target = args
                    .get(i)
                    .unwrap_or_else(|| die("--sweep needs a preset name or spec file"));
                sweep = Some(target.clone());
            }
            "--ensemble" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--ensemble needs a replicate count >= 1"));
                if n == 0 {
                    die("--ensemble needs a replicate count >= 1");
                }
                ensemble = Some(n);
            }
            "--jobs" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a worker count >= 1"));
                if n == 0 {
                    die("--jobs needs a worker count >= 1");
                }
                jobs = Some(n);
            }
            "--sweep-out" => {
                i += 1;
                let path = args
                    .get(i)
                    .unwrap_or_else(|| die("--sweep-out needs a file path"));
                sweep_out = Some(std::path::PathBuf::from(path));
            }
            "list" => {
                for f in ALL_FIGURES {
                    println!("{f}");
                }
                println!();
                println!("sweep presets (use with --sweep):");
                for p in fleet::preset_names() {
                    println!("{p}");
                }
                return;
            }
            "all" => figures.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "-h" | "--help" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other}"));
            }
            other => figures.push(other.to_string()),
        }
        i += 1;
    }

    if figures.is_empty() && sweep.is_none() {
        print_usage();
        std::process::exit(2);
    }

    if trace_dir.is_some() && !simtrace::ENABLED {
        eprintln!(
            "repro: warning: built without the `trace` feature; --trace will \
             record nothing (rebuild with `--features trace`)"
        );
    }

    if let Some(target) = sweep {
        if !figures.is_empty() {
            die("--sweep and figure names are mutually exclusive");
        }
        run_sweep_mode(
            &target, seed, ensemble, jobs, scheduler, trace_dir, trace_cfg, json, sweep_out,
        );
        return;
    }

    let mut ctx = FigureCtx::new(scale, seed.unwrap_or(DEFAULT_SEED)).with_scheduler(scheduler);
    if trace_dir.is_some() {
        ctx = ctx.with_trace(trace_cfg, trace_dir);
    }

    for f in &figures {
        let fig_ctx = ctx.clone().with_tag(f);
        let output = if json {
            run_figure_json(f, &fig_ctx)
        } else {
            run_figure(f, &fig_ctx)
        };
        match output {
            Some(output) => println!("{output}"),
            None if json => die(&format!("figure '{f}' has no JSON form")),
            None => die(&format!(
                "unknown figure '{f}' (fig7 is the topology diagram; run `repro list`)"
            )),
        }
    }
}

/// Resolve, run, and report a fleet sweep. Exits 1 if any run stalled.
#[allow(clippy::too_many_arguments)]
fn run_sweep_mode(
    target: &str,
    seed: Option<u64>,
    ensemble: Option<usize>,
    jobs: Option<usize>,
    scheduler: SchedulerKind,
    trace_dir: Option<std::path::PathBuf>,
    trace_cfg: TraceConfig,
    json: bool,
    sweep_out: Option<std::path::PathBuf>,
) {
    let mut spec = match fleet::preset(target) {
        Some(spec) => spec,
        None => {
            let text = std::fs::read_to_string(target).unwrap_or_else(|e| {
                die(&format!(
                    "--sweep '{target}' is neither a preset (run `repro list`) \
                     nor a readable spec file: {e}"
                ))
            });
            fleet::SweepSpec::parse(&text)
                .unwrap_or_else(|e| die(&format!("cannot parse sweep spec {target}: {e}")))
        }
    };
    if let Some(seed) = seed {
        spec.ensemble.root_seed = seed;
    }
    if let Some(n) = ensemble {
        spec.ensemble.replicates = n;
    }

    let mut cfg = fleet::SweepConfig::new().with_scheduler(scheduler);
    if let Some(n) = jobs {
        cfg = cfg.with_workers(n);
    }
    if trace_dir.is_some() {
        cfg = cfg.with_trace(trace_cfg, trace_dir);
    }

    let outcome = fleet::run_sweep(&spec, &cfg);
    let report = outcome.report();
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render_text());
    }
    if let Some(path) = sweep_out {
        std::fs::write(&path, format!("{}\n", report.to_json()))
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
    }
    if outcome.any_stalled() {
        eprintln!(
            "repro: sweep '{}' had stalled runs (see outcomes)",
            spec.name
        );
        std::process::exit(1);
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro <figure>... [--full-scale] [--seed N] [--json] \
         [--scheduler heap|wheel] [--faults] [--trace DIR] \
         [--trace-filter SUB]... | repro --sweep NAME_OR_FILE [--ensemble N] \
         [--jobs N] [--sweep-out FILE] | repro all | repro list"
    );
    eprintln!("figures: {}", ALL_FIGURES.join(" "));
    eprintln!("sweep presets: {}", fleet::preset_names().join(" "));
    eprintln!("trace subsystems: engine port flow cc pfc fault");
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
