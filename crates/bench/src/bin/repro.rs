//! `repro` — regenerate the paper's figures.
//!
//! ```text
//! repro <figure>... [--full-scale] [--seed N]
//! repro all [--full-scale] [--seed N]
//! repro list
//! ```
//!
//! Figures: fig1-fig6, fig8-fig13 (fig7 is the topology diagram,
//! reproduced as `netsim::topology::FatTreeConfig::paper()` and its unit
//! tests), plus the ablations: `ablation-mechanisms` (VAI/SF/both),
//! `ablation-sf` (cadence sweep), `ablation-dampener`,
//! `ablation-hyper-ai` (Timely-style HAI on Swift), `ablation-timely`
//! (mechanism generality), `ablation-permutation` (boundary of
//! applicability), `ablation-sf-increases` (negative control),
//! `ablation-degree` (incast-degree sweep), and `ablation-pfc`.
//! `--json` emits machine-readable summaries for the fig* targets.
//!
//! Default scale runs the incast microbenchmarks exactly as in the paper
//! and the fat-tree simulations at reduced scale (see DESIGN.md);
//! `--full-scale` switches the fat-tree runs to the paper's 320 hosts and
//! 50 ms (very slow).

use bench::{run_figure, run_figure_json, Scale, ALL_FIGURES, DEFAULT_SEED};
use fairsim::SchedulerKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut seed = DEFAULT_SEED;
    let mut json = false;
    let mut scheduler = SchedulerKind::default();
    let mut figures: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full-scale" => scale = Scale::Full,
            "--json" => json = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--scheduler" => {
                i += 1;
                scheduler = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scheduler needs 'heap' or 'wheel'"));
            }
            "list" => {
                for f in ALL_FIGURES {
                    println!("{f}");
                }
                return;
            }
            "all" => figures.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "-h" | "--help" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other}"));
            }
            other => figures.push(other.to_string()),
        }
        i += 1;
    }

    if figures.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    for f in &figures {
        let output = if json {
            run_figure_json(f, scale, seed, scheduler)
        } else {
            run_figure(f, scale, seed, scheduler)
        };
        match output {
            Some(output) => println!("{output}"),
            None if json => die(&format!("figure '{f}' has no JSON form")),
            None => die(&format!(
                "unknown figure '{f}' (fig7 is the topology diagram; run `repro list`)"
            )),
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro <figure>... [--full-scale] [--seed N] [--json] \
         [--scheduler heap|wheel] | repro all | repro list"
    );
    eprintln!("figures: {}", ALL_FIGURES.join(" "));
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
