//! `repro` — regenerate the paper's figures.
//!
//! ```text
//! repro <figure>... [--full-scale] [--seed N]
//! repro all [--full-scale] [--seed N]
//! repro list
//! ```
//!
//! Figures: fig1-fig6, fig8-fig13 (fig7 is the topology diagram,
//! reproduced as `netsim::topology::FatTreeConfig::paper()` and its unit
//! tests), plus the ablations: `ablation-mechanisms` (VAI/SF/both),
//! `ablation-sf` (cadence sweep), `ablation-dampener`,
//! `ablation-hyper-ai` (Timely-style HAI on Swift), `ablation-timely`
//! (mechanism generality), `ablation-permutation` (boundary of
//! applicability), `ablation-sf-increases` (negative control),
//! `ablation-degree` (incast-degree sweep), and `ablation-pfc`.
//! `--faults` (or the `faults` figure name) runs the fault-injection
//! sweep: slowdown CDFs under fabric wire loss and link flaps, baseline
//! vs VAI+SF.
//! `--json` emits machine-readable summaries for the fig* targets.
//!
//! Default scale runs the incast microbenchmarks exactly as in the paper
//! and the fat-tree simulations at reduced scale (see DESIGN.md);
//! `--full-scale` switches the fat-tree runs to the paper's 320 hosts and
//! 50 ms (very slow).
//!
//! `--trace DIR` writes per-variant trace artifacts under `DIR`
//! (`<figure>.<variant>.trace.jsonl`, `.chrome.json` for Perfetto, and
//! `.metrics.json`); `--trace-filter SUB` (repeatable) restricts event
//! collection to the named subsystems (engine/port/flow/cc/pfc/fault). The
//! binary must be built with `--features trace` for events to be
//! recorded; without it `--trace` still runs but emits a warning.

use bench::{run_figure, run_figure_json, FigureCtx, Scale, ALL_FIGURES, DEFAULT_SEED};
use fairsim::{SchedulerKind, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut seed = DEFAULT_SEED;
    let mut json = false;
    let mut scheduler = SchedulerKind::default();
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut trace_cfg = TraceConfig::full();
    let mut figures: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full-scale" => scale = Scale::Full,
            "--json" => json = true,
            "--faults" => figures.push("faults".to_string()),
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--scheduler" => {
                i += 1;
                scheduler = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scheduler needs 'heap' or 'wheel'"));
            }
            "--trace" => {
                i += 1;
                let dir = args
                    .get(i)
                    .unwrap_or_else(|| die("--trace needs a directory path"));
                trace_dir = Some(std::path::PathBuf::from(dir));
            }
            "--trace-filter" => {
                i += 1;
                let sub = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--trace-filter needs engine|port|flow|cc|pfc"));
                trace_cfg = trace_cfg.with_filter(sub);
            }
            "list" => {
                for f in ALL_FIGURES {
                    println!("{f}");
                }
                return;
            }
            "all" => figures.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "-h" | "--help" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other}"));
            }
            other => figures.push(other.to_string()),
        }
        i += 1;
    }

    if figures.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    if trace_dir.is_some() && !simtrace::ENABLED {
        eprintln!(
            "repro: warning: built without the `trace` feature; --trace will \
             record nothing (rebuild with `--features trace`)"
        );
    }

    let mut ctx = FigureCtx::new(scale, seed).with_scheduler(scheduler);
    if trace_dir.is_some() {
        ctx = ctx.with_trace(trace_cfg, trace_dir);
    }

    for f in &figures {
        let fig_ctx = ctx.clone().with_tag(f);
        let output = if json {
            run_figure_json(f, &fig_ctx)
        } else {
            run_figure(f, &fig_ctx)
        };
        match output {
            Some(output) => println!("{output}"),
            None if json => die(&format!("figure '{f}' has no JSON form")),
            None => die(&format!(
                "unknown figure '{f}' (fig7 is the topology diagram; run `repro list`)"
            )),
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro <figure>... [--full-scale] [--seed N] [--json] \
         [--scheduler heap|wheel] [--faults] [--trace DIR] \
         [--trace-filter SUB]... | repro all | repro list"
    );
    eprintln!("figures: {}", ALL_FIGURES.join(" "));
    eprintln!("trace subsystems: engine port flow cc pfc fault");
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
