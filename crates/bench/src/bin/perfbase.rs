//! `perfbase` — machine-readable performance baseline for the event engine.
//!
//! Runs three workloads on both schedulers (binary heap and hierarchical
//! timing wheel) and writes `BENCH_engine.json`:
//!
//! * `dense-timer` — 30k live timers in steady state, each pop
//!   rescheduling a short delta ahead (the RTO/CC-timer population shape).
//! * `incast` — the paper's 16-1 staggered incast under HPCC VAI+SF.
//! * `fat-tree` — a reduced-scale datacenter run (Hadoop arrivals on a
//!   32-host fat-tree).
//!
//! Each entry reports wall time, events dispatched, and events/sec; the
//! top level records the wheel/heap speedup per workload. When built with
//! `--features trace` the incast/fat-tree entries also report the
//! scheduler occupancy high-water mark (`occupancy_hwm`), and the report
//! carries `trace_instrumented: true` so regression tooling knows the
//! numbers include the instrumented build's overhead. With
//! `--features alloc-stats` a counting global allocator adds
//! `allocs_per_event` and `bytes_per_event` per cell (and
//! `alloc_instrumented: true` at the top level) — the memory-pressure
//! companion to the events/sec gate. Usage:
//!
//! ```text
//! perfbase [--out PATH] [--seed N] [--check BASELINE]
//! ```
//!
//! `--check BASELINE` compares the fresh measurements against a committed
//! `BENCH_engine.json` and exits nonzero when any workload×scheduler cell
//! regresses by more than 10% in events/sec (the CI perf gate). In check
//! mode no report is written unless `--out` is also given.

use std::time::Instant;

use bench::alloc_stats;
use dcsim::{DetRng, EventQueue, Nanos, Scheduler, SchedulerKind, TimingWheel};
use fairsim::{
    CcSpec, DatacenterScenario, IncastScenario, ProtocolKind, RunCtx, Scenario, Variant,
};
use minijson::{obj, Value};

#[cfg(feature = "alloc-stats")]
#[global_allocator]
static COUNTING_ALLOC: alloc_stats::CountingAlloc = alloc_stats::CountingAlloc;

/// Timers alive at once in the dense-timer workload.
const DENSE_LIVE: u32 = 30_000;
/// Pop/reschedule cycles in the dense-timer workload.
const DENSE_CHURN: u64 = 2_000_000;

struct Measurement {
    secs: f64,
    events: u64,
    /// Global-allocator calls during the best pass (0 without the
    /// `alloc-stats` feature).
    allocs: u64,
    /// Bytes requested from the global allocator during the best pass.
    bytes: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("secs", Value::from(self.secs)),
            ("events", Value::from(self.events)),
            ("events_per_sec", Value::from(self.events_per_sec().round())),
        ];
        if alloc_stats::ENABLED {
            // Per-event ratios, rounded to 3 decimals: after the slab-pool
            // sweep these sit well below 1 and the interesting signal is
            // "did a change add per-event heap traffic", not noise digits.
            let per = |n: u64| ((n as f64 / self.events as f64) * 1000.0).round() / 1000.0;
            fields.push(("allocs_per_event", Value::from(per(self.allocs))));
            fields.push(("bytes_per_event", Value::from(per(self.bytes))));
        }
        obj(fields)
    }
}

/// Best-of-`passes` wall time for `f`, which reports its event count.
/// Allocation counts are taken from the fastest pass, keeping the two
/// columns describing the same execution.
fn measure(passes: usize, mut f: impl FnMut() -> u64) -> Measurement {
    let mut events = f(); // warmup
    let mut best = f64::INFINITY;
    let (mut allocs, mut bytes) = (0u64, 0u64);
    for _ in 0..passes {
        let (a0, b0) = alloc_stats::snapshot();
        let t0 = Instant::now();
        events = f();
        let dt = t0.elapsed().as_secs_f64();
        let (a1, b1) = alloc_stats::snapshot();
        if dt < best {
            best = dt;
            allocs = a1 - a0;
            bytes = b1 - b0;
        }
    }
    Measurement {
        secs: best,
        events,
        allocs,
        bytes,
    }
}

/// Steady-state timer churn: every pop schedules a replacement a short
/// random delta ahead, holding the pending population at `live`.
fn dense_timer<S: Scheduler<u32> + Default>() -> u64 {
    let mut q = S::default();
    let mut rng = DetRng::new(9);
    for i in 0..DENSE_LIVE {
        q.push(Nanos(rng.below(8_000)), i);
    }
    for _ in 0..DENSE_CHURN {
        let (t, id) = q.pop().expect("steady-state population");
        q.push(t + Nanos(1 + rng.below(8_000)), id);
    }
    DENSE_CHURN + DENSE_LIVE as u64
}

/// Events dispatched and scheduler occupancy high-water mark of one run.
struct RunStats {
    events: u64,
    occupancy_hwm: u64,
}

fn incast(scheduler: SchedulerKind, seed: u64) -> RunStats {
    let sc = IncastScenario::paper(16, CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf), seed);
    let res = sc.run_with(&RunCtx::new(seed).with_scheduler(scheduler));
    assert!(res.all_finished, "incast must drain");
    RunStats {
        events: res.events_handled,
        occupancy_hwm: res.occupancy_hwm,
    }
}

fn fat_tree(scheduler: SchedulerKind, seed: u64) -> RunStats {
    let mut sc = DatacenterScenario::reduced(
        vec![workloads::distributions::FB_HADOOP.to_string()],
        CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        seed,
    );
    // Half a millisecond of arrivals keeps the baseline itself fast while
    // still exercising the full fat-tree event mix.
    sc.horizon = Nanos::from_micros(500);
    let res = sc.run_with(&RunCtx::new(seed).with_scheduler(scheduler));
    assert!(res.completed > 0, "fat-tree run must complete flows");
    RunStats {
        events: res.events_handled,
        occupancy_hwm: res.occupancy_hwm,
    }
}

/// Events/sec a baseline cell may lose before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Compare fresh per-workload measurements against a committed baseline
/// report. Returns the number of cells regressing beyond tolerance.
fn check_against_baseline(
    baseline: &Value,
    fresh: &[(String, f64, f64)], // (workload, heap ev/s, wheel ev/s)
) -> usize {
    let Some(base_workloads) = baseline.get("workloads").and_then(|w| w.as_array()) else {
        eprintln!("perfbase: baseline has no `workloads` array");
        std::process::exit(2);
    };
    let base_cell = |name: &str, sched: &str| -> Option<f64> {
        base_workloads
            .iter()
            .find(|w| w.get("name").and_then(|n| n.as_str()) == Some(name))?
            .get(sched)?
            .get("events_per_sec")?
            .as_f64()
    };
    let mut regressions = 0;
    for (name, heap_eps, wheel_eps) in fresh {
        for (sched, eps) in [("heap", *heap_eps), ("wheel", *wheel_eps)] {
            let Some(base) = base_cell(name, sched) else {
                println!("check {name}/{sched}: no baseline cell — skipped");
                continue;
            };
            let ratio = eps / base;
            let verdict = if ratio < 1.0 - REGRESSION_TOLERANCE {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "check {name:<12} {sched:<5} {eps:>12.0} ev/s vs baseline {base:>12.0} \
                 ({:+.1}%) {verdict}",
                (ratio - 1.0) * 100.0
            );
        }
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_engine.json".to_string();
    let mut out_given = false;
    let mut check_path: Option<String> = None;
    let mut seed = bench::DEFAULT_SEED;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_given = true;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("perfbase: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--check" => {
                i += 1;
                check_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("perfbase: --check needs a baseline path");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("perfbase: --seed needs an integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("perfbase: unknown argument {other}");
                eprintln!("usage: perfbase [--out PATH] [--seed N] [--check BASELINE]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Load the baseline before the (slow) measurement loop so a bad
    // path or malformed file fails immediately.
    let baseline: Option<Value> = check_path.as_ref().map(|base_path| {
        let text = std::fs::read_to_string(base_path).unwrap_or_else(|e| {
            eprintln!("perfbase: cannot read baseline {base_path}: {e}");
            std::process::exit(2);
        });
        Value::parse(&text).unwrap_or_else(|e| {
            eprintln!("perfbase: baseline {base_path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    });

    type Runner = Box<dyn Fn(SchedulerKind) -> RunStats>;
    let workloads: Vec<(&str, usize, Runner)> = vec![
        (
            "dense-timer",
            3,
            Box::new(|k| {
                // The raw scheduler loop has no Simulation wrapper, so it
                // reports its (known) steady-state population directly.
                let events = match k {
                    SchedulerKind::Heap => dense_timer::<EventQueue<u32>>(),
                    SchedulerKind::Wheel => dense_timer::<TimingWheel<u32>>(),
                };
                RunStats {
                    events,
                    occupancy_hwm: u64::from(DENSE_LIVE),
                }
            }),
        ),
        ("incast", 2, Box::new(move |k| incast(k, seed))),
        ("fat-tree", 2, Box::new(move |k| fat_tree(k, seed))),
    ];

    let mut entries = Vec::new();
    let mut fresh: Vec<(String, f64, f64)> = Vec::new();
    for (name, passes, runner) in &workloads {
        let mut occupancy_hwm = 0u64;
        let heap = measure(*passes, || {
            let stats = runner(SchedulerKind::Heap);
            occupancy_hwm = occupancy_hwm.max(stats.occupancy_hwm);
            stats.events
        });
        let wheel = measure(*passes, || {
            let stats = runner(SchedulerKind::Wheel);
            occupancy_hwm = occupancy_hwm.max(stats.occupancy_hwm);
            stats.events
        });
        assert_eq!(
            heap.events, wheel.events,
            "{name}: schedulers must dispatch identical event counts"
        );
        let speedup = heap.secs / wheel.secs;
        println!(
            "{name:<12} heap {:>12.0} ev/s   wheel {:>12.0} ev/s   wheel/heap {speedup:.2}x",
            heap.events_per_sec(),
            wheel.events_per_sec(),
        );
        fresh.push((
            name.to_string(),
            heap.events_per_sec(),
            wheel.events_per_sec(),
        ));
        entries.push(obj([
            ("name", Value::from(*name)),
            ("events", Value::from(heap.events)),
            ("occupancy_hwm", Value::from(occupancy_hwm)),
            ("heap", heap.to_value()),
            ("wheel", wheel.to_value()),
            ("wheel_speedup_over_heap", Value::from(speedup)),
        ]));
    }

    let regressions = match &baseline {
        Some(b) => check_against_baseline(b, &fresh),
        None => 0,
    };

    if check_path.is_none() || out_given {
        let report = obj([
            ("schema", Value::from("BENCH_engine/v1")),
            ("seed", Value::from(seed)),
            ("trace_instrumented", Value::from(simtrace::ENABLED)),
            ("alloc_instrumented", Value::from(alloc_stats::ENABLED)),
            ("dense_live_timers", Value::from(u64::from(DENSE_LIVE))),
            ("workloads", Value::Arr(entries)),
        ]);
        std::fs::write(&out_path, format!("{}\n", report.pretty())).unwrap_or_else(|e| {
            eprintln!("perfbase: cannot write {out_path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {out_path}");
    }
    if regressions > 0 {
        eprintln!(
            "perfbase: {regressions} cell(s) regressed more than {:.0}% vs baseline",
            REGRESSION_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
}
