//! `perfbase` — machine-readable performance baseline for the event engine.
//!
//! Runs three workloads on both schedulers (binary heap and hierarchical
//! timing wheel) and writes `BENCH_engine.json`:
//!
//! * `dense-timer` — 30k live timers in steady state, each pop
//!   rescheduling a short delta ahead (the RTO/CC-timer population shape).
//! * `incast` — the paper's 16-1 staggered incast under HPCC VAI+SF.
//! * `fat-tree` — a reduced-scale datacenter run (Hadoop arrivals on a
//!   32-host fat-tree).
//!
//! Each entry reports wall time, events dispatched, and events/sec; the
//! top level records the wheel/heap speedup per workload. When built with
//! `--features trace` the incast/fat-tree entries also report the
//! scheduler occupancy high-water mark (`occupancy_hwm`), and the report
//! carries `trace_instrumented: true` so regression tooling knows the
//! numbers include the instrumented build's overhead. Usage:
//!
//! ```text
//! perfbase [--out PATH] [--seed N]
//! ```

use std::time::Instant;

use dcsim::{DetRng, EventQueue, Nanos, Scheduler, SchedulerKind, TimingWheel};
use fairsim::{
    CcSpec, DatacenterScenario, IncastScenario, ProtocolKind, RunCtx, Scenario, Variant,
};
use minijson::{obj, Value};

/// Timers alive at once in the dense-timer workload.
const DENSE_LIVE: u32 = 30_000;
/// Pop/reschedule cycles in the dense-timer workload.
const DENSE_CHURN: u64 = 2_000_000;

struct Measurement {
    secs: f64,
    events: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs
    }

    fn to_value(&self) -> Value {
        obj([
            ("secs", Value::from(self.secs)),
            ("events", Value::from(self.events)),
            ("events_per_sec", Value::from(self.events_per_sec().round())),
        ])
    }
}

/// Best-of-`passes` wall time for `f`, which reports its event count.
fn measure(passes: usize, mut f: impl FnMut() -> u64) -> Measurement {
    let mut events = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t0 = Instant::now();
        events = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Measurement { secs: best, events }
}

/// Steady-state timer churn: every pop schedules a replacement a short
/// random delta ahead, holding the pending population at `live`.
fn dense_timer<S: Scheduler<u32> + Default>() -> u64 {
    let mut q = S::default();
    let mut rng = DetRng::new(9);
    for i in 0..DENSE_LIVE {
        q.push(Nanos(rng.below(8_000)), i);
    }
    for _ in 0..DENSE_CHURN {
        let (t, id) = q.pop().expect("steady-state population");
        q.push(t + Nanos(1 + rng.below(8_000)), id);
    }
    DENSE_CHURN + DENSE_LIVE as u64
}

/// Events dispatched and scheduler occupancy high-water mark of one run.
struct RunStats {
    events: u64,
    occupancy_hwm: u64,
}

fn incast(scheduler: SchedulerKind, seed: u64) -> RunStats {
    let sc = IncastScenario::paper(16, CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf), seed);
    let res = sc.run_with(&RunCtx::new(seed).with_scheduler(scheduler));
    assert!(res.all_finished, "incast must drain");
    RunStats {
        events: res.events_handled,
        occupancy_hwm: res.occupancy_hwm,
    }
}

fn fat_tree(scheduler: SchedulerKind, seed: u64) -> RunStats {
    let mut sc = DatacenterScenario::reduced(
        vec![workloads::distributions::FB_HADOOP.to_string()],
        CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        seed,
    );
    // Half a millisecond of arrivals keeps the baseline itself fast while
    // still exercising the full fat-tree event mix.
    sc.horizon = Nanos::from_micros(500);
    let res = sc.run_with(&RunCtx::new(seed).with_scheduler(scheduler));
    assert!(res.completed > 0, "fat-tree run must complete flows");
    RunStats {
        events: res.events_handled,
        occupancy_hwm: res.occupancy_hwm,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_engine.json".to_string();
    let mut seed = bench::DEFAULT_SEED;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("perfbase: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("perfbase: --seed needs an integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("perfbase: unknown argument {other}");
                eprintln!("usage: perfbase [--out PATH] [--seed N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    type Runner = Box<dyn Fn(SchedulerKind) -> RunStats>;
    let workloads: Vec<(&str, usize, Runner)> = vec![
        (
            "dense-timer",
            3,
            Box::new(|k| {
                // The raw scheduler loop has no Simulation wrapper, so it
                // reports its (known) steady-state population directly.
                let events = match k {
                    SchedulerKind::Heap => dense_timer::<EventQueue<u32>>(),
                    SchedulerKind::Wheel => dense_timer::<TimingWheel<u32>>(),
                };
                RunStats {
                    events,
                    occupancy_hwm: u64::from(DENSE_LIVE),
                }
            }),
        ),
        ("incast", 2, Box::new(move |k| incast(k, seed))),
        ("fat-tree", 2, Box::new(move |k| fat_tree(k, seed))),
    ];

    let mut entries = Vec::new();
    for (name, passes, runner) in &workloads {
        let mut occupancy_hwm = 0u64;
        let heap = measure(*passes, || {
            let stats = runner(SchedulerKind::Heap);
            occupancy_hwm = occupancy_hwm.max(stats.occupancy_hwm);
            stats.events
        });
        let wheel = measure(*passes, || {
            let stats = runner(SchedulerKind::Wheel);
            occupancy_hwm = occupancy_hwm.max(stats.occupancy_hwm);
            stats.events
        });
        assert_eq!(
            heap.events, wheel.events,
            "{name}: schedulers must dispatch identical event counts"
        );
        let speedup = heap.secs / wheel.secs;
        println!(
            "{name:<12} heap {:>12.0} ev/s   wheel {:>12.0} ev/s   wheel/heap {speedup:.2}x",
            heap.events_per_sec(),
            wheel.events_per_sec(),
        );
        entries.push(obj([
            ("name", Value::from(*name)),
            ("events", Value::from(heap.events)),
            ("occupancy_hwm", Value::from(occupancy_hwm)),
            ("heap", heap.to_value()),
            ("wheel", wheel.to_value()),
            ("wheel_speedup_over_heap", Value::from(speedup)),
        ]));
    }

    let report = obj([
        ("schema", Value::from("BENCH_engine/v1")),
        ("seed", Value::from(seed)),
        ("trace_instrumented", Value::from(simtrace::ENABLED)),
        ("dense_live_timers", Value::from(u64::from(DENSE_LIVE))),
        ("workloads", Value::Arr(entries)),
    ]);
    std::fs::write(&out_path, format!("{}\n", report.pretty())).unwrap_or_else(|e| {
        eprintln!("perfbase: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
