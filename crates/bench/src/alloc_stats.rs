//! Allocation accounting for the perf baseline.
//!
//! Built with `--features alloc-stats`, the `perfbase` binary installs
//! [`CountingAlloc`] as the global allocator and samples [`snapshot`]
//! around each measured pass, turning the engine's allocation traffic
//! into two per-workload columns of `BENCH_engine.json`:
//! `allocs_per_event` and `bytes_per_event`. After the slab-pool sweep
//! these sit near zero on the packet path — the columns exist so a
//! change that quietly reintroduces per-event heap traffic shows up in
//! the committed baseline diff even when wall time hides it.
//!
//! Without the feature every function is a free-standing no-op stub, the
//! global allocator stays `std`'s, and the JSON columns are omitted
//! (`alloc_instrumented: false` says so).
//!
//! The counters are relaxed atomics: perfbase measurement passes are
//! single-threaded, so relaxed ordering costs nothing and never loses a
//! count; cross-thread interleaving (the fleet harness) would only relax
//! attribution, not totals.

/// Whether allocation accounting is compiled in.
pub const ENABLED: bool = cfg!(feature = "alloc-stats");

#[cfg(feature = "alloc-stats")]
mod imp {
    // The one unsafe impl in the workspace: `GlobalAlloc` is an unsafe
    // trait by definition. The impl adds nothing but counter bumps around
    // delegation to `System`, preserving `System`'s safety contract.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// A `System` wrapper that counts allocation calls and bytes.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(layout.size() as u64, Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A growth realloc is fresh traffic for the grown portion —
            // exactly the `Vec` doubling the A1 lint hunts.
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Cumulative `(allocations, bytes)` since process start.
    pub fn snapshot() -> (u64, u64) {
        (ALLOCS.load(Relaxed), BYTES.load(Relaxed))
    }
}

#[cfg(feature = "alloc-stats")]
pub use imp::{snapshot, CountingAlloc};

/// Stub: accounting compiled out, counters frozen at zero.
#[cfg(not(feature = "alloc-stats"))]
pub fn snapshot() -> (u64, u64) {
    (0, 0)
}
