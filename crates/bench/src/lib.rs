//! Figure-regeneration library: one function per figure of the paper,
//! each returning the rendered text block the `repro` binary prints.
//!
//! Every figure function takes a [`Scale`]: `Reduced` keeps the paper's
//! incast microbenchmarks at full scale (they are cheap) but shrinks the
//! fat-tree datacenter runs to laptop size; `Full` reproduces the paper's
//! exact 320-host / 50 ms configuration (hours of CPU).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_stats;

use dcsim::Nanos;
use fairsim::render::{f3, fmt_size, TextTable};
use fairsim::scenarios::LONG_FLOW_BYTES;
use fairsim::series::thin;
use fairsim::{
    CcSpec, DatacenterResult, FaultResult, IncastResult, IncastScenario, ProtocolKind, RunCtx,
    Scenario, SchedulerKind, TraceConfig, TraceLevel, Tracer, Variant,
};
use netsim::FatTreeConfig;
use workloads::distributions;

/// Experiment scale for the datacenter figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 32-host fat-tree, 2 ms of arrivals (default; minutes of CPU).
    Reduced,
    /// The paper's 320-host fat-tree, 50 ms of arrivals (hours of CPU).
    Full,
}

/// Default seed used by the harness (override with `--seed`).
pub const DEFAULT_SEED: u64 = 42;

/// Everything a figure function needs besides its own workload: the
/// datacenter scale, the root seed, the scheduler backend, the trace
/// configuration, and where (if anywhere) to write trace artifacts.
///
/// Replaces the old `(scale, seed, scheduler)` parameter triples so new
/// run-wide knobs stop multiplying every signature in this crate.
#[derive(Debug, Clone)]
pub struct FigureCtx {
    /// Datacenter experiment scale.
    pub scale: Scale,
    /// Root seed (override with `--seed`).
    pub seed: u64,
    /// Event scheduler backing every run.
    pub scheduler: SchedulerKind,
    /// Trace/metrics collection level.
    pub trace: TraceConfig,
    /// Directory for per-variant trace artifacts; `None` discards traces.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Tag prefixed to trace artifact file names (usually the figure name).
    pub tag: String,
}

impl FigureCtx {
    /// A context with the given scale and seed, default scheduler, and
    /// tracing off.
    pub fn new(scale: Scale, seed: u64) -> Self {
        FigureCtx {
            scale,
            seed,
            scheduler: SchedulerKind::default(),
            trace: TraceConfig::off(),
            trace_dir: None,
            tag: String::new(),
        }
    }

    /// Select the event-scheduler backend.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enable tracing at the given level, writing artifacts to `dir`.
    pub fn with_trace(mut self, trace: TraceConfig, dir: Option<std::path::PathBuf>) -> Self {
        self.trace = trace;
        self.trace_dir = dir;
        self
    }

    /// Set the artifact file-name tag (chainable; the harness sets the
    /// figure name before each figure).
    pub fn with_tag(mut self, tag: &str) -> Self {
        self.tag = tag.to_string();
        self
    }

    /// The per-run context handed to [`fairsim::Scenario::run_with`].
    pub fn run_ctx(&self) -> RunCtx {
        RunCtx::new(self.seed)
            .with_scheduler(self.scheduler)
            .with_trace(self.trace)
    }
}

/// File-name slug for a variant label: lowercase alphanumerics, runs of
/// anything else collapsed to `-`.
fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// Write a run's trace artifacts under `ctx.trace_dir`:
/// `<tag>.<label>.trace.jsonl` (structured events),
/// `<tag>.<label>.chrome.json` (Perfetto-loadable), and
/// `<tag>.<label>.metrics.json` (counters + histograms).
fn write_trace_artifacts(ctx: &FigureCtx, label: &str, tracer: &Tracer) {
    let Some(dir) = &ctx.trace_dir else { return };
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("cannot create trace dir {}: {e}", dir.display()));
    let stem = if ctx.tag.is_empty() {
        slug(label)
    } else {
        format!("{}.{}", ctx.tag, slug(label))
    };
    let write = |suffix: &str, body: String| {
        let path = dir.join(format!("{stem}.{suffix}"));
        std::fs::write(&path, body)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    };
    if tracer.config().level == TraceLevel::Full {
        write("trace.jsonl", tracer.to_jsonl());
        write("chrome.json", tracer.to_chrome());
    }
    write(
        "metrics.json",
        format!("{}\n", tracer.metrics().to_value().pretty()),
    );
}

/// The fleet execution config for a figure context: same scheduler,
/// trace level, artifact directory, and tag the single-run path uses.
fn sweep_cfg(ctx: &FigureCtx) -> fleet::SweepConfig {
    fleet::SweepConfig::new()
        .with_scheduler(ctx.scheduler)
        .with_trace(ctx.trace, ctx.trace_dir.clone())
        .with_tag(&ctx.tag)
}

/// Run a single-seed sweep and unwrap each cell's one run.
fn run_single_seed(spec: &fleet::SweepSpec, ctx: &FigureCtx) -> Vec<fleet::RunOutput> {
    fleet::run_sweep(spec, &sweep_cfg(ctx))
        .into_cells()
        .into_iter()
        .map(fleet::CellOutcome::into_only_run)
        .collect()
}

fn run_incasts(specs: &[CcSpec], senders: usize, ctx: &FigureCtx) -> Vec<IncastResult> {
    let spec = fleet::SweepSpec {
        name: format!("incast-{senders}"),
        cc: specs.to_vec(),
        workload: fleet::WorkloadAxis::Incast {
            degrees: vec![senders],
        },
        ensemble: fleet::Ensemble::single(ctx.seed),
    };
    run_single_seed(&spec, ctx)
        .into_iter()
        .map(|r| r.into_incast().expect("incast sweep yields incast runs"))
        .collect()
}

fn run_datacenters(
    specs: &[CcSpec],
    workload_names: &[&str],
    ctx: &FigureCtx,
) -> Vec<DatacenterResult> {
    let mix: Vec<String> = workload_names.iter().map(|s| s.to_string()).collect();
    let spec = fleet::SweepSpec {
        name: format!("dc-{}", slug(&mix.join("-"))),
        cc: specs.to_vec(),
        workload: fleet::WorkloadAxis::Datacenter {
            mixes: vec![mix],
            loads: vec![0.5],
            full_scale: ctx.scale == Scale::Full,
        },
        ensemble: fleet::Ensemble::single(ctx.seed),
    };
    run_single_seed(&spec, ctx)
        .into_iter()
        .map(|r| {
            r.into_datacenter()
                .expect("datacenter sweep yields datacenter runs")
        })
        .collect()
}

/// The variant set the paper's incast figures compare, per protocol.
fn incast_specs(kind: ProtocolKind, with_vai_sf: bool) -> Vec<CcSpec> {
    let mut v = vec![
        CcSpec::new(kind, Variant::Default),
        CcSpec::new(kind, Variant::HighAi),
        CcSpec::new(kind, Variant::Probabilistic),
    ];
    if with_vai_sf {
        v.push(CcSpec::new(kind, Variant::VaiSf));
    }
    v
}

/// Render Jain-index and queue-depth tables for a set of incast results.
fn render_jain_queue(title: &str, results: &[IncastResult], rows: usize) -> String {
    let mut out = format!("== {title} ==\n\n");

    let mut header = vec!["t(us)".to_string()];
    header.extend(results.iter().map(|r| format!("jain[{}]", r.label)));
    let mut jain_tbl = TextTable::new(header);
    let base = thin(&results[0].jain, rows);
    for &(t, _) in &base {
        let mut cells = vec![format!("{t:.0}")];
        for r in results {
            let v = r
                .jain
                .iter()
                .min_by(|a, b| {
                    (a.0 - t)
                        .abs()
                        .partial_cmp(&(b.0 - t).abs())
                        .expect("no NaN")
                })
                .map(|&(_, j)| j);
            cells.push(v.map(f3).unwrap_or_else(|| "-".into()));
        }
        jain_tbl.row(cells);
    }
    out.push_str(&jain_tbl.render());

    let mut header = vec!["t(us)".to_string()];
    header.extend(results.iter().map(|r| format!("queueKB[{}]", r.label)));
    let mut q_tbl = TextTable::new(header);
    let base = thin(&results[0].queue, rows);
    for &(t, _) in &base {
        let mut cells = vec![format!("{t:.0}")];
        for r in results {
            let v = r
                .queue
                .iter()
                .min_by(|a, b| {
                    (a.0 - t)
                        .abs()
                        .partial_cmp(&(b.0 - t).abs())
                        .expect("no NaN")
                })
                .map(|&(_, q)| q);
            cells.push(
                v.map(|q| format!("{:.1}", q as f64 / 1e3))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        q_tbl.row(cells);
    }
    out.push('\n');
    out.push_str(&q_tbl.render());

    out.push_str("\nSummary (per variant):\n");
    let mut s = TextTable::new(vec![
        "variant",
        "converge@0.9(us)",
        "unfairness integral",
        "peak queue(KB)",
        "mean queue(KB)",
        "finish spread(us)",
        "all finished",
    ]);
    for r in results {
        s.row(vec![
            r.label.clone(),
            r.convergence_time(0.9)
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "never".into()),
            format!("{:.0}", r.unfairness_integral()),
            format!("{:.1}", r.peak_queue() as f64 / 1e3),
            format!("{:.1}", r.mean_queue() / 1e3),
            format!("{:.0}", r.finish_spread_us()),
            r.all_finished.to_string(),
        ]);
    }
    out.push_str(&s.render());
    out
}

/// Render a start-vs-finish scatter as a table.
fn render_start_finish(title: &str, results: &[IncastResult]) -> String {
    let mut out = format!("== {title} ==\n\n");
    let mut header = vec!["flow".to_string(), "start(us)".to_string()];
    header.extend(results.iter().map(|r| format!("finish(us)[{}]", r.label)));
    let mut tbl = TextTable::new(header);
    let base = results[0].start_finish();
    for (i, &(start, _)) in base.iter().enumerate() {
        let mut cells = vec![format!("{i}"), format!("{start:.0}")];
        for r in results {
            let sf = r.start_finish();
            cells.push(
                sf.get(i)
                    .map(|&(_, f)| format!("{f:.0}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        tbl.row(cells);
    }
    out.push_str(&tbl.render());
    out.push_str("\nFinish spread (last - first completion):\n");
    for r in results {
        out.push_str(&format!(
            "  {:<22} {:>8.0} us\n",
            r.label,
            r.finish_spread_us()
        ));
    }
    out
}

/// Figure 1: Jain index and queue depth, 16-1 incast, HPCC and Swift
/// baselines (default / 1 Gbps AI / probabilistic).
pub fn fig1(ctx: &FigureCtx) -> String {
    let mut out = String::new();
    for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
        let results = run_incasts(&incast_specs(kind, false), 16, ctx);
        let name = if kind == ProtocolKind::Hpcc {
            "Fig 1(a,b): 16-1 incast, HPCC"
        } else {
            "Fig 1(c,d): 16-1 incast, Swift"
        };
        out.push_str(&render_jain_queue(name, &results, 30));
        out.push('\n');
    }
    out
}

/// Figure 2: start vs finish, 16-1 staggered incast, HPCC baselines.
pub fn fig2(ctx: &FigureCtx) -> String {
    let results = run_incasts(&incast_specs(ProtocolKind::Hpcc, false), 16, ctx);
    render_start_finish("Fig 2: start vs finish, 16-1 incast, HPCC", &results)
}

/// Figure 3: start vs finish, 16-1 staggered incast, Swift baselines.
pub fn fig3(ctx: &FigureCtx) -> String {
    let results = run_incasts(&incast_specs(ProtocolKind::Swift, false), 16, ctx);
    render_start_finish("Fig 3: start vs finish, 16-1 incast, Swift", &results)
}

/// Figure 4: the fluid-model fairness difference.
pub fn fig4() -> String {
    let p = fluid::FluidParams::figure4();
    let samples = fluid::integrate(&p, 600_000.0, 5.0, 30);
    let mut out = String::from("== Fig 4: fluid model, per-RTT vs Sampling Frequency MD ==\n\n");
    out.push_str(&format!(
        "params: r={} ns, MTU={} B, s={}, beta={}, C1={} B/ns, C0={} B/ns\n",
        p.rtt_ns, p.mtu, p.s, p.beta, p.c1, p.c0
    ));
    out.push_str(&format!(
        "SF converges faster (1/r < (C1+C0)/(s*MTU)): {}\n\n",
        p.sf_converges_faster()
    ));
    let mut tbl = TextTable::new(vec!["t(us)", "gap perRTT", "gap SF", "difference"]);
    for s in &samples {
        tbl.row(vec![
            format!("{:.0}", s.t_ns / 1e3),
            f3(s.gap_rtt()),
            f3(s.gap_sf()),
            f3(s.fairness_difference()),
        ]);
    }
    out.push_str(&tbl.render());
    let peak = samples
        .iter()
        .map(|s| s.fairness_difference())
        .fold(f64::MIN, f64::max);
    out.push_str(&format!(
        "\npeak fairness difference: {peak:.3} B/ns (positive hump then decay, as in the paper)\n"
    ));
    out
}

/// Figure 5: 16-1 and 96-1 incast with HPCC variants including VAI SF.
pub fn fig5(ctx: &FigureCtx) -> String {
    let mut out = String::new();
    for (senders, tag) in [(16, "(a,b)"), (96, "(c,d)")] {
        let results = run_incasts(&incast_specs(ProtocolKind::Hpcc, true), senders, ctx);
        out.push_str(&render_jain_queue(
            &format!("Fig 5{tag}: {senders}-1 incast, HPCC"),
            &results,
            30,
        ));
        out.push('\n');
    }
    out
}

/// Figure 6: 16-1 and 96-1 incast with Swift variants including VAI SF.
pub fn fig6(ctx: &FigureCtx) -> String {
    let mut out = String::new();
    for (senders, tag) in [(16, "(a,b)"), (96, "(c,d)")] {
        let results = run_incasts(&incast_specs(ProtocolKind::Swift, true), senders, ctx);
        out.push_str(&render_jain_queue(
            &format!("Fig 6{tag}: {senders}-1 incast, Swift"),
            &results,
            30,
        ));
        out.push('\n');
    }
    out
}

/// Figure 8: start vs finish, HPCC default vs VAI SF.
pub fn fig8(ctx: &FigureCtx) -> String {
    let specs = [
        CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
        CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
    ];
    let results = run_incasts(&specs, 16, ctx);
    render_start_finish(
        "Fig 8: start vs finish, 16-1 incast, HPCC vs HPCC VAI SF",
        &results,
    )
}

/// Figure 9: start vs finish, Swift default vs VAI SF.
pub fn fig9(ctx: &FigureCtx) -> String {
    let specs = [
        CcSpec::new(ProtocolKind::Swift, Variant::Default),
        CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
    ];
    let results = run_incasts(&specs, 16, ctx);
    render_start_finish(
        "Fig 9: start vs finish, 16-1 incast, Swift vs Swift VAI SF",
        &results,
    )
}

/// The four datacenter variants of Figures 10-13.
fn datacenter_specs() -> Vec<CcSpec> {
    vec![
        CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
        CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        CcSpec::new(ProtocolKind::Swift, Variant::Default),
        CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
    ]
}

fn render_slowdown(title: &str, results: &[DatacenterResult], median: bool, rows: usize) -> String {
    let mut out = format!("== {title} ==\n\n");
    for r in results {
        out.push_str(&format!(
            "  {:<16} {} flows offered, {} completed\n",
            r.label, r.n_flows, r.completed
        ));
    }
    out.push('\n');
    let stat = if median { "median" } else { "p99.9" };
    let mut header = vec!["flow size".to_string()];
    header.extend(results.iter().map(|r| format!("{stat}[{}]", r.label)));
    let mut tbl = TextTable::new(header);
    let base = &results[0].table.points;
    // Evenly thin the bins but always keep the largest five (the long
    // flows are the whole point of these figures).
    let mut picks = thin(&(0..base.len()).collect::<Vec<_>>(), rows);
    for i in base.len().saturating_sub(5)..base.len() {
        if !picks.contains(&i) {
            picks.push(i);
        }
    }
    picks.sort_unstable();
    for &i in &picks {
        let mut cells = vec![fmt_size(base[i].size)];
        for r in results {
            let cell = r
                .table
                .points
                .get(i)
                .map(|p| f3(if median { p.median } else { p.tail }))
                .unwrap_or_else(|| "-".into());
            cells.push(cell);
        }
        tbl.row(cells);
    }
    out.push_str(&tbl.render());

    // Paired per-flow comparison: variants at the same seed see the same
    // flow list, so default-vs-VAI-SF pairs are directly comparable.
    if results.len() >= 2 {
        out.push_str("\nPaired per-flow comparison (baseline -> treatment):\n");
        for pair in results.chunks(2) {
            if pair.len() < 2 {
                continue;
            }
            let c = fairsim::PairedComparison::compute(&pair[0].raw, &pair[1].raw, LONG_FLOW_BYTES);
            out.push_str(&format!(
                "  {} -> {}: {} paired flows; long flows (> {}): {:.0}% improved, \
                 geomean speedup {:.2}x\n",
                pair[0].label,
                pair[1].label,
                c.n,
                fmt_size(LONG_FLOW_BYTES),
                c.long_frac_improved * 100.0,
                c.long_geomean_speedup,
            ));
        }
    }

    out.push_str(&format!(
        "\nLong-flow (>{}) {stat} slowdown summary:\n",
        fmt_size(LONG_FLOW_BYTES)
    ));
    for r in results {
        let vals: Vec<f64> = r
            .table
            .points
            .iter()
            .filter(|p| p.size > LONG_FLOW_BYTES)
            .map(|p| if median { p.median } else { p.tail })
            .collect();
        let mean = if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        out.push_str(&format!("  {:<16} mean {stat} = {mean:.1}x\n", r.label));
    }
    out
}

/// Figure 10: 99.9% FCT slowdown vs flow size, Hadoop traffic.
pub fn fig10(ctx: &FigureCtx) -> String {
    let results = run_datacenters(&datacenter_specs(), &[distributions::FB_HADOOP], ctx);
    render_slowdown(
        "Fig 10: 99.9% FCT slowdown, Hadoop traffic",
        &results,
        false,
        25,
    )
}

/// Figure 11: 99.9% FCT slowdown, WebSearch + Alibaba storage mix.
pub fn fig11(ctx: &FigureCtx) -> String {
    let results = run_datacenters(
        &datacenter_specs(),
        &[distributions::WEBSEARCH, distributions::ALI_STORAGE],
        ctx,
    );
    render_slowdown(
        "Fig 11: 99.9% FCT slowdown, WebSearch + Storage traffic",
        &results,
        false,
        25,
    )
}

/// Figure 12: median FCT slowdown, Hadoop traffic.
pub fn fig12(ctx: &FigureCtx) -> String {
    let results = run_datacenters(&datacenter_specs(), &[distributions::FB_HADOOP], ctx);
    render_slowdown(
        "Fig 12: median FCT slowdown, Hadoop traffic",
        &results,
        true,
        25,
    )
}

/// Figure 13: median FCT slowdown, WebSearch + Storage mix.
pub fn fig13(ctx: &FigureCtx) -> String {
    let results = run_datacenters(
        &datacenter_specs(),
        &[distributions::WEBSEARCH, distributions::ALI_STORAGE],
        ctx,
    );
    render_slowdown(
        "Fig 13: median FCT slowdown, WebSearch + Storage traffic",
        &results,
        true,
        25,
    )
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Fault sweep: FCT-slowdown CDFs under fabric wire loss and a flapping
/// agg–spine link, baseline HPCC vs VAI+SF.
///
/// This is the robustness companion to Figures 10-13: the fault plan
/// injects loss (triggering go-back-N recovery and exponential RTO
/// backoff) and periodic link flaps (triggering failover reroutes), and
/// the figure checks that fast convergence to fairness survives — and
/// that no cell wedges (every run outcome is reported).
pub fn faults(ctx: &FigureCtx) -> String {
    let flap = Some((Nanos::from_micros(200), Nanos::from_micros(40)));
    // The sweep grid: loss rate x flap cadence, plus a clean reference
    // cell (which must reproduce the fault-free baseline bit-for-bit).
    let cell = |name: &str, loss: f64, flap: Option<(Nanos, Nanos)>| fleet::FaultCell {
        name: name.to_string(),
        loss,
        bursty: false,
        flap,
    };
    let grid = vec![
        cell("clean", 0.0, None),
        cell("loss 1e-4", 1e-4, None),
        cell("loss 1e-3", 1e-3, None),
        cell("flap 200us", 0.0, flap),
        cell("loss 1e-3 + flap", 1e-3, flap),
    ];
    let names: Vec<String> = grid.iter().map(|c| c.name.clone()).collect();
    let spec = fleet::SweepSpec {
        name: "faults".to_string(),
        cc: vec![
            CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
            CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        ],
        workload: fleet::WorkloadAxis::Faults {
            mix: vec![distributions::FB_HADOOP.to_string()],
            loads: vec![0.5],
            cells: grid,
            full_scale: ctx.scale == Scale::Full,
        },
        ensemble: fleet::Ensemble::single(ctx.seed),
    };
    // Expansion order is grid cells outer, cc inner, so runs come back as
    // (baseline, treatment) pairs per grid cell.
    let mut runs = run_single_seed(&spec, ctx)
        .into_iter()
        .map(|r| r.into_fault().expect("fault sweep yields fault runs"));
    let results: Vec<(String, FaultResult, FaultResult)> = names
        .into_iter()
        .map(|name| {
            let b = runs.next().expect("two runs per fault-grid cell");
            let t = runs.next().expect("two runs per fault-grid cell");
            (name, b, t)
        })
        .collect();

    let mut out =
        String::from("== Fault sweep: FCT slowdown CDFs under loss and link flaps ==\n\n");
    let mut tbl = TextTable::new(vec![
        "cell", "variant", "offered", "done", "p50", "p90", "p99", "p99.9", "outcome",
    ]);
    for (name, b, t) in &results {
        for r in [b, t] {
            let mut v: Vec<f64> = r.raw.iter().map(|&(_, _, s)| s).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            tbl.row(vec![
                name.clone(),
                r.label.clone(),
                r.n_flows.to_string(),
                r.completed.to_string(),
                f3(percentile(&v, 0.5)),
                f3(percentile(&v, 0.9)),
                f3(percentile(&v, 0.99)),
                f3(percentile(&v, 0.999)),
                r.outcome.name().to_string(),
            ]);
        }
    }
    out.push_str(&tbl.render());

    out.push_str("\nFault-subsystem counters:\n");
    let mut ftbl = TextTable::new(vec![
        "cell",
        "variant",
        "wire drops",
        "link-down drops",
        "reroutes",
        "rto fires",
    ]);
    for (name, b, t) in &results {
        for r in [b, t] {
            ftbl.row(vec![
                name.clone(),
                r.label.clone(),
                r.faults.wire_drops.to_string(),
                r.faults.link_down_drops.to_string(),
                r.faults.reroutes.to_string(),
                r.faults.rto_fires.to_string(),
            ]);
        }
    }
    out.push_str(&ftbl.render());

    out.push_str("\nPaired per-flow comparison (baseline -> VAI+SF):\n");
    for (name, b, t) in &results {
        let c = fairsim::PairedComparison::compute(&b.raw, &t.raw, LONG_FLOW_BYTES);
        out.push_str(&format!(
            "  {name:<18} {} paired flows; long flows (> {}): {:.0}% improved, \
             geomean speedup {:.2}x\n",
            c.n,
            fmt_size(LONG_FLOW_BYTES),
            c.long_frac_improved * 100.0,
            c.long_geomean_speedup,
        ));
    }
    out
}

/// Ablation: VAI alone vs SF alone vs both (16-1 incast, HPCC).
pub fn ablation_mechanisms(ctx: &FigureCtx) -> String {
    let specs = [
        CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
        CcSpec::new(ProtocolKind::Hpcc, Variant::Vai),
        CcSpec::new(ProtocolKind::Hpcc, Variant::Sf),
        CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
    ];
    let results = run_incasts(&specs, 16, ctx);
    render_jain_queue(
        "Ablation: VAI / SF / VAI+SF, 16-1 incast, HPCC",
        &results,
        25,
    )
}

/// Run the paper's staggered incast with a *custom* per-flow CC factory
/// (for ablations that tweak parameters the `Variant` enum does not
/// expose). Returns the same [`IncastResult`] the stock scenarios yield.
fn run_incast_custom<F>(senders: usize, ctx: &FigureCtx, label: &str, make_cc: F) -> IncastResult
where
    F: Fn(u64) -> Box<dyn faircc::CongestionControl>,
{
    let seed = ctx.seed;
    let sc = IncastScenario::paper(
        senders,
        CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        seed,
    );
    let topo = netsim::Topology::paper_star(senders + 1);
    let hosts = topo.hosts.clone();
    let switch = topo.switches[0];
    let mut net = topo.builder.build(
        netsim::NetConfig {
            seed,
            ..Default::default()
        },
        netsim::MonitorConfig {
            sample_interval: Some(sc.sample_interval),
            sample_until: sc.horizon,
            watch_ports: vec![],
            track_flow_rates: true,
        },
    );
    net.set_tracer(Tracer::new(ctx.trace));
    let bottleneck = net.port_towards(switch, hosts[senders]).expect("port");
    net.monitor.cfg.watch_ports = vec![bottleneck];
    for (i, f) in workloads::staggered_incast(&sc.incast).iter().enumerate() {
        net.add_flow(
            netsim::FlowSpec {
                src: hosts[f.src],
                dst: hosts[f.dst],
                size: f.size,
                start: f.start,
            },
            make_cc(seed.wrapping_mul(1009).wrapping_add(i as u64)),
        );
    }
    let (mut net, outcome, events_handled, occupancy_hwm) =
        run_primed(net, sc.horizon, ctx.scheduler);
    let trace = if simtrace::ENABLED && ctx.trace.level != fairsim::TraceLevel::Off {
        net.publish_metrics();
        let tracer = net.take_tracer();
        write_trace_artifacts(ctx, label, &tracer);
        Some(tracer)
    } else {
        None
    };
    let jain: Vec<(f64, f64)> = net
        .monitor
        .samples()
        .iter()
        .filter(|smp| !smp.flow_rates.is_empty())
        .map(|smp| {
            let rates: Vec<f64> = smp.flow_rates.iter().map(|(_, r)| *r).collect();
            (smp.t.as_micros_f64(), metrics::jain(&rates))
        })
        .collect();
    let fcts = net.monitor.fcts().to_vec();
    let mut raw: Vec<(u32, u64, f64)> = Vec::with_capacity(fcts.len());
    for r in &fcts {
        // Same denominator as the stock scenarios: the pristine ideal FCT.
        let ideal = net.ideal_fct(r.flow);
        let slowdown = (r.fct().as_u64() as f64 / ideal.as_u64() as f64).max(1.0);
        raw.push((r.flow.0, r.size.as_u64(), slowdown));
    }
    IncastResult {
        label: label.to_string(),
        jain,
        queue: net
            .monitor
            .samples()
            .iter()
            .map(|smp| {
                (
                    smp.t.as_micros_f64(),
                    smp.queue_bytes.first().copied().unwrap_or(0),
                )
            })
            .collect(),
        fcts,
        raw,
        all_finished: net.all_finished(),
        outcome,
        events_handled,
        occupancy_hwm,
        trace,
    }
}

/// Prime and run `net` until `deadline` on the selected scheduler (with
/// the standard stall watchdog), returning the world, the run outcome,
/// the number of events dispatched, and the scheduler occupancy
/// high-water mark.
fn run_primed(
    net: netsim::Network,
    deadline: Nanos,
    scheduler: SchedulerKind,
) -> (netsim::Network, netsim::RunOutcome, u64, u64) {
    use dcsim::{EventQueue, Scheduler, Simulation, TimingWheel};
    fn go<S: Scheduler<netsim::Event> + Default>(
        net: netsim::Network,
        deadline: Nanos,
    ) -> (netsim::Network, netsim::RunOutcome, u64, u64) {
        let mut sim = Simulation::with_scheduler(net, S::default());
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        let watchdog = Nanos(deadline.as_u64() / 4).max(Nanos::from_millis(1));
        let outcome = netsim::run_watched(&mut sim, deadline, u64::MAX, watchdog);
        let handled = sim.events_handled();
        let occupancy = sim.occupancy_high_water() as u64;
        (sim.into_world(), outcome, handled, occupancy)
    }
    match scheduler {
        SchedulerKind::Heap => go::<EventQueue<netsim::Event>>(net, deadline),
        SchedulerKind::Wheel => go::<TimingWheel<netsim::Event>>(net, deadline),
    }
}

/// Ablation: Sampling Frequency cadence sweep (s in {5, 15, 30, 60, 120}).
pub fn ablation_sf(ctx: &FigureCtx) -> String {
    use cc_hpcc::{Hpcc, HpccConfig};
    use dcsim::{Bytes, DetRng};
    let mut out = String::from("== Ablation: SF cadence sweep, 16-1 incast, HPCC VAI+SF ==\n\n");
    let mut tbl = TextTable::new(vec![
        "s (ACKs)",
        "converge@0.9(us)",
        "peak queue(KB)",
        "finish spread(us)",
    ]);
    let base_rtt = netsim::Topology::paper_star(17).base_rtt;
    for s in [5u32, 15, 30, 60, 120] {
        let res = run_incast_custom(16, ctx, &format!("s={s}"), |fseed| {
            let mut cfg =
                HpccConfig::vai_sf(base_rtt, dcsim::BitRate::from_gbps(100), Bytes::from_kb(50));
            cfg.sf = Some(faircc::SfConfig {
                acks_per_decrease: s,
            });
            Box::new(Hpcc::new(cfg, DetRng::new(fseed)))
        });
        tbl.row(vec![
            format!("{s}"),
            res.convergence_time(0.9)
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "never".into()),
            format!("{:.1}", res.peak_queue() as f64 / 1e3),
            format!("{:.0}", res.finish_spread_us()),
        ]);
    }
    out.push_str(&tbl.render());
    out
}

/// Ablation: the VAI dampener (paper Section IV-A). Disabling it lets the
/// elevated AI feed back into fresh congestion during a 96-1 incast; the
/// dampener bounds queues at equal fairness.
pub fn ablation_dampener(ctx: &FigureCtx) -> String {
    use cc_hpcc::{Hpcc, HpccConfig};
    use dcsim::{Bytes, DetRng};
    let mut out = String::from("== Ablation: VAI dampener on/off, 96-1 incast, HPCC VAI+SF ==\n\n");
    let mut tbl = TextTable::new(vec![
        "dampener",
        "peak queue(KB)",
        "mean queue(KB)",
        "finish spread(us)",
        "all finished",
    ]);
    let base_rtt = netsim::Topology::paper_star(97).base_rtt;
    for (label, constant) in [("enabled (8)", 8.0f64), ("disabled", f64::INFINITY)] {
        let res = run_incast_custom(96, ctx, label, |fseed| {
            let mut cfg =
                HpccConfig::vai_sf(base_rtt, dcsim::BitRate::from_gbps(100), Bytes::from_kb(50));
            if let Some(vai) = &mut cfg.vai {
                // An infinite constant makes the divisor 1 regardless of
                // the dampener value: the feedback brake is off.
                vai.dampener_constant = constant;
            }
            Box::new(Hpcc::new(cfg, DetRng::new(fseed)))
        });
        tbl.row(vec![
            label.to_string(),
            format!("{:.1}", res.peak_queue() as f64 / 1e3),
            format!("{:.1}", res.mean_queue() / 1e3),
            format!("{:.0}", res.finish_spread_us()),
            res.all_finished.to_string(),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str(
        "\nWithout the dampener, Variable AI's extra additive increase keeps\n\
         regenerating the very congestion that mints its tokens.\n",
    );
    out
}

/// Ablation: Timely-style hyper AI on Swift (the paper's future-work
/// suggestion for Swift's Hadoop median slowdown: "Swift may benefit
/// from a hyper additive increase setting like in Timely, which can
/// help grab available bandwidth").
pub fn ablation_hyper_ai(ctx: &FigureCtx) -> String {
    let specs = [
        CcSpec::new(ProtocolKind::Swift, Variant::Default),
        CcSpec::new(ProtocolKind::Swift, Variant::Default).with_hyper_ai(),
        CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
        CcSpec::new(ProtocolKind::Swift, Variant::VaiSf).with_hyper_ai(),
    ];
    let results = run_datacenters(&specs, &[distributions::FB_HADOOP], ctx);
    let mut out = render_slowdown(
        "Ablation: Swift hyper-AI (Timely-style), Hadoop traffic, median",
        &results,
        true,
        15,
    );
    out.push_str(
        "\nThe paper conjectures hyper AI repairs Swift's Hadoop median by\n\
         grabbing freed bandwidth faster after congestion clears.\n",
    );
    out
}

/// Ablation: mechanism generality — Variable AI + Sampling Frequency on
/// Timely, a third sender-side protocol neither evaluated in the paper
/// nor sharing HPCC's or Swift's signal (RTT *gradient*). The paper
/// claims the mechanisms are "broadly applicable to other sender
/// reaction-based protocols"; this checks that claim.
pub fn ablation_timely(ctx: &FigureCtx) -> String {
    let specs = [
        CcSpec::new(ProtocolKind::Timely, Variant::Default),
        CcSpec::new(ProtocolKind::Timely, Variant::Sf),
        CcSpec::new(ProtocolKind::Timely, Variant::VaiSf),
    ];
    let results = run_incasts(&specs, 16, ctx);
    render_jain_queue(
        "Ablation: VAI+SF generality on Timely, 16-1 incast",
        &results,
        25,
    )
}

/// Ablation: permutation traffic — the classic fabric-fairness stressor.
///
/// Every host sends one large flow to a distinct destination (no incast);
/// on a 1:1 fabric nothing would congest, so this uses an oversubscribed
/// fat-tree (fabric links at host speed) where ECMP collisions create
/// unequal shares. Convergence to fairness then decides how long the
/// collided flows lag the clean ones.
pub fn ablation_permutation(ctx: &FigureCtx) -> String {
    use dcsim::Bytes;
    let fat_tree = FatTreeConfig {
        // Oversubscribed: fabric at host speed.
        fabric_rate: dcsim::BitRate::from_gbps(100),
        ..FatTreeConfig::reduced()
    };
    let arrivals = workloads::permutation(
        fat_tree.num_hosts(),
        Bytes::from_mb(4),
        Nanos::ZERO,
        ctx.seed ^ 0xBEEF,
    );
    let mut out =
        String::from("== Ablation: permutation traffic on an oversubscribed fat-tree ==\n\n");
    let mut tbl = TextTable::new(vec![
        "variant",
        "finish spread(us)",
        "worst slowdown",
        "median slowdown",
        "all finished",
    ]);
    for (kind, variant) in [
        (ProtocolKind::Hpcc, Variant::Default),
        (ProtocolKind::Hpcc, Variant::VaiSf),
        (ProtocolKind::Swift, Variant::Default),
        (ProtocolKind::Swift, Variant::VaiSf),
    ] {
        let res = fairsim::TraceScenario {
            fat_tree,
            arrivals: arrivals.clone(),
            cc: CcSpec::new(kind, variant),
            seed: ctx.seed,
            deadline: Nanos::from_millis(50),
            sample_interval: None,
            scheduler: ctx.scheduler,
        }
        .run_with(&ctx.run_ctx());
        if let Some(tracer) = &res.trace {
            write_trace_artifacts(ctx, &res.label, tracer);
        }
        let finishes: Vec<f64> = res.fcts.iter().map(|r| r.finish.as_micros_f64()).collect();
        let spread = finishes.iter().cloned().fold(f64::MIN, f64::max)
            - finishes.iter().cloned().fold(f64::MAX, f64::min);
        let slowdowns: Vec<f64> = res.raw.iter().map(|&(_, _, s)| s).collect();
        tbl.row(vec![
            res.label.clone(),
            format!("{spread:.0}"),
            format!("{:.2}", slowdowns.iter().cloned().fold(f64::MIN, f64::max)),
            format!("{:.2}", metrics::median(&slowdowns)),
            res.all_finished.to_string(),
        ]);
    }
    out.push_str(&tbl.render());
    out
}

/// Ablation (negative control): Sampling Frequency applied to *increases*
/// as well as decreases — the design the paper explicitly rejects because
/// high-rate flows would then also increase more often. Expect fairness
/// to regress relative to decrease-only SF.
pub fn ablation_sf_increases(ctx: &FigureCtx) -> String {
    use cc_hpcc::{Hpcc, HpccConfig};
    use dcsim::{Bytes, DetRng};
    let mut out = String::from(
        "== Ablation (negative control): SF gating increases too, 16-1 incast, HPCC ==\n\n",
    );
    let base_rtt = netsim::Topology::paper_star(17).base_rtt;
    let mut tbl = TextTable::new(vec![
        "variant",
        "converge@0.9(us)",
        "unfairness integral",
        "finish spread(us)",
    ]);
    for (label, on_increases) in [("SF decreases only (paper)", false), ("SF both ways", true)] {
        let res = run_incast_custom(16, ctx, label, |fseed| {
            let mut cfg =
                HpccConfig::vai_sf(base_rtt, dcsim::BitRate::from_gbps(100), Bytes::from_kb(50));
            cfg.sf_on_increases = on_increases;
            Box::new(Hpcc::new(cfg, DetRng::new(fseed)))
        });
        tbl.row(vec![
            label.to_string(),
            res.convergence_time(0.9)
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "never".into()),
            format!("{:.0}", res.unfairness_integral()),
            format!("{:.0}", res.finish_spread_us()),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str(
        "\nThe paper's rule — SF must gate decreases only — holds: letting\n\
         high-rate flows also *increase* more often cancels the benefit.\n",
    );
    out
}

/// Ablation: incast-degree sweep — how the convergence benefit scales
/// with the number of joining senders (8 to 96).
pub fn ablation_degree(ctx: &FigureCtx) -> String {
    let mut out = String::from("== Ablation: incast-degree sweep, HPCC default vs VAI SF ==\n\n");
    let mut tbl = TextTable::new(vec![
        "senders",
        "spread default(us)",
        "spread VAI SF(us)",
        "improvement",
    ]);
    let degrees = vec![8usize, 16, 32, 64, 96];
    let spec = fleet::SweepSpec {
        name: "ablation-degree".to_string(),
        cc: vec![
            CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
            CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        ],
        workload: fleet::WorkloadAxis::Incast {
            degrees: degrees.clone(),
        },
        ensemble: fleet::Ensemble::single(ctx.seed),
    };
    // One multi-degree sweep; cells come back (default, VAI SF) per degree.
    let results: Vec<IncastResult> = run_single_seed(&spec, ctx)
        .into_iter()
        .map(|r| r.into_incast().expect("incast sweep yields incast runs"))
        .collect();
    for (senders, pair) in degrees.iter().zip(results.chunks_exact(2)) {
        let d = pair[0].finish_spread_us();
        let v = pair[1].finish_spread_us();
        tbl.row(vec![
            format!("{senders}"),
            format!("{d:.0}"),
            format!("{v:.0}"),
            format!("{:.2}x", d / v.max(1.0)),
        ]);
    }
    out.push_str(&tbl.render());
    out
}

/// Ablation: PFC headroom — verify that with PFC enabled at realistic
/// watermarks, no experiment ever pauses (queues stay far below XOFF).
pub fn ablation_pfc(ctx: &FigureCtx) -> String {
    let mut out = String::from("== Ablation: PFC headroom, 16-1 incast ==\n\n");
    let mut tbl = TextTable::new(vec!["variant", "peak queue(KB)", "PFC XOFF(KB)", "margin"]);
    let xoff = netsim::pfc::PfcConfig::default_100g().xoff;
    let specs = [
        CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
        CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
        CcSpec::new(ProtocolKind::Swift, Variant::Default),
        CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
    ];
    for res in run_incasts(&specs, 16, ctx) {
        let peak = res.peak_queue();
        tbl.row(vec![
            res.label.clone(),
            format!("{:.1}", peak as f64 / 1e3),
            format!("{:.0}", xoff.as_f64() / 1e3),
            format!("{:.1}x", xoff.as_f64() / peak.max(1) as f64),
        ]);
    }
    out.push_str(&tbl.render());
    out.push_str("\nAll margins > 1x mean PFC never engages on the paper's scenarios.\n");
    out
}

/// Run a figure by name and emit machine-readable JSON instead of text
/// tables. Covered: the incast figures (per-variant [`fairsim::IncastSummary`]),
/// the datacenter figures (per-variant [`fairsim::DatacenterSummary`]),
/// and fig4 (the fluid-model samples). `None` for unknown names or
/// figures with no JSON form.
pub fn run_figure_json(name: &str, ctx: &FigureCtx) -> Option<String> {
    use fairsim::export::{to_json, DatacenterSummary, IncastSummary};
    let incast = |specs: &[CcSpec], senders: usize| {
        let summaries: Vec<IncastSummary> = run_incasts(specs, senders, ctx)
            .iter()
            .map(IncastSummary::from)
            .collect();
        to_json(&summaries)
    };
    let dc = |workloads: &[&str]| {
        let summaries: Vec<DatacenterSummary> =
            run_datacenters(&datacenter_specs(), workloads, ctx)
                .iter()
                .map(DatacenterSummary::from)
                .collect();
        to_json(&summaries)
    };
    Some(match name {
        "fig1" | "fig2" | "fig3" => {
            let mut all = Vec::new();
            for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift] {
                all.extend(
                    run_incasts(&incast_specs(kind, false), 16, ctx)
                        .iter()
                        .map(fairsim::IncastSummary::from),
                );
            }
            fairsim::export::to_json(&all)
        }
        "fig5" => incast(&incast_specs(ProtocolKind::Hpcc, true), 16),
        "fig6" => incast(&incast_specs(ProtocolKind::Swift, true), 16),
        "fig8" => incast(
            &[
                CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
                CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
            ],
            16,
        ),
        "fig9" => incast(
            &[
                CcSpec::new(ProtocolKind::Swift, Variant::Default),
                CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
            ],
            16,
        ),
        "fig4" => {
            let p = fluid::FluidParams::figure4();
            let samples = fluid::integrate(&p, 600_000.0, 5.0, 120);
            let rows: Vec<minijson::Value> = samples
                .iter()
                .map(|s| minijson::arr([s.t_ns, s.gap_rtt(), s.gap_sf(), s.fairness_difference()]))
                .collect();
            minijson::Value::Arr(rows).pretty()
        }
        "fig10" | "fig12" => dc(&[distributions::FB_HADOOP]),
        "fig11" | "fig13" => dc(&[distributions::WEBSEARCH, distributions::ALI_STORAGE]),
        _ => return None,
    })
}

/// Run a figure by name; `None` if unknown.
pub fn run_figure(name: &str, ctx: &FigureCtx) -> Option<String> {
    Some(match name {
        "fig1" => fig1(ctx),
        "fig2" => fig2(ctx),
        "fig3" => fig3(ctx),
        "fig4" => fig4(),
        "fig5" => fig5(ctx),
        "fig6" => fig6(ctx),
        "fig8" => fig8(ctx),
        "fig9" => fig9(ctx),
        "fig10" => fig10(ctx),
        "fig11" => fig11(ctx),
        "fig12" => fig12(ctx),
        "fig13" => fig13(ctx),
        "ablation-mechanisms" => ablation_mechanisms(ctx),
        "ablation-sf" => ablation_sf(ctx),
        "ablation-dampener" => ablation_dampener(ctx),
        "ablation-hyper-ai" => ablation_hyper_ai(ctx),
        "ablation-timely" => ablation_timely(ctx),
        "ablation-permutation" => ablation_permutation(ctx),
        "ablation-sf-increases" => ablation_sf_increases(ctx),
        "ablation-degree" => ablation_degree(ctx),
        "ablation-pfc" => ablation_pfc(ctx),
        "faults" => faults(ctx),
        _ => return None,
    })
}

/// Every figure name, in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablation-mechanisms",
    "ablation-sf",
    "ablation-dampener",
    "ablation-hyper-ai",
    "ablation-timely",
    "ablation-permutation",
    "ablation-sf-increases",
    "ablation-degree",
    "ablation-pfc",
    "faults",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_is_cheap_and_correct() {
        let s = fig4();
        assert!(s.contains("SF converges faster"));
        assert!(s.contains("true"));
    }

    #[test]
    fn run_figure_rejects_unknown() {
        let ctx = FigureCtx::new(Scale::Reduced, 1);
        assert!(run_figure("fig7", &ctx).is_none()); // topology diagram
        assert!(run_figure("fig4", &ctx).is_some());
    }

    #[test]
    fn fig4_json_is_valid() {
        let ctx = FigureCtx::new(Scale::Reduced, 1);
        let json = run_figure_json("fig4", &ctx).unwrap();
        let v = minijson::Value::parse(&json).unwrap();
        assert!(v.as_array().unwrap().len() > 100);
        assert!(run_figure_json("ablation-pfc", &ctx).is_none());
    }

    #[test]
    fn slugs_are_filename_safe() {
        assert_eq!(slug("HPCC 1Gbps"), "hpcc-1gbps");
        assert_eq!(slug("Swift VAI SF"), "swift-vai-sf");
        assert_eq!(slug("s=15"), "s-15");
    }
}
