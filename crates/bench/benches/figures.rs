//! One benchmark per paper figure (scaled-down inputs so the whole suite
//! completes in minutes — the full regeneration lives in the `repro`
//! binary).
//!
//! * `fig1/fig2/fig3/fig5/fig6/fig8/fig9` — incast kernels (8-1, smaller
//!   flows) per protocol/variant.
//! * `fig4` — the fluid-model integration at full fidelity.
//! * `fig10-fig13` — datacenter kernel (tiny fat-tree, short horizon) for
//!   the Hadoop and WebSearch+Storage mixes.
//!
//! Criterion-free: each kernel is timed with `Instant` and the best of a
//! few passes is printed (see `benches/engine.rs` for the rationale).

use std::hint::black_box;
use std::time::Instant;

use dcsim::{Bytes, Nanos, SchedulerKind};
use fairsim::{CcSpec, DatacenterScenario, IncastScenario, ProtocolKind, Variant};
use netsim::FatTreeConfig;
use workloads::{distributions, IncastConfig};

fn bench<T>(name: &str, passes: usize, mut f: impl FnMut() -> T) {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    println!("{name:<32} {:>10.1} ms", best * 1e3);
}

fn incast_kernel(cc: CcSpec) -> usize {
    let sc = IncastScenario {
        incast: IncastConfig {
            senders: 8,
            flow_size: Bytes::from_kb(250),
            flows_per_interval: 2,
            interval: Nanos::from_micros(20),
        },
        cc,
        seed: 42,
        sample_interval: Nanos::from_micros(10),
        horizon: Nanos::from_millis(10),
        scheduler: SchedulerKind::default(),
    };
    let res = sc.run();
    assert!(res.all_finished);
    res.fcts.len()
}

fn datacenter_kernel(cc: CcSpec, workload_names: &[&str]) -> usize {
    let sc = DatacenterScenario {
        fat_tree: FatTreeConfig {
            pods: 2,
            tors_per_pod: 1,
            aggs_per_pod: 1,
            hosts_per_tor: 4,
            spines: 1,
            ..FatTreeConfig::reduced()
        },
        workloads: workload_names.iter().map(|s| s.to_string()).collect(),
        load: 0.4,
        horizon: Nanos::from_micros(200),
        cc,
        seed: 42,
        scheduler: SchedulerKind::default(),
    };
    sc.run().completed
}

fn bench_incast_figures() {
    // Figures 1-3: the baselines; 5/6/8/9: the paper's mechanisms.
    for (fig, kind, variant) in [
        ("fig1_hpcc_default", ProtocolKind::Hpcc, Variant::Default),
        ("fig1_hpcc_1gbps", ProtocolKind::Hpcc, Variant::HighAi),
        ("fig1_hpcc_prob", ProtocolKind::Hpcc, Variant::Probabilistic),
        ("fig1_swift_default", ProtocolKind::Swift, Variant::Default),
        ("fig2_hpcc_scatter", ProtocolKind::Hpcc, Variant::Default),
        ("fig3_swift_scatter", ProtocolKind::Swift, Variant::Default),
        ("fig5_hpcc_vai_sf", ProtocolKind::Hpcc, Variant::VaiSf),
        ("fig6_swift_vai_sf", ProtocolKind::Swift, Variant::VaiSf),
        ("fig8_hpcc_vai_sf", ProtocolKind::Hpcc, Variant::VaiSf),
        ("fig9_swift_vai_sf", ProtocolKind::Swift, Variant::VaiSf),
    ] {
        bench(fig, 3, || incast_kernel(CcSpec::new(kind, variant)));
    }
}

fn bench_fluid_figure() {
    bench("fig4_fluid_integration", 5, || {
        let p = fluid::FluidParams::figure4();
        fluid::integrate(&p, 600_000.0, 5.0, 100)
    });
}

fn bench_datacenter_figures() {
    for (fig, kind, variant, wl) in [
        (
            "fig10_hadoop_hpcc",
            ProtocolKind::Hpcc,
            Variant::Default,
            vec![distributions::FB_HADOOP],
        ),
        (
            "fig10_hadoop_hpcc_vai_sf",
            ProtocolKind::Hpcc,
            Variant::VaiSf,
            vec![distributions::FB_HADOOP],
        ),
        (
            "fig11_mix_swift",
            ProtocolKind::Swift,
            Variant::Default,
            vec![distributions::WEBSEARCH, distributions::ALI_STORAGE],
        ),
        (
            "fig12_hadoop_swift_vai_sf",
            ProtocolKind::Swift,
            Variant::VaiSf,
            vec![distributions::FB_HADOOP],
        ),
        (
            "fig13_mix_hpcc_vai_sf",
            ProtocolKind::Hpcc,
            Variant::VaiSf,
            vec![distributions::WEBSEARCH, distributions::ALI_STORAGE],
        ),
    ] {
        bench(fig, 3, || {
            datacenter_kernel(CcSpec::new(kind, variant), &wl)
        });
    }
}

fn bench_extension_kernels() {
    // Timely on the small incast (ablation-timely kernel).
    bench("ablation_timely_incast", 3, || {
        incast_kernel(CcSpec::new(ProtocolKind::Timely, Variant::VaiSf))
    });
    // Lossy mode: finite buffers + go-back-N recovery.
    bench("lossy_go_back_n_incast", 3, fairness_kernel::lossy_incast);
    // Permutation replay through the TraceScenario runner.
    bench("ablation_permutation_trace", 3, || {
        let arrivals = workloads::permutation(8, Bytes::from_kb(250), Nanos::ZERO, 7);
        let res = fairsim::TraceScenario {
            fat_tree: FatTreeConfig {
                pods: 2,
                tors_per_pod: 1,
                aggs_per_pod: 1,
                hosts_per_tor: 4,
                spines: 1,
                ..FatTreeConfig::reduced()
            },
            arrivals,
            cc: CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
            seed: 7,
            deadline: Nanos::from_millis(10),
            sample_interval: None,
            scheduler: SchedulerKind::default(),
        }
        .run();
        assert!(res.all_finished);
        res.raw.len()
    });
}

/// Small helper kept out of the hot closures.
mod fairness_kernel {
    use super::*;
    use dcsim::{BitRate, Simulation};
    use faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};
    use netsim::{FlowSpec, MonitorConfig, NetBuilder, NetConfig};

    struct FixedRate(BitRate);
    impl CongestionControl for FixedRate {
        fn on_ack(&mut self, _: &AckFeedback) {}
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(self.0)
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    /// Two blasting flows through a 10 KB buffer: drops + recovery.
    pub fn lossy_incast() -> u64 {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let sw = b.add_switch();
        for h in [h0, h1, h2] {
            b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
        }
        let mut net = b.build(
            NetConfig {
                switch_buffer: Some(Bytes::from_kb(10)),
                ..NetConfig::default()
            },
            MonitorConfig::default(),
        );
        for src in [h0, h1] {
            net.add_flow(
                FlowSpec {
                    src,
                    dst: h2,
                    size: Bytes::from_kb(200),
                    start: Nanos::ZERO,
                },
                Box::new(FixedRate(BitRate::from_gbps(100))),
            );
        }
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(20));
        assert!(sim.world().all_finished());
        sim.world().dropped_data_packets()
    }
}

fn main() {
    println!("{:<32} {:>13}", "benchmark", "best");
    bench_incast_figures();
    bench_fluid_figure();
    bench_datacenter_figures();
    bench_extension_kernels();
}
