//! Microbenchmarks of the simulation substrate: event-scheduler throughput
//! (binary heap vs timing wheel), RNG, and raw packet-forwarding rate.
//! These guard the simulator's performance envelope (datacenter figures
//! push ~10^8 events).
//!
//! Criterion-free on purpose (the workspace builds hermetically): each
//! kernel runs a warmup pass, then the minimum of several timed passes is
//! reported — the standard noise floor estimator for short kernels.
//!
//! Run with `cargo bench --bench engine`. For the machine-readable JSON
//! baseline see the `perfbase` binary.

use std::hint::black_box;
use std::time::Instant;

use dcsim::{BitRate, Bytes, DetRng, EventQueue, Nanos, Scheduler, Simulation, TimingWheel};
use faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};
use netsim::{FlowSpec, MonitorConfig, NetBuilder, NetConfig};

/// Time `f` (already warmed) and report the best of `passes` runs.
fn bench<T>(name: &str, elements: u64, passes: usize, mut f: impl FnMut() -> T) {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let rate = elements as f64 / best;
    println!("{name:<40} {:>10.3} ms   {:>12.0} elem/s", best * 1e3, rate);
}

/// Scheduler churn: `n` events pushed with mixed deltas, then drained.
fn scheduler_churn<S: Scheduler<u64> + Default>(n: u64) -> u64 {
    let mut q = S::default();
    for i in 0..n {
        q.push(Nanos(i * 7919 % 100_000), i);
    }
    let mut acc = 0u64;
    while let Some((_, e)) = q.pop() {
        acc ^= e;
    }
    acc
}

/// Dense-timer steady state: `live` pending timers; each pop reschedules
/// a short delta ahead — the RTO/CC-timer shape that dominates incast
/// runs. The wheel's O(1) pops pay off exactly here.
fn dense_timer<S: Scheduler<u32> + Default>(live: u32, churn: u64) -> u64 {
    let mut q = S::default();
    let mut rng = DetRng::new(9);
    for i in 0..live {
        q.push(Nanos(rng.below(8_000)), i);
    }
    let mut acc = 0u64;
    for _ in 0..churn {
        let (t, id) = q.pop().expect("steady-state population");
        acc ^= t.0;
        q.push(t + Nanos(1 + rng.below(8_000)), id);
    }
    acc
}

fn bench_schedulers() {
    bench("heap/push_pop_10k", 10_000, 20, || {
        scheduler_churn::<EventQueue<u64>>(10_000)
    });
    bench("wheel/push_pop_10k", 10_000, 20, || {
        scheduler_churn::<TimingWheel<u64>>(10_000)
    });
    bench("heap/dense_timer_30k_live", 300_000, 10, || {
        dense_timer::<EventQueue<u32>>(30_000, 300_000)
    });
    bench("wheel/dense_timer_30k_live", 300_000, 10, || {
        dense_timer::<TimingWheel<u32>>(30_000, 300_000)
    });
}

fn bench_rng() {
    bench("rng/chance_100k", 100_000, 20, || {
        let mut rng = DetRng::new(7);
        let mut n = 0u32;
        for _ in 0..100_000 {
            n += rng.chance(0.05) as u32;
        }
        n
    });
}

struct FixedRate(BitRate);
impl CongestionControl for FixedRate {
    fn on_ack(&mut self, _: &AckFeedback) {}
    fn limits(&self) -> SenderLimits {
        SenderLimits::rate_based(self.0)
    }
    fn mode(&self) -> CcMode {
        CcMode::Rate
    }
    fn name(&self) -> &str {
        "fixed"
    }
}

/// One 1 MB flow through host-switch-host = ~1000 packets + ACKs.
fn one_mb_flow<S: Scheduler<netsim::Event> + Default>() -> u64 {
    let mut builder = NetBuilder::new();
    let h0 = builder.add_host();
    let h1 = builder.add_host();
    let sw = builder.add_switch();
    builder.link(h0, sw, BitRate::from_gbps(100), Nanos::MICRO);
    builder.link(h1, sw, BitRate::from_gbps(100), Nanos::MICRO);
    let mut net = builder.build(NetConfig::default(), MonitorConfig::default());
    net.add_flow(
        FlowSpec {
            src: h0,
            dst: h1,
            size: Bytes::from_mb(1),
            start: Nanos::ZERO,
        },
        Box::new(FixedRate(BitRate::from_gbps(100))),
    );
    let mut sim = Simulation::with_scheduler(net, S::default());
    {
        let (w, q) = sim.split_mut();
        w.prime(q);
    }
    sim.run();
    sim.events_handled()
}

fn bench_forwarding() {
    bench("forwarding/one_mb_flow (heap)", 1000, 10, || {
        one_mb_flow::<EventQueue<netsim::Event>>()
    });
    bench("forwarding/one_mb_flow (wheel)", 1000, 10, || {
        one_mb_flow::<TimingWheel<netsim::Event>>()
    });
}

fn main() {
    println!("{:<40} {:>13}   {:>14}", "benchmark", "best", "throughput");
    bench_schedulers();
    bench_rng();
    bench_forwarding();
}
