//! Microbenchmarks of the simulation substrate: event-queue throughput,
//! RNG, and raw packet-forwarding rate. These guard the simulator's
//! performance envelope (datacenter figures push ~10^8 events).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dcsim::{BitRate, Bytes, DetRng, EventQueue, Nanos, Simulation};
use faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};
use netsim::{FlowSpec, MonitorConfig, NetBuilder, NetConfig};

struct FixedRate(BitRate);
impl CongestionControl for FixedRate {
    fn on_ack(&mut self, _: &AckFeedback) {}
    fn limits(&self) -> SenderLimits {
        SenderLimits::rate_based(self.0)
    }
    fn mode(&self) -> CcMode {
        CcMode::Rate
    }
    fn name(&self) -> &str {
        "fixed"
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(Nanos(i * 7919 % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc ^= e;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("chance_100k", |b| {
        let mut rng = DetRng::new(7);
        b.iter(|| {
            let mut n = 0u32;
            for _ in 0..100_000 {
                n += rng.chance(0.05) as u32;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("forwarding");
    // One 1 MB flow through host-switch-host = ~1000 packets + ACKs,
    // ~8000 events.
    g.throughput(Throughput::Elements(1000));
    g.bench_function("one_mb_flow_packets", |b| {
        b.iter(|| {
            let mut builder = NetBuilder::new();
            let h0 = builder.add_host();
            let h1 = builder.add_host();
            let sw = builder.add_switch();
            builder.link(h0, sw, BitRate::from_gbps(100), Nanos::MICRO);
            builder.link(h1, sw, BitRate::from_gbps(100), Nanos::MICRO);
            let mut net = builder.build(NetConfig::default(), MonitorConfig::default());
            net.add_flow(
                FlowSpec {
                    src: h0,
                    dst: h1,
                    size: Bytes::from_mb(1),
                    start: Nanos::ZERO,
                },
                Box::new(FixedRate(BitRate::from_gbps(100))),
            );
            let mut sim = Simulation::new(net);
            {
                let (w, q) = sim.split_mut();
                w.prime(q);
            }
            sim.run();
            black_box(sim.events_handled())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_forwarding);
criterion_main!(benches);
