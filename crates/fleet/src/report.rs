//! Sweep reports: per-cell tail percentiles, ensemble medians, and
//! bootstrap confidence intervals, emitted as machine-readable JSON and
//! a text table.
//!
//! The JSON deliberately excludes anything execution-dependent — no
//! scheduler name, worker count, or wall-clock time — so rerunning the
//! same spec yields byte-identical bytes (the golden test pins this).
//! Bootstrap seeds derive from `(root seed, cell id, statistic)` alone,
//! never from run order.

use dcsim::DetRng;
use fairsim::render::{f3, TextTable};
use minijson::{arr, obj, Value};

use crate::run::SweepOutcome;
use crate::spec::fnv1a;
use crate::stats::{self, bootstrap_ci, Ci, Percentiles, BOOTSTRAP_ITERS, BOOTSTRAP_LEVEL};

/// Aggregated statistics for one sweep cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Stable cell id (from [`crate::CellSpec`]).
    pub id: String,
    /// Protocol label ("HPCC", "Swift VAI SF", ...).
    pub label: String,
    /// Axis values as `(axis, value)` pairs.
    pub axes: Vec<(String, String)>,
    /// The seeds that ran, ensemble order.
    pub seeds: Vec<u64>,
    /// Per-replicate run dispositions ("completed" / "horizon" /
    /// "stalled" / "budget"), ensemble order.
    pub outcomes: Vec<String>,
    /// Total slowdown samples pooled across replicates.
    pub samples: usize,
    /// Tail percentiles over the pooled samples; `None` when every
    /// replicate came back empty.
    pub pooled: Option<Percentiles>,
    /// Per-replicate p50 slowdowns (replicates with no samples are
    /// skipped, so this can be shorter than `seeds`).
    pub p50_per_seed: Vec<f64>,
    /// Per-replicate p99 slowdowns.
    pub p99_per_seed: Vec<f64>,
    /// Median of `p50_per_seed`.
    pub p50_median: Option<f64>,
    /// Median of `p99_per_seed` — the headline ensemble statistic.
    pub p99_median: Option<f64>,
    /// Bootstrap 95% CI of the `p50_per_seed` median.
    pub p50_ci95: Option<Ci>,
    /// Bootstrap 95% CI of the `p99_per_seed` median.
    pub p99_ci95: Option<Ci>,
}

/// A full sweep report: one [`CellReport`] per cell, expansion order.
#[derive(Debug, Clone)]
pub struct Report {
    /// Sweep name.
    pub name: String,
    /// Ensemble root seed.
    pub root_seed: u64,
    /// Replicates per cell.
    pub replicates: usize,
    /// Per-cell statistics, expansion order.
    pub cells: Vec<CellReport>,
}

impl Report {
    /// Aggregate a sweep outcome into per-cell statistics.
    pub fn build(outcome: &SweepOutcome) -> Report {
        let cells = outcome
            .cells
            .iter()
            .map(|cell| {
                let mut pooled_samples: Vec<f64> = Vec::new();
                let mut p50_per_seed = Vec::with_capacity(cell.runs.len());
                let mut p99_per_seed = Vec::with_capacity(cell.runs.len());
                let mut outcomes = Vec::with_capacity(cell.runs.len());
                let mut label = String::new();
                for run in &cell.runs {
                    outcomes.push(run.output.outcome().name().to_string());
                    if label.is_empty() {
                        label = run.output.label().to_string();
                    }
                    let slowdowns = run.output.slowdowns();
                    if let Some(p) = stats::percentiles(&slowdowns) {
                        p50_per_seed.push(p.p50);
                        p99_per_seed.push(p.p99);
                    }
                    pooled_samples.extend_from_slice(&slowdowns);
                }
                let ci = |samples: &[f64], stat: &str| {
                    bootstrap_ci(
                        samples,
                        50.0,
                        BOOTSTRAP_ITERS,
                        BOOTSTRAP_LEVEL,
                        ci_seed(outcome.root_seed, &cell.spec.id, stat),
                    )
                };
                CellReport {
                    id: cell.spec.id.clone(),
                    label,
                    axes: cell.spec.point.axes(),
                    seeds: cell.spec.seeds.clone(),
                    outcomes,
                    samples: pooled_samples.len(),
                    pooled: stats::percentiles(&pooled_samples),
                    p50_median: stats::median(&p50_per_seed),
                    p99_median: stats::median(&p99_per_seed),
                    p50_ci95: ci(&p50_per_seed, "p50"),
                    p99_ci95: ci(&p99_per_seed, "p99"),
                    p50_per_seed,
                    p99_per_seed,
                }
            })
            .collect();
        Report {
            name: outcome.name.clone(),
            root_seed: outcome.root_seed,
            replicates: outcome.replicates,
            cells,
        }
    }

    /// Build the JSON tree (execution-independent by construction).
    pub fn to_value(&self) -> Value {
        obj([
            ("sweep", Value::from(self.name.as_str())),
            ("seed", Value::from(self.root_seed)),
            ("replicates", Value::from(self.replicates)),
            (
                "cells",
                Value::Arr(self.cells.iter().map(cell_to_value).collect()),
            ),
        ])
    }

    /// Pretty JSON, byte-identical across reruns of the same spec.
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Render the human-readable summary table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "## sweep: {} (seed {}, {} replicate{})\n\n",
            self.name,
            self.root_seed,
            self.replicates,
            if self.replicates == 1 { "" } else { "s" }
        );
        let mut table = TextTable::new(vec![
            "cell",
            "n",
            "p50 med",
            "p99 med",
            "p99 ci95",
            "p99.9 pool",
            "outcomes",
        ]);
        for c in &self.cells {
            table.row(vec![
                c.id.clone(),
                c.samples.to_string(),
                c.p50_median.map(f3).unwrap_or_else(|| "-".to_string()),
                c.p99_median.map(f3).unwrap_or_else(|| "-".to_string()),
                c.p99_ci95
                    .map(|ci| format!("[{}, {}]", f3(ci.lo), f3(ci.hi)))
                    .unwrap_or_else(|| "-".to_string()),
                c.pooled
                    .map(|p| f3(p.p999))
                    .unwrap_or_else(|| "-".to_string()),
                c.outcomes.join(","),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

/// Deterministic bootstrap seed for one cell's one statistic, derived
/// from inputs only (never execution state).
fn ci_seed(root_seed: u64, cell_id: &str, stat: &str) -> u64 {
    DetRng::new(root_seed)
        .stream(fnv1a("fleet.bootstrap"))
        .stream(fnv1a(cell_id))
        .stream(fnv1a(stat))
        .seed()
}

fn cell_to_value(c: &CellReport) -> Value {
    let axes = Value::Obj(
        c.axes
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.as_str())))
            .collect(),
    );
    obj([
        ("id", Value::from(c.id.as_str())),
        ("label", Value::from(c.label.as_str())),
        ("axes", axes),
        ("seeds", arr(c.seeds.clone())),
        (
            "outcomes",
            arr(c.outcomes.iter().map(String::as_str).collect::<Vec<_>>()),
        ),
        ("samples", Value::from(c.samples)),
        ("slowdown", pooled_to_value(c.pooled)),
        (
            "p50",
            stat_to_value(&c.p50_per_seed, c.p50_median, c.p50_ci95),
        ),
        (
            "p99",
            stat_to_value(&c.p99_per_seed, c.p99_median, c.p99_ci95),
        ),
    ])
}

fn pooled_to_value(p: Option<Percentiles>) -> Value {
    match p {
        None => Value::Null,
        Some(p) => obj([
            ("p50", Value::from(p.p50)),
            ("p95", Value::from(p.p95)),
            ("p99", Value::from(p.p99)),
            ("p999", Value::from(p.p999)),
        ]),
    }
}

fn stat_to_value(per_seed: &[f64], median: Option<f64>, ci: Option<Ci>) -> Value {
    obj([
        ("per_seed", arr(per_seed.to_vec())),
        ("median", Value::from(median)),
        (
            "ci95",
            match ci {
                None => Value::Null,
                Some(ci) => arr([ci.lo, ci.hi]),
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_sweep, SweepConfig};
    use crate::spec::{Ensemble, SweepSpec, WorkloadAxis};
    use fairsim::{CcSpec, ProtocolKind, Variant};

    #[test]
    fn report_json_is_valid_and_carries_the_statistics() {
        let spec = SweepSpec {
            name: "report-smoke".to_string(),
            cc: vec![CcSpec::new(ProtocolKind::Hpcc, Variant::Default)],
            workload: WorkloadAxis::Incast { degrees: vec![4] },
            ensemble: Ensemble::new(3, 2),
        };
        let report = run_sweep(&spec, &SweepConfig::new()).report();
        assert_eq!(report.cells.len(), 1);
        let c = &report.cells[0];
        assert_eq!(c.p50_per_seed.len(), 2);
        assert!(c.p99_median.is_some());
        assert!(c.samples > 0);

        let json = report.to_json();
        let v = minijson::Value::parse(&json).expect("report emits valid JSON");
        assert_eq!(v["sweep"].as_str(), Some("report-smoke"));
        assert_eq!(v["replicates"].as_u64(), Some(2));
        let cell = &v["cells"][0];
        assert_eq!(cell["axes"]["workload"].as_str(), Some("incast"));
        assert!(cell["p99"]["median"].as_f64().is_some());
        assert_eq!(
            cell["p99"]["ci95"].as_array().map(<[Value]>::len),
            Some(2),
            "a 2-replicate ensemble still gets a (degenerate-ish) CI"
        );
        // Execution knobs must not leak into the report bytes.
        assert!(!json.contains("scheduler"));
        assert!(!json.contains("workers"));

        let text = report.render_text();
        assert!(text.contains("report-smoke"));
        assert!(text.contains("incast/deg=4/cc=hpcc"));
    }
}
