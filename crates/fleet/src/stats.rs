//! The sweep harness's statistics kernel: tail percentiles over per-flow
//! slowdown samples, ensemble medians, and bootstrap confidence
//! intervals.
//!
//! All percentile math delegates to [`metrics::percentile_sorted`]
//! (NIST R-7 linear interpolation) so sweep reports agree with every
//! other quantile in the repository. Bootstrap resampling draws from a
//! [`DetRng`] seeded by the caller, which makes confidence intervals as
//! deterministic as the runs they summarize.

use dcsim::DetRng;
use metrics::percentile_sorted;

/// Bootstrap resample count used by sweep reports. 1000 resamples keeps
/// the CI endpoints stable to well under the between-seed spread while
/// costing microseconds per cell.
pub const BOOTSTRAP_ITERS: usize = 1000;

/// Confidence level used by sweep reports (central 95% interval).
pub const BOOTSTRAP_LEVEL: f64 = 0.95;

/// The four tail percentiles a sweep report tracks per cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Sample count the percentiles were computed over.
    pub n: usize,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// Tail percentiles of a sample set; `None` when `samples` is empty
/// (an empty cell has no tail, and inventing one would poison medians
/// downstream).
pub fn percentiles(samples: &[f64]) -> Option<Percentiles> {
    if samples.is_empty() {
        return None;
    }
    let sorted = sorted_copy(samples);
    Some(Percentiles {
        n: sorted.len(),
        p50: percentile_sorted(&sorted, 50.0),
        p95: percentile_sorted(&sorted, 95.0),
        p99: percentile_sorted(&sorted, 99.0),
        p999: percentile_sorted(&sorted, 99.9),
    })
}

/// Median of a sample set; `None` when empty. For an even count this is
/// the R-7 interpolated midpoint, matching [`percentiles`].
pub fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(percentile_sorted(&sorted_copy(samples), 50.0))
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

/// Percentile-bootstrap confidence interval for the `p`-th percentile of
/// `samples`.
///
/// Draws `iters` resamples (with replacement, sized like the input) from
/// a [`DetRng`] rooted at `seed`, computes the `p`-th percentile of
/// each, and returns the central `level` interval of those estimates.
/// `None` when `samples` is empty or `iters` is zero. With one sample —
/// or all-equal samples — every resample is identical and the interval
/// collapses to a point, which is the honest answer: the bootstrap
/// cannot see variance the ensemble did not produce.
pub fn bootstrap_ci(samples: &[f64], p: f64, iters: usize, level: f64, seed: u64) -> Option<Ci> {
    if samples.is_empty() || iters == 0 {
        return None;
    }
    assert!(
        (0.0..1.0).contains(&level) || level == 1.0,
        "confidence level must be in (0, 1]"
    );
    let n = samples.len();
    let mut rng = DetRng::new(seed);
    let mut scratch = vec![0.0_f64; n];
    let mut estimates = Vec::with_capacity(iters);
    for _ in 0..iters {
        for slot in scratch.iter_mut() {
            *slot = samples[rng.below(n as u64) as usize];
        }
        scratch.sort_by(|a, b| a.partial_cmp(b).expect("slowdown samples are never NaN"));
        estimates.push(percentile_sorted(&scratch, p));
    }
    estimates.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("percentile estimates are never NaN")
    });
    let alpha = (1.0 - level) / 2.0;
    Some(Ci {
        lo: percentile_sorted(&estimates, alpha * 100.0),
        hi: percentile_sorted(&estimates, (1.0 - alpha) * 100.0),
    })
}

fn sorted_copy(samples: &[f64]) -> Vec<f64> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("slowdown samples are never NaN"));
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_match_hand_computed_r7_fixtures() {
        // For [1, 2, 3, 4, 5] under R-7: rank = p/100 * (n-1).
        //   p50 -> rank 2.0 -> 3.0
        //   p95 -> rank 3.8 -> 4 + 0.8*(5-4) = 4.8
        //   p99 -> rank 3.96 -> 4.96
        //   p99.9 -> rank 3.996 -> 4.996
        let p = percentiles(&[5.0, 3.0, 1.0, 4.0, 2.0]).expect("non-empty input");
        assert_eq!(p.n, 5);
        assert!((p.p50 - 3.0).abs() < 1e-12);
        assert!((p.p95 - 4.8).abs() < 1e-12);
        assert!((p.p99 - 4.96).abs() < 1e-12);
        assert!((p.p999 - 4.996).abs() < 1e-12);
    }

    #[test]
    fn median_interpolates_even_counts() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn empty_inputs_yield_none_not_garbage() {
        assert_eq!(percentiles(&[]), None);
        assert_eq!(bootstrap_ci(&[], 50.0, 100, 0.95, 1), None);
        assert_eq!(bootstrap_ci(&[1.0], 50.0, 0, 0.95, 1), None);
    }

    #[test]
    fn single_sample_ci_collapses_to_the_sample() {
        let ci = bootstrap_ci(&[3.25], 50.0, 200, 0.95, 9).expect("non-degenerate call");
        assert_eq!(ci.lo, 3.25);
        assert_eq!(ci.hi, 3.25);
    }

    #[test]
    fn all_equal_samples_give_a_point_interval() {
        let ci = bootstrap_ci(&[2.0; 8], 99.0, 300, 0.95, 4).expect("non-degenerate call");
        assert_eq!(ci.lo, 2.0);
        assert_eq!(ci.hi, 2.0);
    }

    #[test]
    fn ci_brackets_the_statistic_and_stays_in_range() {
        let samples: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let ci = bootstrap_ci(&samples, 50.0, 1000, 0.95, 11).expect("non-degenerate call");
        let m = median(&samples).expect("non-empty");
        assert!(
            ci.lo <= m && m <= ci.hi,
            "CI [{}, {}] misses {m}",
            ci.lo,
            ci.hi
        );
        assert!(ci.lo >= 1.0 && ci.hi <= 40.0, "CI escapes the sample range");
        assert!(
            ci.lo < ci.hi,
            "40 distinct samples should give a real interval"
        );
    }

    #[test]
    fn bootstrap_is_seed_deterministic() {
        let samples = [1.0, 5.0, 2.5, 9.0, 4.0, 4.5, 7.0];
        let a = bootstrap_ci(&samples, 99.0, 500, 0.95, 77).expect("non-degenerate call");
        let b = bootstrap_ci(&samples, 99.0, 500, 0.95, 77).expect("non-degenerate call");
        assert_eq!(a, b);
        // A different seed perturbs the resamples. Checked at the median
        // of a wide sample — extreme percentiles of a 7-point sample are
        // discrete enough that two seeds can tie by coincidence.
        let wide: Vec<f64> = (0..200).map(|i| (i as f64).sin() * 10.0).collect();
        let c = bootstrap_ci(&wide, 50.0, 500, 0.95, 77).expect("non-degenerate call");
        let d = bootstrap_ci(&wide, 50.0, 500, 0.95, 78).expect("non-degenerate call");
        assert!(c != d, "a different seed should perturb the resamples");
    }
}
