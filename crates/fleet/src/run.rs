//! Sweep execution: expand a spec, run every `(cell, seed)` pair on the
//! pool, and regroup the results per cell.
//!
//! Each run goes through the same [`fairsim::Scenario::run_with`] seam
//! the single-figure harness uses, with a fresh [`RunCtx`] per
//! replicate — runs share nothing, so the pool can interleave them
//! freely without breaking determinism.

use std::path::PathBuf;

use dcsim::Nanos;
use fairsim::{
    DatacenterResult, DatacenterScenario, FaultResult, FaultScenario, IncastResult, IncastScenario,
    RunCtx, Scenario, SchedulerKind, TraceConfig, TraceLevel, Tracer,
};
use netsim::{FatTreeConfig, RunOutcome};

use crate::pool;
use crate::spec::{slug, CellSpec, SweepSpec, WorkloadPoint};

/// The result of one sweep run, tagged by scenario family.
#[derive(Debug, Clone)]
pub enum RunOutput {
    /// An incast run.
    Incast(IncastResult),
    /// A datacenter run.
    Datacenter(DatacenterResult),
    /// A fault-injection run.
    Fault(FaultResult),
}

impl RunOutput {
    /// The run's figure-legend label.
    pub fn label(&self) -> &str {
        match self {
            RunOutput::Incast(r) => &r.label,
            RunOutput::Datacenter(r) => &r.label,
            RunOutput::Fault(r) => &r.label,
        }
    }

    /// The run's structured disposition.
    pub fn outcome(&self) -> &RunOutcome {
        match self {
            RunOutput::Incast(r) => &r.outcome,
            RunOutput::Datacenter(r) => &r.outcome,
            RunOutput::Fault(r) => &r.outcome,
        }
    }

    /// Did the stall watchdog fire?
    pub fn is_stalled(&self) -> bool {
        match self.outcome() {
            RunOutcome::Stalled { .. } => true,
            RunOutcome::Completed | RunOutcome::Horizon | RunOutcome::Budget => false,
        }
    }

    /// Per-flow slowdown samples (against the pristine ideal FCT).
    pub fn slowdowns(&self) -> Vec<f64> {
        let raw = match self {
            RunOutput::Incast(r) => &r.raw,
            RunOutput::Datacenter(r) => &r.raw,
            RunOutput::Fault(r) => &r.raw,
        };
        raw.iter().map(|&(_, _, s)| s).collect()
    }

    /// The run's tracer, when tracing was on.
    pub fn trace(&self) -> Option<&Tracer> {
        match self {
            RunOutput::Incast(r) => r.trace.as_ref(),
            RunOutput::Datacenter(r) => r.trace.as_ref(),
            RunOutput::Fault(r) => r.trace.as_ref(),
        }
    }

    /// Unwrap an incast run.
    pub fn into_incast(self) -> Option<IncastResult> {
        match self {
            RunOutput::Incast(r) => Some(r),
            RunOutput::Datacenter(_) | RunOutput::Fault(_) => None,
        }
    }

    /// Unwrap a datacenter run.
    pub fn into_datacenter(self) -> Option<DatacenterResult> {
        match self {
            RunOutput::Datacenter(r) => Some(r),
            RunOutput::Incast(_) | RunOutput::Fault(_) => None,
        }
    }

    /// Unwrap a fault-injection run.
    pub fn into_fault(self) -> Option<FaultResult> {
        match self {
            RunOutput::Fault(r) => Some(r),
            RunOutput::Incast(_) | RunOutput::Datacenter(_) => None,
        }
    }
}

/// Execution knobs orthogonal to the sweep spec: scheduler backend,
/// worker count, tracing. None of these may change the report (the
/// golden test in `tests/sweep.rs` pins that).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Event-scheduler backend for every run.
    pub scheduler: SchedulerKind,
    /// Pool width; `None` uses [`pool::default_workers`].
    pub workers: Option<usize>,
    /// Trace/metrics collection level per run.
    pub trace: TraceConfig,
    /// Directory for per-run trace artifacts; `None` discards traces.
    pub trace_dir: Option<PathBuf>,
    /// Artifact file-name tag; empty uses the sweep name's slug.
    pub tag: String,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig::new()
    }
}

impl SweepConfig {
    /// Default config: default scheduler, auto worker count, tracing off.
    pub fn new() -> Self {
        SweepConfig {
            scheduler: SchedulerKind::default(),
            workers: None,
            trace: TraceConfig::off(),
            trace_dir: None,
            tag: String::new(),
        }
    }

    /// Select the event-scheduler backend (chainable).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Pin the pool width (chainable).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Enable tracing at the given level, writing artifacts to `dir`
    /// (chainable).
    pub fn with_trace(mut self, trace: TraceConfig, dir: Option<PathBuf>) -> Self {
        self.trace = trace;
        self.trace_dir = dir;
        self
    }

    /// Set the artifact file-name tag (chainable).
    pub fn with_tag(mut self, tag: &str) -> Self {
        self.tag = tag.to_string();
        self
    }
}

/// One replicate of one cell.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The seed this replicate ran under.
    pub seed: u64,
    /// Its result.
    pub output: RunOutput,
}

/// All replicates of one cell, in ensemble order.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The expanded cell this ran.
    pub spec: CellSpec,
    /// One record per seed, in [`crate::Ensemble`] order.
    pub runs: Vec<RunRecord>,
}

impl CellOutcome {
    /// Unwrap a single-replicate cell's one run (the single-seed figure
    /// path). Panics when the ensemble had more than one replicate.
    pub fn into_only_run(self) -> RunOutput {
        let CellOutcome { spec, mut runs } = self;
        assert!(
            runs.len() == 1,
            "cell {} has {} replicates, expected exactly 1",
            spec.id,
            runs.len()
        );
        runs.remove(0).output
    }
}

/// The full result of a sweep: every cell's every replicate.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Sweep name (from the spec).
    pub name: String,
    /// The ensemble root seed.
    pub root_seed: u64,
    /// Replicates per cell.
    pub replicates: usize,
    /// Cells in expansion order.
    pub cells: Vec<CellOutcome>,
}

impl SweepOutcome {
    /// Did any run's stall watchdog fire?
    pub fn any_stalled(&self) -> bool {
        self.cells
            .iter()
            .any(|c| c.runs.iter().any(|r| r.output.is_stalled()))
    }

    /// Consume into the cell list (expansion order).
    pub fn into_cells(self) -> Vec<CellOutcome> {
        self.cells
    }

    /// Aggregate into a statistical report.
    pub fn report(&self) -> crate::report::Report {
        crate::report::Report::build(self)
    }
}

/// Expand `spec` and run every `(cell, seed)` pair on the pool.
///
/// Results come back grouped per cell in expansion order, replicates in
/// ensemble order — independent of worker count and dispatch order.
/// When `cfg.trace_dir` is set, per-run artifacts are written as
/// `<tag>.<cell-slug>.s<seed>.{trace.jsonl,chrome.json,metrics.json}`.
pub fn run_sweep(spec: &SweepSpec, cfg: &SweepConfig) -> SweepOutcome {
    let cells = spec.expand();
    let mut jobs: Vec<(usize, u64)> = Vec::with_capacity(cells.len() * spec.ensemble.replicates);
    for (ci, cell) in cells.iter().enumerate() {
        for &seed in &cell.seeds {
            jobs.push((ci, seed));
        }
    }
    let workers = cfg.workers.unwrap_or_else(pool::default_workers).max(1);
    let outputs = pool::run_indexed(jobs.len(), workers, |j| {
        let (ci, seed) = jobs[j];
        let rctx = RunCtx::new(seed)
            .with_scheduler(cfg.scheduler)
            .with_trace(cfg.trace);
        execute(&cells[ci], seed, &rctx)
    });

    let mut outputs = outputs.into_iter();
    let mut cell_outcomes = Vec::with_capacity(cells.len());
    for cell in cells {
        let runs: Vec<RunRecord> = cell
            .seeds
            .iter()
            .map(|&seed| RunRecord {
                seed,
                output: outputs
                    .next()
                    .unwrap_or_else(|| panic!("missing run for cell {}", cell.id)),
            })
            .collect();
        cell_outcomes.push(CellOutcome { spec: cell, runs });
    }

    let outcome = SweepOutcome {
        name: spec.name.clone(),
        root_seed: spec.ensemble.root_seed,
        replicates: spec.ensemble.replicates,
        cells: cell_outcomes,
    };
    write_artifacts(&outcome, cfg);
    outcome
}

fn execute(cell: &CellSpec, seed: u64, rctx: &RunCtx) -> RunOutput {
    match &cell.point {
        WorkloadPoint::Incast { degree } => {
            RunOutput::Incast(IncastScenario::paper(*degree, cell.cc, seed).run_with(rctx))
        }
        WorkloadPoint::Datacenter {
            mix,
            load,
            full_scale,
        } => {
            let mut sc = DatacenterScenario::reduced(mix.clone(), cell.cc, seed);
            sc.load = *load;
            if *full_scale {
                sc.fat_tree = FatTreeConfig::paper();
                sc.horizon = Nanos::from_millis(50);
            }
            RunOutput::Datacenter(sc.run_with(rctx))
        }
        WorkloadPoint::Faults {
            mix,
            load,
            cell: fault,
            full_scale,
        } => {
            let mut sc = FaultScenario::reduced(mix.clone(), cell.cc, seed).with_loss(fault.loss);
            if fault.bursty {
                sc = sc.with_bursty();
            }
            if let Some((period, down_for)) = fault.flap {
                sc = sc.with_flap(period, down_for);
            }
            sc.load = *load;
            if *full_scale {
                sc.fat_tree = FatTreeConfig::paper();
                sc.horizon = Nanos::from_millis(50);
            }
            RunOutput::Fault(sc.run_with(rctx))
        }
    }
}

/// Write per-run trace artifacts (sequentially, after the pool joins, so
/// file-system effects never race). Mirrors the bench harness's naming:
/// `<tag>.<cell-slug>.s<seed>.*`.
fn write_artifacts(outcome: &SweepOutcome, cfg: &SweepConfig) {
    let Some(dir) = &cfg.trace_dir else { return };
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("cannot create trace dir {}: {e}", dir.display()));
    let tag = if cfg.tag.is_empty() {
        slug(&outcome.name)
    } else {
        cfg.tag.clone()
    };
    for cell in &outcome.cells {
        for run in &cell.runs {
            let Some(tracer) = run.output.trace() else {
                continue;
            };
            let stem = format!("{tag}.{}.s{}", slug(&cell.spec.id), run.seed);
            let write = |suffix: &str, body: String| {
                let path = dir.join(format!("{stem}.{suffix}"));
                std::fs::write(&path, body)
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            };
            if tracer.config().level == TraceLevel::Full {
                write("trace.jsonl", tracer.to_jsonl());
                write("chrome.json", tracer.to_chrome());
            }
            write(
                "metrics.json",
                format!("{}\n", tracer.metrics().to_value().pretty()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Ensemble, SweepSpec, WorkloadAxis};
    use fairsim::{CcSpec, ProtocolKind, Variant};

    #[test]
    fn a_tiny_incast_sweep_runs_end_to_end() {
        let spec = SweepSpec {
            name: "tiny".to_string(),
            cc: vec![CcSpec::new(ProtocolKind::Hpcc, Variant::Default)],
            workload: WorkloadAxis::Incast { degrees: vec![4] },
            ensemble: Ensemble::new(1, 2),
        };
        let out = run_sweep(&spec, &SweepConfig::new().with_workers(2));
        assert_eq!(out.cells.len(), 1);
        assert_eq!(out.cells[0].runs.len(), 2);
        assert_eq!(out.cells[0].runs[0].seed, 1);
        assert!(!out.any_stalled());
        for run in &out.cells[0].runs {
            assert!(
                !run.output.slowdowns().is_empty(),
                "an incast run always completes flows"
            );
            assert_eq!(run.output.label(), "HPCC");
        }
    }
}
