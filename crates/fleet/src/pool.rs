//! The sweep run pool: a work-stealing `std::thread::scope` executor
//! whose output is independent of worker count and dispatch order.
//!
//! Jobs are indexed `0..n`; workers race on a shared atomic cursor
//! (cheap work stealing — an idle worker grabs the next undone index,
//! so a slow cell never serializes the sweep behind it) and write each
//! result into its own pre-allocated slot. The caller gets results in
//! index order no matter which worker ran what, which is the first half
//! of the fleet determinism contract (the other half is that each job
//! is itself deterministic given its seed).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count to use when the caller does not pin one: the machine's
/// available parallelism, or 4 if that cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Run `f(0), f(1), ..., f(n - 1)` across up to `workers` scoped
/// threads and return the results in index order.
///
/// `f` must be safe to call concurrently from multiple threads (it is
/// `Sync`); results land in index order regardless of scheduling.
/// Panics in `f` propagate to the caller after the scope joins.
pub fn run_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(i);
                    *slots[i].lock().expect("sweep slot mutex poisoned") = Some(result);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sweep worker panicked");
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("sweep slot mutex poisoned")
                .unwrap_or_else(|| panic!("sweep job {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order_for_any_worker_count() {
        let serial = run_indexed(17, 1, |i| i * i);
        let wide = run_indexed(17, 5, |i| i * i);
        let oversubscribed = run_indexed(17, 64, |i| i * i);
        let expected: Vec<usize> = (0..17).map(|i| i * i).collect();
        assert_eq!(serial, expected);
        assert_eq!(wide, expected);
        assert_eq!(oversubscribed, expected);
    }

    #[test]
    fn zero_jobs_is_an_empty_result() {
        let out: Vec<u32> = run_indexed(0, 8, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(100, 7, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "job {i} ran a wrong number of times"
            );
        }
    }
}
