//! Declarative sweep specifications: the axes, their deterministic
//! cartesian expansion, per-point seed ensembles, and the JSON schema
//! `repro --sweep` consumes.
//!
//! Expansion order is part of the contract: workload points vary slowest
//! (in declaration order), the protocol/variant axis varies fastest. That
//! keeps baseline/treatment pairs adjacent in the cell list (paired
//! per-flow comparisons walk cells in `chunks(2)`) and makes reports
//! byte-stable across reruns.
//!
//! Seeds are derived per workload *point*, not per cell: every protocol
//! variant at the same point runs the same seed list, so cross-variant
//! comparisons use common random numbers (the same arrival sequence).
//! Replicate 0 is the ensemble's root seed — a 1-replicate sweep
//! reproduces the classic single-seed figures bit-for-bit.

use dcsim::{DetRng, Nanos};
use fairsim::{CcSpec, ProtocolKind, Variant};
use minijson::{arr, obj, Value};
use workloads::distributions;

/// FNV-1a hash of a string — the stable key hasher behind per-point seed
/// derivation and bootstrap seeding (never used as a statistical RNG).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// File-name slug: lowercase alphanumerics, runs of anything else
/// collapsed to `-` (same convention as the bench crate's artifacts).
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// A seed ensemble: how many replicates each cell runs and how their
/// seeds derive from the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ensemble {
    /// Seed of replicate 0 and the root of every derived seed.
    pub root_seed: u64,
    /// Number of seeds per cell (>= 1).
    pub replicates: usize,
}

impl Ensemble {
    /// An ensemble of `replicates` seeds rooted at `root_seed`.
    pub fn new(root_seed: u64, replicates: usize) -> Self {
        assert!(replicates >= 1, "an ensemble needs at least one replicate");
        Ensemble {
            root_seed,
            replicates,
        }
    }

    /// The single-seed ensemble (replicate 0 only).
    pub fn single(root_seed: u64) -> Self {
        Ensemble::new(root_seed, 1)
    }

    /// The seed list for one workload point.
    ///
    /// Replicate 0 is the root seed itself; replicate `k >= 1` derives
    /// from `(root_seed, fnv1a(point_key), k)` through [`DetRng`] stream
    /// splitting, so it is rerun-stable and independent of every other
    /// point and of how many replicates were requested.
    pub fn seeds_for(&self, point_key: &str) -> Vec<u64> {
        let mut seeds = Vec::with_capacity(self.replicates);
        seeds.push(self.root_seed);
        let point_stream = DetRng::new(self.root_seed).stream(fnv1a(point_key));
        for rep in 1..self.replicates {
            seeds.push(point_stream.stream(rep as u64).seed());
        }
        seeds
    }
}

/// One fault-injection grid cell: a named combination of wire-loss rate
/// and link-flap cadence (see [`fairsim::FaultScenario`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCell {
    /// Grid-cell name ("clean", "loss 1e-3 + flap", ...).
    pub name: String,
    /// Mean per-packet fabric loss probability (0 = no wire loss).
    pub loss: f64,
    /// Bursty Gilbert–Elliott loss instead of uniform Bernoulli.
    pub bursty: bool,
    /// Flap one agg–spine link `(period, down_for)`.
    pub flap: Option<(Nanos, Nanos)>,
}

impl FaultCell {
    /// A clean cell (no loss, no flap) — the reference point of every
    /// fault grid.
    pub fn clean() -> Self {
        FaultCell {
            name: "clean".to_string(),
            loss: 0.0,
            bursty: false,
            flap: None,
        }
    }
}

/// The workload axis of a sweep: which scenario family runs and which of
/// its parameters are swept.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadAxis {
    /// Staggered incast on the single-switch star, swept over sender
    /// counts (degree 96 selects the paper's 96-1 shape).
    Incast {
        /// Sender counts to sweep.
        degrees: Vec<usize>,
    },
    /// Poisson traffic from empirical flow-size distributions on the
    /// fat-tree, swept over workload mixes and offered loads.
    Datacenter {
        /// Distribution-name mixes (each mix is one or more names from
        /// [`workloads::distributions::by_name`], mixed evenly).
        mixes: Vec<Vec<String>>,
        /// Offered load fractions.
        loads: Vec<f64>,
        /// Paper scale (320-host fat-tree, 50 ms of arrivals) instead of
        /// the reduced default.
        full_scale: bool,
    },
    /// Fault injection on the fat-tree, swept over offered loads and a
    /// named loss/flap grid.
    Faults {
        /// Distribution-name mix for every cell.
        mix: Vec<String>,
        /// Offered load fractions.
        loads: Vec<f64>,
        /// The loss/flap grid.
        cells: Vec<FaultCell>,
        /// Paper scale instead of the reduced default.
        full_scale: bool,
    },
}

/// One concrete workload point from a [`WorkloadAxis`] — everything about
/// a cell except the protocol under test.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadPoint {
    /// One incast degree.
    Incast {
        /// Sender count.
        degree: usize,
    },
    /// One datacenter (mix, load) pair.
    Datacenter {
        /// Distribution-name mix.
        mix: Vec<String>,
        /// Offered load fraction.
        load: f64,
        /// Paper scale.
        full_scale: bool,
    },
    /// One fault-grid (load, cell) pair.
    Faults {
        /// Distribution-name mix.
        mix: Vec<String>,
        /// Offered load fraction.
        load: f64,
        /// The loss/flap knobs.
        cell: FaultCell,
        /// Paper scale.
        full_scale: bool,
    },
}

impl WorkloadPoint {
    /// Stable key identifying this point — the seed-derivation input and
    /// the prefix of every cell id built on the point.
    pub fn key(&self) -> String {
        match self {
            WorkloadPoint::Incast { degree } => format!("incast/deg={degree}"),
            WorkloadPoint::Datacenter {
                mix,
                load,
                full_scale,
            } => {
                let scale = if *full_scale { "/full" } else { "" };
                format!("dc/mix={}/load={load}{scale}", mix.join("+"))
            }
            WorkloadPoint::Faults {
                mix,
                load,
                cell,
                full_scale,
            } => {
                let scale = if *full_scale { "/full" } else { "" };
                format!(
                    "faults/mix={}/load={load}/{}{scale}",
                    mix.join("+"),
                    slug(&cell.name)
                )
            }
        }
    }

    /// The point's axis values as `(axis, value)` pairs for the report.
    pub fn axes(&self) -> Vec<(String, String)> {
        match self {
            WorkloadPoint::Incast { degree } => vec![
                ("workload".to_string(), "incast".to_string()),
                ("degree".to_string(), degree.to_string()),
            ],
            WorkloadPoint::Datacenter {
                mix,
                load,
                full_scale,
            } => vec![
                ("workload".to_string(), "datacenter".to_string()),
                ("mix".to_string(), mix.join("+")),
                ("load".to_string(), format!("{load}")),
                (
                    "scale".to_string(),
                    if *full_scale { "full" } else { "reduced" }.to_string(),
                ),
            ],
            WorkloadPoint::Faults {
                mix,
                load,
                cell,
                full_scale,
            } => vec![
                ("workload".to_string(), "faults".to_string()),
                ("mix".to_string(), mix.join("+")),
                ("load".to_string(), format!("{load}")),
                ("fault".to_string(), cell.name.clone()),
                ("loss".to_string(), format!("{}", cell.loss)),
                (
                    "scale".to_string(),
                    if *full_scale { "full" } else { "reduced" }.to_string(),
                ),
            ],
        }
    }
}

/// One expanded sweep cell: a `(workload point, protocol variant)` pair
/// with its seed ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Position in the expansion (also the report order).
    pub index: usize,
    /// Stable cell id: `<point key>/cc=<label slug>`.
    pub id: String,
    /// Protocol under test.
    pub cc: CcSpec,
    /// The workload point.
    pub point: WorkloadPoint,
    /// The seeds this cell runs (shared with every other cell at the
    /// same point — common random numbers across the protocol axis).
    pub seeds: Vec<u64>,
}

/// A declarative sweep: a protocol list x a workload axis x a seed
/// ensemble.
///
/// The JSON form (see [`SweepSpec::parse`]) is what `repro --sweep FILE`
/// loads; [`preset`] names a few built-in specs. Seeds above 2^53 do not
/// survive the JSON round-trip (minijson stores numbers as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (report header and default artifact tag).
    pub name: String,
    /// Protocol/variant axis (fastest-varying; must be distinct).
    pub cc: Vec<CcSpec>,
    /// Workload axis.
    pub workload: WorkloadAxis,
    /// Seed ensemble.
    pub ensemble: Ensemble,
}

impl SweepSpec {
    /// The workload points of this sweep, slowest-varying axis first, in
    /// declaration order.
    pub fn points(&self) -> Vec<WorkloadPoint> {
        match &self.workload {
            WorkloadAxis::Incast { degrees } => degrees
                .iter()
                .map(|&degree| WorkloadPoint::Incast { degree })
                .collect(),
            WorkloadAxis::Datacenter {
                mixes,
                loads,
                full_scale,
            } => {
                let mut out = Vec::with_capacity(mixes.len() * loads.len());
                for mix in mixes {
                    for &load in loads {
                        out.push(WorkloadPoint::Datacenter {
                            mix: mix.clone(),
                            load,
                            full_scale: *full_scale,
                        });
                    }
                }
                out
            }
            WorkloadAxis::Faults {
                mix,
                loads,
                cells,
                full_scale,
            } => {
                let mut out = Vec::with_capacity(loads.len() * cells.len());
                for &load in loads {
                    for cell in cells {
                        out.push(WorkloadPoint::Faults {
                            mix: mix.clone(),
                            load,
                            cell: cell.clone(),
                            full_scale: *full_scale,
                        });
                    }
                }
                out
            }
        }
    }

    /// Number of cells the spec expands to (points x protocols).
    pub fn cell_count(&self) -> usize {
        self.points().len() * self.cc.len()
    }

    /// Expand the cartesian product into ordered cells.
    ///
    /// Panics if two cells would share an id (duplicate axis values): a
    /// sweep with aliased cells would silently average distinct
    /// configurations together.
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for point in self.points() {
            let key = point.key();
            let seeds = self.ensemble.seeds_for(&key);
            for cc in &self.cc {
                cells.push(CellSpec {
                    index: cells.len(),
                    id: format!("{key}/cc={}", slug(&cc.label())),
                    cc: *cc,
                    point: point.clone(),
                    seeds: seeds.clone(),
                });
            }
        }
        let mut ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        for w in ids.windows(2) {
            assert!(
                w[0] != w[1],
                "duplicate sweep cell id {:?}: axis values must be distinct",
                w[0]
            );
        }
        cells
    }

    /// Serialize to the pretty JSON schema [`SweepSpec::parse`] reads.
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Build the JSON tree for this spec.
    pub fn to_value(&self) -> Value {
        obj([
            ("name", Value::from(self.name.as_str())),
            ("seed", Value::from(self.ensemble.root_seed)),
            ("replicates", Value::from(self.ensemble.replicates)),
            ("cc", Value::Arr(self.cc.iter().map(cc_to_value).collect())),
            ("workload", workload_to_value(&self.workload)),
        ])
    }

    /// Parse the JSON schema:
    ///
    /// ```json
    /// {
    ///   "name": "my-sweep",
    ///   "seed": 42,
    ///   "replicates": 3,
    ///   "cc": [{"protocol": "hpcc", "variant": "vai-sf"}],
    ///   "workload": {"kind": "incast", "degrees": [16, 96]}
    /// }
    /// ```
    ///
    /// Datacenter workloads use `{"kind": "datacenter", "mixes":
    /// [["FB_Hadoop"]], "loads": [0.5]}`; fault sweeps use `{"kind":
    /// "faults", "mix": [...], "loads": [...], "cells": [{"name":
    /// "clean", "loss": 0}]}` with optional `bursty`,
    /// `flap_period_ns`/`flap_down_ns`, and `full_scale` knobs.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let v = Value::parse(text).map_err(|e| format!("sweep spec is not valid JSON: {e}"))?;
        let name = str_field(&v, "name")?;
        let root_seed = u64_field(&v, "seed")?;
        let replicates = match v.get("replicates") {
            Some(r) => usize_value(r, "replicates")?,
            None => 1,
        };
        if replicates == 0 {
            return Err("`replicates` must be >= 1".to_string());
        }
        let cc_items = v
            .get("cc")
            .and_then(Value::as_array)
            .ok_or_else(|| "`cc` must be an array of protocol specs".to_string())?;
        if cc_items.is_empty() {
            return Err("`cc` must name at least one protocol".to_string());
        }
        let mut cc = Vec::with_capacity(cc_items.len());
        for item in cc_items {
            cc.push(cc_from_value(item)?);
        }
        let workload = workload_from_value(
            v.get("workload")
                .ok_or_else(|| "missing key `workload`".to_string())?,
        )?;
        Ok(SweepSpec {
            name,
            cc,
            workload,
            ensemble: Ensemble::new(root_seed, replicates),
        })
    }
}

/// Lowercase wire name of a protocol family.
pub fn protocol_name(kind: ProtocolKind) -> &'static str {
    match kind {
        ProtocolKind::Hpcc => "hpcc",
        ProtocolKind::Swift => "swift",
        ProtocolKind::Dcqcn => "dcqcn",
        ProtocolKind::Timely => "timely",
    }
}

/// Parse a protocol wire name.
pub fn protocol_from_str(s: &str) -> Option<ProtocolKind> {
    match s {
        "hpcc" => Some(ProtocolKind::Hpcc),
        "swift" => Some(ProtocolKind::Swift),
        "dcqcn" => Some(ProtocolKind::Dcqcn),
        "timely" => Some(ProtocolKind::Timely),
        _ => None,
    }
}

/// Lowercase wire name of a variant.
pub fn variant_name(variant: Variant) -> &'static str {
    match variant {
        Variant::Default => "default",
        Variant::HighAi => "high-ai",
        Variant::Probabilistic => "probabilistic",
        Variant::Vai => "vai",
        Variant::Sf => "sf",
        Variant::VaiSf => "vai-sf",
    }
}

/// Parse a variant wire name.
pub fn variant_from_str(s: &str) -> Option<Variant> {
    match s {
        "default" => Some(Variant::Default),
        "high-ai" => Some(Variant::HighAi),
        "probabilistic" => Some(Variant::Probabilistic),
        "vai" => Some(Variant::Vai),
        "sf" => Some(Variant::Sf),
        "vai-sf" => Some(Variant::VaiSf),
        _ => None,
    }
}

fn cc_to_value(cc: &CcSpec) -> Value {
    obj([
        ("protocol", Value::from(protocol_name(cc.kind))),
        ("variant", Value::from(variant_name(cc.variant))),
        ("hyper_ai", Value::from(cc.opts.hyper_ai)),
    ])
}

fn cc_from_value(v: &Value) -> Result<CcSpec, String> {
    let proto = str_field(v, "protocol")?;
    let kind = protocol_from_str(&proto)
        .ok_or_else(|| format!("unknown protocol {proto:?} (hpcc|swift|dcqcn|timely)"))?;
    let var = str_field(v, "variant")?;
    let variant = variant_from_str(&var).ok_or_else(|| {
        format!("unknown variant {var:?} (default|high-ai|probabilistic|vai|sf|vai-sf)")
    })?;
    let mut spec = CcSpec::new(kind, variant);
    if v["hyper_ai"].as_bool() == Some(true) {
        spec = spec.with_hyper_ai();
    }
    Ok(spec)
}

fn fault_cell_to_value(cell: &FaultCell) -> Value {
    obj([
        ("name", Value::from(cell.name.as_str())),
        ("loss", Value::from(cell.loss)),
        ("bursty", Value::from(cell.bursty)),
        (
            "flap_period_ns",
            Value::from(cell.flap.map(|(p, _)| p.as_u64())),
        ),
        (
            "flap_down_ns",
            Value::from(cell.flap.map(|(_, d)| d.as_u64())),
        ),
    ])
}

fn fault_cell_from_value(v: &Value) -> Result<FaultCell, String> {
    let name = str_field(v, "name")?;
    let loss = v["loss"].as_f64().unwrap_or(0.0);
    let bursty = v["bursty"].as_bool().unwrap_or(false);
    let period = v["flap_period_ns"].as_u64();
    let down = v["flap_down_ns"].as_u64();
    let flap = match (period, down) {
        (Some(p), Some(d)) => Some((Nanos::from_ns(p), Nanos::from_ns(d))),
        (None, None) => None,
        (Some(_), None) | (None, Some(_)) => {
            return Err(format!(
                "fault cell {name:?}: flap_period_ns and flap_down_ns must come together"
            ))
        }
    };
    Ok(FaultCell {
        name,
        loss,
        bursty,
        flap,
    })
}

fn workload_to_value(w: &WorkloadAxis) -> Value {
    match w {
        WorkloadAxis::Incast { degrees } => obj([
            ("kind", Value::from("incast")),
            ("degrees", arr(degrees.clone())),
        ]),
        WorkloadAxis::Datacenter {
            mixes,
            loads,
            full_scale,
        } => obj([
            ("kind", Value::from("datacenter")),
            (
                "mixes",
                Value::Arr(mixes.iter().map(|m| arr(m.clone())).collect()),
            ),
            ("loads", arr(loads.clone())),
            ("full_scale", Value::from(*full_scale)),
        ]),
        WorkloadAxis::Faults {
            mix,
            loads,
            cells,
            full_scale,
        } => obj([
            ("kind", Value::from("faults")),
            ("mix", arr(mix.clone())),
            ("loads", arr(loads.clone())),
            (
                "cells",
                Value::Arr(cells.iter().map(fault_cell_to_value).collect()),
            ),
            ("full_scale", Value::from(*full_scale)),
        ]),
    }
}

fn workload_from_value(v: &Value) -> Result<WorkloadAxis, String> {
    let kind = str_field(v, "kind")?;
    match kind.as_str() {
        "incast" => {
            let degrees = usize_list(v, "degrees")?;
            if degrees.is_empty() {
                return Err("incast workload needs at least one degree".to_string());
            }
            Ok(WorkloadAxis::Incast { degrees })
        }
        "datacenter" => {
            let mix_items = v
                .get("mixes")
                .and_then(Value::as_array)
                .ok_or_else(|| "`mixes` must be an array of name arrays".to_string())?;
            let mut mixes = Vec::with_capacity(mix_items.len());
            for m in mix_items {
                mixes.push(string_list_value(m, "mixes")?);
            }
            if mixes.is_empty() {
                return Err("datacenter workload needs at least one mix".to_string());
            }
            Ok(WorkloadAxis::Datacenter {
                mixes,
                loads: f64_list(v, "loads")?,
                full_scale: v["full_scale"].as_bool().unwrap_or(false),
            })
        }
        "faults" => {
            let cell_items = v
                .get("cells")
                .and_then(Value::as_array)
                .ok_or_else(|| "`cells` must be an array of fault cells".to_string())?;
            let mut cells = Vec::with_capacity(cell_items.len());
            for c in cell_items {
                cells.push(fault_cell_from_value(c)?);
            }
            if cells.is_empty() {
                return Err("faults workload needs at least one cell".to_string());
            }
            Ok(WorkloadAxis::Faults {
                mix: string_list_value(
                    v.get("mix")
                        .ok_or_else(|| "missing key `mix`".to_string())?,
                    "mix",
                )?,
                loads: f64_list(v, "loads")?,
                cells,
                full_scale: v["full_scale"].as_bool().unwrap_or(false),
            })
        }
        other => Err(format!(
            "unknown workload kind {other:?} (incast|datacenter|faults)"
        )),
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("`{key}` must be a string"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v[key]
        .as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn usize_value(v: &Value, key: &str) -> Result<usize, String> {
    let n = v
        .as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))?;
    usize::try_from(n).map_err(|_| format!("`{key}` is out of range"))
}

fn usize_list(v: &Value, key: &str) -> Result<Vec<usize>, String> {
    let items = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("`{key}` must be an array of integers"))?;
    items.iter().map(|x| usize_value(x, key)).collect()
}

fn f64_list(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    let items = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("`{key}` must be an array of numbers"))?;
    let out: Option<Vec<f64>> = items.iter().map(Value::as_f64).collect();
    let out = out.ok_or_else(|| format!("`{key}` must be an array of numbers"))?;
    if out.is_empty() {
        return Err(format!("`{key}` must not be empty"));
    }
    Ok(out)
}

fn string_list_value(v: &Value, key: &str) -> Result<Vec<String>, String> {
    let items = v
        .as_array()
        .ok_or_else(|| format!("`{key}` entries must be arrays of strings"))?;
    let out: Option<Vec<String>> = items
        .iter()
        .map(|x| x.as_str().map(str::to_string))
        .collect();
    out.ok_or_else(|| format!("`{key}` entries must be arrays of strings"))
}

/// Names [`preset`] accepts.
pub fn preset_names() -> &'static [&'static str] {
    &["smoke", "paper-incast", "paper-datacenter", "paper-faults"]
}

/// A built-in sweep spec by name.
///
/// * `smoke` — 8-1 and 16-1 incast, HPCC default vs VAI+SF, 3 seeds
///   (the CI job's fast end-to-end exercise);
/// * `paper-incast` — 16-1 and 96-1 incast, HPCC/Swift x default/VAI+SF;
/// * `paper-datacenter` — Figures 10-13 as one sweep (Hadoop and
///   WebSearch+Storage mixes, the four datacenter variants);
/// * `paper-faults` — the fault figure's loss/flap grid, baseline vs
///   VAI+SF.
pub fn preset(name: &str) -> Option<SweepSpec> {
    let flap = Some((Nanos::from_micros(200), Nanos::from_micros(40)));
    match name {
        "smoke" => Some(SweepSpec {
            name: "smoke".to_string(),
            cc: vec![
                CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
                CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
            ],
            workload: WorkloadAxis::Incast {
                degrees: vec![8, 16],
            },
            ensemble: Ensemble::new(42, 3),
        }),
        "paper-incast" => Some(SweepSpec {
            name: "paper-incast".to_string(),
            cc: vec![
                CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
                CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
                CcSpec::new(ProtocolKind::Swift, Variant::Default),
                CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
            ],
            workload: WorkloadAxis::Incast {
                degrees: vec![16, 96],
            },
            ensemble: Ensemble::new(42, 3),
        }),
        "paper-datacenter" => Some(SweepSpec {
            name: "paper-datacenter".to_string(),
            cc: vec![
                CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
                CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
                CcSpec::new(ProtocolKind::Swift, Variant::Default),
                CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
            ],
            workload: WorkloadAxis::Datacenter {
                mixes: vec![
                    vec![distributions::FB_HADOOP.to_string()],
                    vec![
                        distributions::WEBSEARCH.to_string(),
                        distributions::ALI_STORAGE.to_string(),
                    ],
                ],
                loads: vec![0.5],
                full_scale: false,
            },
            ensemble: Ensemble::new(42, 3),
        }),
        "paper-faults" => Some(SweepSpec {
            name: "paper-faults".to_string(),
            cc: vec![
                CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
                CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
            ],
            workload: WorkloadAxis::Faults {
                mix: vec![distributions::FB_HADOOP.to_string()],
                loads: vec![0.5],
                cells: vec![
                    FaultCell::clean(),
                    FaultCell {
                        name: "loss 1e-4".to_string(),
                        loss: 1e-4,
                        bursty: false,
                        flap: None,
                    },
                    FaultCell {
                        name: "loss 1e-3".to_string(),
                        loss: 1e-3,
                        bursty: false,
                        flap: None,
                    },
                    FaultCell {
                        name: "flap 200us".to_string(),
                        loss: 0.0,
                        bursty: false,
                        flap,
                    },
                    FaultCell {
                        name: "loss 1e-3 + flap".to_string(),
                        loss: 1e-3,
                        bursty: false,
                        flap,
                    },
                ],
                full_scale: false,
            },
            ensemble: Ensemble::new(42, 3),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incast_spec() -> SweepSpec {
        SweepSpec {
            name: "t".to_string(),
            cc: vec![
                CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
                CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
            ],
            workload: WorkloadAxis::Incast {
                degrees: vec![8, 16],
            },
            ensemble: Ensemble::new(7, 3),
        }
    }

    #[test]
    fn expansion_is_points_outer_cc_inner() {
        let cells = incast_spec().expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].id, "incast/deg=8/cc=hpcc");
        assert_eq!(cells[1].id, "incast/deg=8/cc=hpcc-vai-sf");
        assert_eq!(cells[2].id, "incast/deg=16/cc=hpcc");
        assert_eq!(cells[3].id, "incast/deg=16/cc=hpcc-vai-sf");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn seeds_are_shared_across_the_cc_axis_and_rooted() {
        let cells = incast_spec().expand();
        // Same point, different protocol: identical seed list (common
        // random numbers).
        assert_eq!(cells[0].seeds, cells[1].seeds);
        assert_ne!(cells[0].seeds, cells[2].seeds, "points draw distinct seeds");
        // Replicate 0 is the root seed for every point.
        assert_eq!(cells[0].seeds[0], 7);
        assert_eq!(cells[2].seeds[0], 7);
        assert_eq!(cells[0].seeds.len(), 3);
    }

    #[test]
    fn seed_derivation_is_rerun_stable_and_prefix_stable() {
        let e3 = Ensemble::new(42, 3);
        let e5 = Ensemble::new(42, 5);
        let a = e3.seeds_for("incast/deg=16");
        let b = e3.seeds_for("incast/deg=16");
        assert_eq!(a, b);
        // Growing the ensemble extends the list without rewriting it.
        assert_eq!(e5.seeds_for("incast/deg=16")[..3], a[..]);
    }

    #[test]
    fn json_round_trips() {
        for name in preset_names() {
            let spec = preset(name).expect("preset names are all defined");
            let back = SweepSpec::parse(&spec.to_json()).expect("round-trip parses");
            assert_eq!(back, spec, "preset {name} did not round-trip");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(SweepSpec::parse("not json").is_err());
        assert!(SweepSpec::parse(
            r#"{"name":"x","seed":1,"cc":[],"workload":{"kind":"incast","degrees":[8]}}"#
        )
        .is_err());
        assert!(SweepSpec::parse(
            r#"{"name":"x","seed":1,"cc":[{"protocol":"hpcc","variant":"nope"}],"workload":{"kind":"incast","degrees":[8]}}"#
        )
        .is_err());
        assert!(SweepSpec::parse(
            r#"{"name":"x","seed":1,"cc":[{"protocol":"hpcc","variant":"default"}],"workload":{"kind":"warp"}}"#
        )
        .is_err());
        // Half a flap is an error, not a silent default.
        assert!(SweepSpec::parse(
            r#"{"name":"x","seed":1,"cc":[{"protocol":"hpcc","variant":"default"}],
                "workload":{"kind":"faults","mix":["FB_Hadoop"],"loads":[0.5],
                "cells":[{"name":"b","loss":0.001,"flap_period_ns":1000}]}}"#
        )
        .is_err());
    }

    #[test]
    fn replicates_default_to_one() {
        let spec = SweepSpec::parse(
            r#"{"name":"x","seed":9,"cc":[{"protocol":"swift","variant":"vai-sf"}],
                "workload":{"kind":"incast","degrees":[4]}}"#,
        )
        .expect("minimal spec parses");
        assert_eq!(spec.ensemble, Ensemble::single(9));
        assert_eq!(spec.cell_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate sweep cell id")]
    fn duplicate_axis_values_panic() {
        let mut spec = incast_spec();
        spec.cc.push(spec.cc[0]);
        spec.expand();
    }

    #[test]
    fn slugs_are_filename_safe() {
        assert_eq!(slug("HPCC 1Gbps"), "hpcc-1gbps");
        assert_eq!(slug("Swift VAI SF"), "swift-vai-sf");
        assert_eq!(slug("incast/deg=16/cc=hpcc"), "incast-deg-16-cc-hpcc");
    }

    #[test]
    fn wire_names_cover_every_protocol_and_variant() {
        for kind in [
            ProtocolKind::Hpcc,
            ProtocolKind::Swift,
            ProtocolKind::Dcqcn,
            ProtocolKind::Timely,
        ] {
            assert_eq!(protocol_from_str(protocol_name(kind)), Some(kind));
        }
        for variant in [
            Variant::Default,
            Variant::HighAi,
            Variant::Probabilistic,
            Variant::Vai,
            Variant::Sf,
            Variant::VaiSf,
        ] {
            assert_eq!(variant_from_str(variant_name(variant)), Some(variant));
        }
        assert_eq!(protocol_from_str("tcp"), None);
        assert_eq!(variant_from_str(""), None);
    }
}
