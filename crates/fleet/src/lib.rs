//! `fleet` — the sweep harness: declarative scenario sweeps, seed
//! ensembles, and statistical reports.
//!
//! Every figure in this repository compares congestion-control variants,
//! and tail percentiles are exactly the statistic most sensitive to
//! sampling noise — a single seed-42 run is a point sample, not an
//! estimate. `fleet` turns a figure into an instance of a sweep engine:
//!
//! 1. a [`spec::SweepSpec`] declares axes (protocol x variant x workload
//!    point x seed ensemble) and expands them into a deterministic
//!    cartesian product of [`spec::CellSpec`] cells;
//! 2. [`run::run_sweep`] executes every `(cell, seed)` pair on a
//!    work-stealing `std::thread::scope` pool, each run isolated through
//!    the existing [`fairsim::Scenario::run_with`] seam;
//! 3. [`report::Report`] aggregates each cell's per-flow slowdowns into
//!    p50/p95/p99/p99.9, medians across the seed ensemble, and bootstrap
//!    confidence intervals ([`stats`]), emitted as machine-readable JSON
//!    (minijson) plus a text table.
//!
//! Determinism contract: the report depends only on the spec — never on
//! the worker count, the pool's dispatch order, or the scheduler backend
//! (heap and wheel runs are bit-identical by the engine's dispatch
//! contract). Rerunning a sweep yields byte-identical report JSON; the
//! golden test in `tests/sweep.rs` pins this.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod report;
pub mod run;
pub mod spec;
pub mod stats;

pub use report::{CellReport, Report};
pub use run::{run_sweep, CellOutcome, RunOutput, RunRecord, SweepConfig, SweepOutcome};
pub use spec::{
    fnv1a, preset, preset_names, slug, CellSpec, Ensemble, FaultCell, SweepSpec, WorkloadAxis,
    WorkloadPoint,
};
pub use stats::{bootstrap_ci, median, percentiles, Ci, Percentiles};
