//! `metrics` — the measurement math behind the paper's figures.
//!
//! * [`jain`] — the Jain fairness index over instantaneous rates
//!   (Figures 1, 5, 6).
//! * [`percentile`] — interpolated percentile estimation (the 99.9% tails
//!   of Figures 10/11 and the medians of Figures 12/13).
//! * [`SlowdownTable`] — FCT-slowdown analysis binned by flow size, one
//!   point per percentile-of-flows group, exactly how the paper plots
//!   "each data point represents 1% of flows".

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod slowdown;

pub use slowdown::{SlowdownPoint, SlowdownRecord, SlowdownTable};

/// The Jain fairness index of a rate allocation:
/// `(Σx)² / (n · Σx²)` — 1.0 when perfectly fair, `1/n` when one flow
/// holds everything.
///
/// Zero-rate flows count (a starved flow is the unfairness we are
/// measuring). An empty or all-zero slice returns 1.0 (nothing to be
/// unfair about).
pub fn jain(rates: &[f64]) -> f64 {
    let n = rates.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Linearly interpolated percentile of an *unsorted* slice
/// (`p` in `[0, 100]`). Uses the standard "linear interpolation between
/// closest ranks" definition (NIST R-7). Panics on an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p), "p must be in [0, 100]");
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&v, p)
}

/// [`percentile`] over data the caller has already sorted ascending.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convenience: the median.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// A time series of Jain indices computed from per-flow rate samples
/// (the output of `netsim`'s monitor).
pub fn jain_series<'a, I>(samples: I) -> Vec<(f64, f64)>
where
    I: IntoIterator<Item = (f64, &'a [f64])>,
{
    samples
        .into_iter()
        .map(|(t, rates)| (t, jain(rates)))
        .collect()
}

/// The *unfairness integral* of a Jain-index time series:
/// `∫ (1 − J(t)) dt` over the series span, by trapezoidal rule.
///
/// This is a scalar "how unfair, for how long" summary: a protocol that
/// converges instantly scores ~0; one that sits at J = 0.5 for a
/// millisecond scores ~500 (in µs·unfairness when `t` is in µs). It is a
/// strictly better comparison statistic than "time to first reach
/// J ≥ 0.9", which is noisy under rate-sampling quantization.
pub fn unfairness_integral(series: &[(f64, f64)]) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for w in series.windows(2) {
        let (t0, j0) = w[0];
        let (t1, j1) = w[1];
        let dt = t1 - t0;
        debug_assert!(dt >= 0.0, "series must be time-ordered");
        acc += dt * ((1.0 - j0) + (1.0 - j1)) / 2.0;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::DetRng;

    #[test]
    fn jain_perfectly_fair() {
        assert!((jain(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog() {
        // One flow with everything: index = 1/n.
        let idx = jain(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_paper_example_two_to_one() {
        // Two flows at B/2, one at B (the new line-rate flow): the
        // motivating example of Section IV.
        let idx = jain(&[0.5, 0.5, 1.0]);
        let expect = (2.0f64) * 2.0 / (3.0 * 1.5);
        assert!((idx - expect).abs() < 1e-12);
        assert!(idx < 0.9);
    }

    #[test]
    fn jain_scale_invariant() {
        let a = jain(&[1.0, 2.0, 3.0]);
        let b = jain(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_cases() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert_eq!(jain(&[7.0]), 1.0);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 75.0) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
    }

    #[test]
    fn p999_picks_the_tail() {
        let mut v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        v.reverse();
        let p = percentile(&v, 99.9);
        assert!(p > 997.0, "{p}");
    }

    #[test]
    fn median_shortcut() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn unfairness_integral_basics() {
        // Perfectly fair forever: zero.
        assert_eq!(unfairness_integral(&[(0.0, 1.0), (100.0, 1.0)]), 0.0);
        // Flat J = 0.5 for 100 us: 50.
        assert!((unfairness_integral(&[(0.0, 0.5), (100.0, 0.5)]) - 50.0).abs() < 1e-12);
        // Linear ramp 0 -> 1 over 10 us: trapezoid = 5.
        assert!((unfairness_integral(&[(0.0, 0.0), (10.0, 1.0)]) - 5.0).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(unfairness_integral(&[]), 0.0);
        assert_eq!(unfairness_integral(&[(5.0, 0.3)]), 0.0);
    }

    #[test]
    fn unfairness_integral_orders_protocols() {
        // A fast-converging series must score lower than a slow one.
        let fast = [(0.0, 0.5), (10.0, 0.95), (100.0, 1.0)];
        let slow = [(0.0, 0.5), (50.0, 0.6), (100.0, 1.0)];
        assert!(unfairness_integral(&fast) < unfairness_integral(&slow));
    }

    #[test]
    fn jain_series_maps() {
        let r1 = [1.0, 1.0];
        let r2 = [1.0, 0.0];
        let s = jain_series(vec![(0.0, &r1[..]), (1.0, &r2[..])]);
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 1.0).abs() < 1e-12);
        assert!((s[1].1 - 0.5).abs() < 1e-12);
    }

    /// Jain is always in (0, 1] and equals 1 iff all rates equal.
    #[test]
    fn prop_jain_bounds() {
        let mut rng = DetRng::new(0x7a1);
        for case in 0..256 {
            let rates: Vec<f64> = (0..1 + rng.below(49)).map(|_| 1e12 * rng.f64()).collect();
            let j = jain(&rates);
            assert!(j > 0.0 && j <= 1.0 + 1e-12, "case {case}: jain {j}");
        }
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn prop_percentile_monotone() {
        let mut rng = DetRng::new(0x9c7);
        for case in 0..256 {
            let mut vals: Vec<f64> = (0..1 + rng.below(99))
                .map(|_| -1e6 + 2e6 * rng.f64())
                .collect();
            let p1 = 100.0 * rng.f64();
            let p2 = 100.0 * rng.f64();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = (p1.min(p2), p1.max(p2));
            let a = percentile_sorted(&vals, lo);
            let b = percentile_sorted(&vals, hi);
            assert!(a <= b + 1e-9, "case {case}");
            assert!(a >= vals[0] - 1e-9, "case {case}");
            assert!(b <= vals[vals.len() - 1] + 1e-9, "case {case}");
        }
    }
}
