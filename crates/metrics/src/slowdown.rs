//! FCT slowdown analysis (Figures 10–13).
//!
//! The paper plots *FCT slowdown* — achieved FCT divided by the
//! theoretical minimum on an idle network — as a function of flow size,
//! with "each data point represent\[ing\] 1% of flows": flows are sorted by
//! size, partitioned into equal-count bins, and each bin contributes one
//! point at its largest flow size with the requested percentile of the
//! slowdowns inside the bin.

use crate::percentile_sorted;

/// One completed flow's contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownRecord {
    /// Flow size in bytes.
    pub size: u64,
    /// Achieved FCT divided by ideal FCT (≥ 1 for a correct simulator).
    pub slowdown: f64,
}

/// One plotted point: a size bin and its slowdown statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownPoint {
    /// Largest flow size in the bin (the x coordinate).
    pub size: u64,
    /// Number of flows in the bin.
    pub count: usize,
    /// Requested upper percentile (e.g. 99.9%) of slowdown in the bin.
    pub tail: f64,
    /// Median slowdown in the bin.
    pub median: f64,
    /// Mean slowdown in the bin.
    pub mean: f64,
}

/// The full binned table for one protocol run.
#[derive(Debug, Clone)]
pub struct SlowdownTable {
    /// Points in ascending size order.
    pub points: Vec<SlowdownPoint>,
    /// The percentile used for [`SlowdownPoint::tail`].
    pub tail_percentile: f64,
}

impl SlowdownTable {
    /// Build the table: sort by size, split into `n_bins` equal-count
    /// bins (the paper uses 100, i.e. 1% of flows per point), and compute
    /// the `tail_percentile` (e.g. 99.9) and median slowdown per bin.
    ///
    /// If there are fewer records than bins, each record becomes its own
    /// bin.
    pub fn build(mut records: Vec<SlowdownRecord>, n_bins: usize, tail_percentile: f64) -> Self {
        assert!(n_bins > 0, "need at least one bin");
        records.sort_by(|a, b| {
            a.size
                .cmp(&b.size)
                .then(a.slowdown.partial_cmp(&b.slowdown).expect("NaN slowdown"))
        });
        let n = records.len();
        let bins = n_bins.min(n.max(1));
        let mut points = Vec::with_capacity(bins);
        if n == 0 {
            return SlowdownTable {
                points,
                tail_percentile,
            };
        }
        for b in 0..bins {
            let lo = b * n / bins;
            let hi = ((b + 1) * n / bins).max(lo + 1);
            let chunk = &records[lo..hi.min(n)];
            if chunk.is_empty() {
                continue;
            }
            let mut sl: Vec<f64> = chunk.iter().map(|r| r.slowdown).collect();
            sl.sort_by(|a, b| a.partial_cmp(b).expect("NaN slowdown"));
            points.push(SlowdownPoint {
                size: chunk.last().expect("non-empty").size,
                count: chunk.len(),
                tail: percentile_sorted(&sl, tail_percentile),
                median: percentile_sorted(&sl, 50.0),
                mean: sl.iter().sum::<f64>() / sl.len() as f64,
            });
        }
        SlowdownTable {
            points,
            tail_percentile,
        }
    }

    /// The worst tail slowdown among bins whose size exceeds `min_size` —
    /// the paper's headline "tail FCT of long flows" number.
    pub fn worst_tail_above(&self, min_size: u64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.size > min_size)
            .map(|p| p.tail)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Mean of the tail column over bins above `min_size` (a more stable
    /// comparison statistic than the single worst bin).
    pub fn mean_tail_above(&self, min_size: u64) -> Option<f64> {
        let v: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.size > min_size)
            .map(|p| p.tail)
            .collect();
        (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: u64, slowdown: f64) -> SlowdownRecord {
        SlowdownRecord { size, slowdown }
    }

    #[test]
    fn bins_are_equal_count_and_sorted() {
        let recs: Vec<_> = (0..100).map(|i| rec(i * 1000 + 1, 2.0)).collect();
        let t = SlowdownTable::build(recs, 10, 99.0);
        assert_eq!(t.points.len(), 10);
        for p in &t.points {
            assert_eq!(p.count, 10);
        }
        // x coordinates ascend.
        for w in t.points.windows(2) {
            assert!(w[1].size > w[0].size);
        }
        assert_eq!(t.points.last().unwrap().size, 99 * 1000 + 1);
    }

    #[test]
    fn tail_and_median_computed_per_bin() {
        // One bin: sizes equal, slowdowns 1..=100.
        let recs: Vec<_> = (1..=100).map(|i| rec(500, i as f64)).collect();
        let t = SlowdownTable::build(recs, 1, 99.0);
        let p = &t.points[0];
        assert!((p.median - 50.5).abs() < 1e-9);
        assert!(p.tail > 98.0);
        assert!((p.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn fewer_records_than_bins() {
        let recs = vec![rec(10, 1.5), rec(20, 2.5), rec(30, 3.5)];
        let t = SlowdownTable::build(recs, 100, 99.9);
        assert_eq!(t.points.len(), 3);
        assert_eq!(t.points[0].count, 1);
        assert!((t.points[2].tail - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_empty_table() {
        let t = SlowdownTable::build(vec![], 100, 99.9);
        assert!(t.points.is_empty());
        assert_eq!(t.worst_tail_above(0), None);
    }

    #[test]
    fn worst_tail_above_filters_small_flows() {
        let recs = vec![
            rec(1_000, 50.0),     // small flow, bad slowdown
            rec(2_000_000, 10.0), // long flow
            rec(3_000_000, 20.0), // long flow, worse
        ];
        let t = SlowdownTable::build(recs, 3, 99.9);
        assert_eq!(t.worst_tail_above(1_000_000), Some(20.0));
        assert_eq!(t.worst_tail_above(0), Some(50.0));
        assert_eq!(t.mean_tail_above(1_000_000), Some(15.0));
    }
}
