//! `cc-timely` — Timely: RTT-gradient congestion control (Mittal et al.,
//! SIGCOMM 2015).
//!
//! Timely is the sender-side, rate-based ancestor of Swift and one of the
//! protocols the fairness paper cites when motivating its mechanisms (its
//! *hyper active increase* is the extension the paper suggests adding to
//! Swift). Including it demonstrates the paper's claim that Variable AI
//! and Sampling Frequency are "broadly applicable to other sender
//! reaction-based protocols": both bolt onto Timely here exactly as they
//! do onto HPCC and Swift.
//!
//! # The algorithm
//!
//! Timely smooths the *derivative* of the RTT (is the queue growing or
//! draining?) rather than its absolute value, with absolute guard rails:
//!
//! ```text
//! rtt_diff   = (1−α)·rtt_diff + α·(new_rtt − prev_rtt)
//! gradient   = rtt_diff / min_rtt
//! if new_rtt < T_low  : rate += δ                       (additive)
//! if new_rtt > T_high : rate ×= 1 − β·(1 − T_high/rtt)  (multiplicative)
//! if gradient ≤ 0     : rate += N·δ   (N = 5 after 5 good events: HAI)
//! else                : rate ×= 1 − β·gradient
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

use dcsim::{BitRate, Nanos};
use faircc::{
    AckFeedback, CcMode, CcSnapshot, CongestionControl, MetricsRegistry, SamplingFrequency,
    SenderLimits, SfConfig, VaiConfig, VariableAi,
};

/// Tunables for one Timely flow.
#[derive(Debug, Clone)]
pub struct TimelyConfig {
    /// Line rate (initial and maximum).
    pub line_rate: BitRate,
    /// Propagation-only RTT (`min_rtt`): normalizes the gradient.
    pub min_rtt: Nanos,
    /// Below this RTT the rate always increases additively.
    pub t_low: Nanos,
    /// Above this RTT the rate always decreases multiplicatively.
    pub t_high: Nanos,
    /// EWMA weight for the RTT difference (Timely: 0.875... the paper's
    /// artifact uses α ≈ 0.875 on the *new* sample being damped; we use
    /// the conventional `rtt_diff = (1−α)·old + α·new` with α = 0.875).
    pub alpha: f64,
    /// Multiplicative-decrease strength β (Timely: 0.8).
    pub beta: f64,
    /// Additive increment δ (we use 50 Mbps, matching the paper's AI
    /// setting for HPCC/Swift; Timely's 10 Gbps-era default was 10 Mbps).
    pub delta: BitRate,
    /// Completed gradient-negative events before hyper active increase
    /// engages (Timely: 5).
    pub hai_thresh: u32,
    /// Rate floor.
    pub min_rate: BitRate,
    /// Variable AI (None = stock Timely).
    pub vai: Option<VaiConfig>,
    /// Sampling Frequency (None = per-RTT decreases).
    pub sf: Option<SfConfig>,
}

impl TimelyConfig {
    /// Reasonable defaults for a 100 Gbps fabric with `base_rtt`
    /// propagation: `T_low = base + 2 µs`, `T_high = base + 10 µs`.
    pub fn default_100g(base_rtt: Nanos) -> Self {
        TimelyConfig {
            line_rate: BitRate::from_gbps(100),
            min_rtt: base_rtt,
            t_low: base_rtt + Nanos::from_micros(2),
            t_high: base_rtt + Nanos::from_micros(10),
            alpha: 0.875,
            beta: 0.8,
            delta: BitRate::from_mbps(50),
            hai_thresh: 5,
            min_rate: BitRate::from_mbps(10),
            vai: None,
            sf: None,
        }
    }

    /// Stock Timely plus the fairness paper's mechanisms: VAI fed by
    /// RTT overshoot (tokens above `T_high + 4 µs`, 30 ns per token, as
    /// in the Swift parameterization) and SF at s = 30.
    pub fn with_vai_sf(base_rtt: Nanos) -> Self {
        let base = Self::default_100g(base_rtt);
        let thresh_ns = base.t_high.as_u64() as f64 + 4_000.0;
        TimelyConfig {
            vai: Some(VaiConfig::swift_default(thresh_ns)),
            sf: Some(SfConfig::paper_default()),
            ..base
        }
    }
}

/// One flow's Timely state.
pub struct Timely {
    cfg: TimelyConfig,
    name: &'static str,
    /// Current injection rate, bits/s.
    rate: f64,
    prev_rtt: Option<Nanos>,
    rtt_diff_ns: f64,
    /// Consecutive gradient-negative (or sub-T_low) events.
    good_events: u32,
    /// Per-RTT decrease gate (stock mode).
    last_decrease: Nanos,
    last_rtt: Nanos,
    rtt_mark: Nanos,
    vai: Option<VariableAi>,
    sf: Option<SamplingFrequency>,
}

impl Timely {
    /// A flow starting at line rate.
    pub fn new(cfg: TimelyConfig) -> Self {
        let rate = cfg.line_rate.as_f64();
        let vai = cfg.vai.map(VariableAi::new);
        let sf = cfg.sf.map(SamplingFrequency::new);
        let name = match (&vai, &sf) {
            (Some(_), Some(_)) => "Timely VAI SF",
            (Some(_), None) => "Timely VAI",
            (None, Some(_)) => "Timely SF",
            (None, None) => "Timely",
        };
        Timely {
            cfg,
            name,
            rate,
            prev_rtt: None,
            rtt_diff_ns: 0.0,
            good_events: 0,
            last_decrease: Nanos::ZERO,
            last_rtt: Nanos::ZERO,
            rtt_mark: Nanos::ZERO,
            vai,
            sf,
        }
    }

    /// Current rate in bits/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The smoothed normalized RTT gradient.
    pub fn gradient(&self) -> f64 {
        self.rtt_diff_ns / self.cfg.min_rtt.as_u64() as f64
    }

    fn effective_delta(&mut self, spend: bool) -> f64 {
        let base = self.cfg.delta.as_f64();
        match &mut self.vai {
            Some(vai) => base * vai.ai_multiplier(spend),
            None => base,
        }
    }

    fn clamp(&mut self) {
        self.rate = self
            .rate
            .clamp(self.cfg.min_rate.as_f64(), self.cfg.line_rate.as_f64());
    }
}

impl CongestionControl for Timely {
    fn on_ack(&mut self, fb: &AckFeedback) {
        let new_rtt = fb.rtt;

        // Gradient update.
        if let Some(prev) = self.prev_rtt {
            let diff = new_rtt.as_u64() as f64 - prev.as_u64() as f64;
            self.rtt_diff_ns = (1.0 - self.cfg.alpha) * self.rtt_diff_ns + self.cfg.alpha * diff;
        }
        self.prev_rtt = Some(new_rtt);
        let gradient = self.gradient();

        // VAI bookkeeping (congestion measure: raw RTT, congested when
        // above T_high — the regime where Timely decreases).
        let congested = new_rtt > self.cfg.t_high || (new_rtt >= self.cfg.t_low && gradient > 0.0);
        if let Some(vai) = &mut self.vai {
            vai.observe(new_rtt.as_u64() as f64, congested);
        }
        let rtt_boundary =
            fb.now.saturating_sub(self.rtt_mark) >= self.last_rtt && self.last_rtt > Nanos::ZERO;
        if rtt_boundary {
            self.rtt_mark = fb.now;
            if let Some(vai) = &mut self.vai {
                vai.on_rtt_end();
            }
        }

        let sf_boundary = self.sf.as_mut().map(|sf| sf.on_ack()).unwrap_or(false);
        // Stock Timely gates decreases once per *minimum* RTT: gating on
        // the measured RTT would let a deep queue inflate its own
        // reaction period and diverge.
        let may_decrease = if self.sf.is_some() {
            sf_boundary
        } else {
            fb.now.saturating_sub(self.last_decrease) >= self.cfg.min_rtt
        };

        if new_rtt < self.cfg.t_low {
            // Guard rail: always increase below T_low (hyper active
            // increase applies here too — this is exactly where freed
            // bandwidth should be grabbed fastest).
            self.good_events = self.good_events.saturating_add(1);
            let n = if self.good_events >= self.cfg.hai_thresh {
                self.cfg.hai_thresh as f64
            } else {
                1.0
            };
            let d = self.effective_delta(rtt_boundary);
            self.rate += n * d;
        } else if new_rtt > self.cfg.t_high {
            // Guard rail: always decrease above T_high (gated).
            self.good_events = 0;
            if may_decrease {
                let r = new_rtt.as_u64() as f64;
                let t = self.cfg.t_high.as_u64() as f64;
                self.rate *= 1.0 - self.cfg.beta * (1.0 - t / r);
                self.last_decrease = fb.now;
            }
        } else if gradient <= 0.0 {
            // Queue draining: additive increase, with hyper active
            // increase after `hai_thresh` consecutive good events.
            self.good_events = self.good_events.saturating_add(1);
            let n = if self.good_events >= self.cfg.hai_thresh {
                self.cfg.hai_thresh as f64
            } else {
                1.0
            };
            let d = self.effective_delta(rtt_boundary);
            self.rate += n * d;
        } else {
            // Queue growing: gradient-proportional decrease (gated).
            self.good_events = 0;
            if may_decrease {
                self.rate *= (1.0 - self.cfg.beta * gradient).max(0.0);
                self.last_decrease = fb.now;
            }
        }

        self.last_rtt = new_rtt;
        self.clamp();
    }

    fn on_rto(&mut self, now: Nanos) {
        // Timeout: halve the rate and forget the good-event streak so
        // hyper active increase cannot fire right after an outage.
        self.rate *= 0.5;
        self.good_events = 0;
        self.last_decrease = now;
        self.clamp();
    }

    fn limits(&self) -> SenderLimits {
        SenderLimits::rate_based(BitRate::from_bps_f64(self.rate))
    }

    fn mode(&self) -> CcMode {
        CcMode::Rate
    }

    fn name(&self) -> &str {
        self.name
    }

    fn snapshot(&self) -> CcSnapshot {
        let l = self.limits();
        CcSnapshot {
            window_bytes: l.window_bytes,
            rate: l.pacing,
            vai_bank: self.vai.as_ref().map_or(0.0, VariableAi::bank),
        }
    }

    fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        reg.histogram_record_f64("cc.timely.rate_bps", self.rate);
        if let Some(vai) = &self.vai {
            reg.histogram_record_f64("cc.timely.vai_bank", vai.bank());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::Bytes;

    const BASE: Nanos = Nanos(4_000);

    fn timely() -> Timely {
        Timely::new(TimelyConfig::default_100g(BASE))
    }

    fn ack(now: Nanos, rtt: Nanos) -> AckFeedback {
        AckFeedback::rtt_only(now, rtt, Bytes(1000))
    }

    #[test]
    fn starts_at_line_rate() {
        let t = timely();
        assert_eq!(t.rate(), 100e9);
        assert!(t.limits().window_bytes.is_infinite());
        assert_eq!(t.name(), "Timely");
    }

    #[test]
    fn low_rtt_increases_additively() {
        let mut t = timely();
        t.rate = 10e9;
        let mut now = Nanos(0);
        for _ in 0..4 {
            now += Nanos(1000);
            t.on_ack(&ack(now, Nanos(4_500))); // below T_low = 6 us
        }
        // 4 increments of delta (50 Mbps) before the HAI streak engages.
        assert!((t.rate() - (10e9 + 4.0 * 50e6)).abs() < 1.0, "{}", t.rate());
    }

    #[test]
    fn high_rtt_decreases_multiplicatively() {
        let mut t = timely();
        t.last_rtt = BASE;
        // 28 us >> T_high = 14 us: rate ×= 1 − 0.8·(1 − 14/28) = 0.6.
        t.on_ack(&ack(Nanos(100_000), Nanos(28_000)));
        assert!((t.rate() - 60e9).abs() < 1e6, "{}", t.rate());
    }

    #[test]
    fn decrease_gated_once_per_min_rtt() {
        let mut t = timely();
        t.on_ack(&ack(Nanos(100_000), Nanos(28_000)));
        let after_first = t.rate();
        // Same congestion, 1 us later (inside one min-RTT): no change.
        t.on_ack(&ack(Nanos(101_000), Nanos(28_000)));
        assert_eq!(t.rate(), after_first);
        // After a full min-RTT: decreases again.
        t.on_ack(&ack(Nanos(104_100), Nanos(28_000)));
        assert!(t.rate() < after_first);
    }

    #[test]
    fn negative_gradient_in_band_increases() {
        let mut t = timely();
        t.rate = 10e9;
        let mut now = Nanos(0);
        // RTTs in (T_low, T_high) but falling: gradient < 0.
        for (i, rtt_us) in [9.0f64, 8.5, 8.0, 7.5, 7.0].iter().enumerate() {
            now += Nanos(1000 * (i as u64 + 1));
            t.on_ack(&ack(now, Nanos::from_ns_f64(*rtt_us * 1000.0)));
        }
        assert!(t.gradient() < 0.0);
        assert!(t.rate() > 10e9);
    }

    #[test]
    fn positive_gradient_in_band_decreases() {
        let mut t = timely();
        t.last_rtt = BASE;
        let mut now = Nanos(0);
        // Rising RTTs inside the band.
        for rtt_us in [7.0f64, 8.0, 9.0, 10.0, 11.0] {
            now += Nanos(10_000);
            t.on_ack(&ack(now, Nanos::from_ns_f64(rtt_us * 1000.0)));
        }
        assert!(t.gradient() > 0.0);
        assert!(t.rate() < 100e9);
    }

    #[test]
    fn hai_kicks_in_after_streak() {
        let mut t = timely();
        t.rate = 10e9;
        let mut now = Nanos(0);
        let mut increments = Vec::new();
        for _ in 0..10 {
            now += Nanos(1000);
            let before = t.rate();
            t.on_ack(&ack(now, Nanos(4_500)));
            increments.push(t.rate() - before);
        }
        // First increments are delta; after the streak they are 5x delta.
        assert!((increments[0] - 50e6).abs() < 1.0);
        assert!((increments[9] - 250e6).abs() < 1.0, "{:?}", increments);
    }

    #[test]
    fn congestion_resets_hai_streak() {
        let mut t = timely();
        t.rate = 10e9;
        t.last_rtt = BASE;
        let mut now = Nanos(0);
        for _ in 0..8 {
            now += Nanos(1000);
            t.on_ack(&ack(now, Nanos(4_500)));
        }
        assert!(t.good_events >= 5);
        now += Nanos(100_000);
        t.on_ack(&ack(now, Nanos(30_000)));
        assert_eq!(t.good_events, 0);
    }

    #[test]
    fn rate_clamped_to_floor_and_line() {
        let mut t = timely();
        t.last_rtt = BASE;
        let mut now = Nanos(0);
        for _ in 0..200 {
            now += Nanos(100_000);
            t.on_ack(&ack(now, Nanos(500_000)));
        }
        assert!(t.rate() >= t.cfg.min_rate.as_f64());
        for _ in 0..1_000_000 {
            now += Nanos(1000);
            t.on_ack(&ack(now, Nanos(4_100)));
            if t.rate() >= 100e9 {
                break;
            }
        }
        assert!(t.rate() <= 100e9);
    }

    #[test]
    fn vai_sf_variant_constructs_and_mints() {
        let mut t = Timely::new(TimelyConfig::with_vai_sf(BASE));
        assert_eq!(t.name(), "Timely VAI SF");
        t.last_rtt = BASE;
        let mut now = Nanos(0);
        // Sustained 25 us delays, well above T_high + 4 us.
        for _ in 0..100 {
            now += Nanos(4_000);
            t.on_ack(&ack(now, Nanos(25_000)));
        }
        assert!(
            t.vai
                .as_ref()
                .expect("VaiSf variant carries a VAI instance")
                .bank()
                > 0.0
        );
    }

    #[test]
    fn sf_gates_decreases_by_ack_count() {
        let mut t = Timely::new(TimelyConfig {
            sf: Some(SfConfig {
                acks_per_decrease: 4,
            }),
            ..TimelyConfig::default_100g(BASE)
        });
        t.last_rtt = BASE;
        let mut now = Nanos(0);
        let mut decreases = 0;
        let mut last = t.rate();
        for _ in 0..12 {
            now += Nanos(100);
            t.on_ack(&ack(now, Nanos(28_000)));
            if t.rate() < last {
                decreases += 1;
                last = t.rate();
            }
        }
        assert_eq!(decreases, 3, "12 ACKs at s=4 must decrease exactly 3x");
    }
}
