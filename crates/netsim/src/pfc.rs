//! Priority Flow Control (PFC) — the lossless-Ethernet pause mechanism.
//!
//! Real RoCEv2 fabrics rely on PFC to guarantee losslessness: when a
//! switch's buffer fills past XOFF it sends PAUSE frames to the upstream
//! ports feeding that buffer, and resumes with XON once the buffer drains.
//! The protocols evaluated in the paper are designed to keep queues far
//! below PFC thresholds (that is the point of HPCC's "near zero queues"),
//! so PFC should be *inert* in every experiment — this module exists to
//! verify that claim (the `ablation-pfc` bench) and to bound queue growth
//! in pathological configurations.
//!
//! ## Model
//!
//! Our switches are output-queued, so congestion is observed at egress
//! queues. We map PFC onto that as follows:
//!
//! * when egress queue `P` at switch `N` crosses `xoff`, `N` sends PAUSE to
//!   every neighbour **except `P`'s own peer** — those are the nodes whose
//!   traffic can feed `P`. Pausing `P`'s peer would throttle the drain
//!   direction and recreate the classic PFC circular-wait deadlock;
//! * when `P` drains below `xon`, `N` sends RESUME to the same set;
//! * **hosts never assert PAUSE**: a host NIC's egress queue is fed only by
//!   its own flows, and real NICs backpressure the sending queue pair
//!   locally rather than pausing the fabric (the queue lives in host
//!   memory in our model);
//! * a port may be paused by several congested queues at once, so pause is
//!   a *counter*, not a flag ([`PauseCounter`]): PAUSE increments, RESUME
//!   decrements, and the port transmits only at zero.
//!
//! Pause/resume frames propagate with the link's propagation delay and are
//! not queued behind data (real PFC frames are highest priority).

use dcsim::Bytes;

/// PFC watermarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfcConfig {
    /// Egress backlog at which PAUSE is asserted.
    pub xoff: Bytes,
    /// Backlog below which RESUME is sent. Must be `< xoff` for
    /// hysteresis.
    pub xon: Bytes,
}

impl PfcConfig {
    /// Typical headroom for 100 Gbps fabrics: XOFF at 512 KB, XON at
    /// 384 KB (per-port buffers in the HPCC artifact's switch model are in
    /// the hundreds of KB to a few MB).
    pub fn default_100g() -> Self {
        PfcConfig {
            xoff: Bytes::from_kb(512),
            xon: Bytes::from_kb(384),
        }
    }

    /// Validate the watermarks.
    pub fn validate(&self) {
        assert!(
            self.xon < self.xoff,
            "PFC requires xon < xoff (got xon={}, xoff={})",
            self.xon,
            self.xoff
        );
        assert!(self.xoff.as_u64() > 0, "xoff must be positive");
    }
}

/// Reference-counted pause state for one port.
///
/// Multiple congested egress queues can pause the same upstream port;
/// each PAUSE must be matched by its RESUME before the port may transmit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PauseCounter(u32);

impl PauseCounter {
    /// Apply a PAUSE (`+1`) or RESUME (`-1`).
    pub fn apply(&mut self, pause: bool) {
        if pause {
            self.0 += 1;
        } else {
            debug_assert!(self.0 > 0, "unbalanced PFC resume");
            dcsim::audit_assert!(
                self.0 > 0,
                "PFC pairing: RESUME with no outstanding PAUSE on this port"
            );
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Whether the port is currently paused.
    pub fn is_paused(&self) -> bool {
        self.0 > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_watermarks_are_sane() {
        let c = PfcConfig::default_100g();
        c.validate();
        assert!(c.xon < c.xoff);
    }

    #[test]
    #[should_panic(expected = "xon < xoff")]
    fn inverted_watermarks_rejected() {
        PfcConfig {
            xoff: Bytes(100),
            xon: Bytes(100),
        }
        .validate();
    }

    #[test]
    fn pause_counter_nests() {
        let mut c = PauseCounter::default();
        assert!(!c.is_paused());
        c.apply(true);
        c.apply(true); // second congested queue
        assert!(c.is_paused());
        c.apply(false);
        assert!(c.is_paused()); // one source still congested
        c.apply(false);
        assert!(!c.is_paused());
    }
}
