//! Topology generators: the single-switch star used by the paper's incast
//! microbenchmarks, a dumbbell for tests, and the 3-layer fat-tree of the
//! datacenter simulations (paper Figure 7).

use dcsim::{BitRate, Bytes, Nanos};

use crate::ids::NodeId;
use crate::network::NetBuilder;

/// A constructed topology: the builder plus the host list and a few
/// structural facts the experiment layer needs.
pub struct Topology {
    /// The partially built network (add RED / finalize with `build`).
    pub builder: NetBuilder,
    /// All host node ids, in creation order.
    pub hosts: Vec<NodeId>,
    /// All switch node ids, in creation order.
    pub switches: Vec<NodeId>,
    /// Every link as an endpoint pair, in creation order. Used by the
    /// fault-injection layer to pick targets (e.g. "all fabric links" =
    /// pairs where both ends are switches).
    pub links: Vec<(NodeId, NodeId)>,
    /// Host link rate.
    pub host_rate: BitRate,
    /// Worst-case number of switch hops between two hosts.
    pub max_hops: u32,
    /// One-way propagation + MTU store-and-forward delay between the two
    /// most distant hosts, used as the protocols' base RTT parameter.
    pub base_rtt: Nanos,
}

impl Topology {
    /// The single-switch star of the incast microbenchmarks: `n_hosts`
    /// hosts, each with a `host_rate` link of `prop` propagation delay to
    /// one switch.
    ///
    /// The paper uses 17 hosts (16-1 incast) and 97 hosts (96-1), 100 Gbps
    /// links, and 1 µs propagation.
    pub fn star(n_hosts: usize, host_rate: BitRate, prop: Nanos) -> Topology {
        assert!(n_hosts >= 2, "a star needs at least two hosts");
        let mut b = NetBuilder::new();
        let hosts: Vec<NodeId> = (0..n_hosts).map(|_| b.add_host()).collect();
        let sw = b.add_switch();
        let mut links = Vec::with_capacity(n_hosts);
        for &h in &hosts {
            b.link(h, sw, host_rate, prop);
            links.push((h, sw));
        }
        let mtu_ser = host_rate.serialization_delay(Bytes::new(1000));
        // Host -> switch -> host, and the ACK back (ACK serialization is
        // negligible; we fold it into the data-packet estimate, matching
        // how the paper quotes a 5 us base RTT for this topology).
        let base_rtt = (prop + mtu_ser) * 4;
        Topology {
            builder: b,
            hosts,
            switches: vec![sw],
            links,
            host_rate,
            max_hops: 1,
            base_rtt,
        }
    }

    /// The paper's incast star: 100 Gbps, 1 µs links.
    pub fn paper_star(n_hosts: usize) -> Topology {
        Topology::star(n_hosts, BitRate::from_gbps(100), Nanos::MICRO)
    }

    /// A dumbbell: `n` hosts on each side of a two-switch core link.
    /// Useful for tests that need an inter-switch bottleneck.
    pub fn dumbbell(
        n_per_side: usize,
        host_rate: BitRate,
        core_rate: BitRate,
        prop: Nanos,
    ) -> Topology {
        let mut b = NetBuilder::new();
        let left: Vec<NodeId> = (0..n_per_side).map(|_| b.add_host()).collect();
        let right: Vec<NodeId> = (0..n_per_side).map(|_| b.add_host()).collect();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let mut links = vec![(s0, s1)];
        b.link(s0, s1, core_rate, prop);
        for &h in &left {
            b.link(h, s0, host_rate, prop);
            links.push((h, s0));
        }
        for &h in &right {
            b.link(h, s1, host_rate, prop);
            links.push((h, s1));
        }
        let mtu_ser = host_rate.serialization_delay(Bytes::new(1000));
        let base_rtt = (prop + mtu_ser) * 6;
        let mut hosts = left;
        hosts.extend(right);
        Topology {
            builder: b,
            hosts,
            switches: vec![s0, s1],
            links,
            host_rate,
            max_hops: 2,
            base_rtt,
        }
    }
}

impl Topology {
    /// A 2-layer leaf-spine fabric: every leaf connects to every spine.
    ///
    /// Not used by the paper's evaluation, but the most common real
    /// deployment shape — useful for checking that conclusions do not
    /// depend on the 3-layer fat-tree.
    pub fn leaf_spine(
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        host_rate: BitRate,
        fabric_rate: BitRate,
        prop: Nanos,
    ) -> Topology {
        assert!(leaves >= 1 && spines >= 1 && hosts_per_leaf >= 1);
        let mut b = NetBuilder::new();
        let leaf_sw: Vec<NodeId> = (0..leaves).map(|_| b.add_switch()).collect();
        let spine_sw: Vec<NodeId> = (0..spines).map(|_| b.add_switch()).collect();
        let mut links = Vec::with_capacity(leaves * (spines + hosts_per_leaf));
        for &l in &leaf_sw {
            for &s in &spine_sw {
                b.link(l, s, fabric_rate, prop);
                links.push((l, s));
            }
        }
        let mut hosts = Vec::with_capacity(leaves * hosts_per_leaf);
        for &l in &leaf_sw {
            for _ in 0..hosts_per_leaf {
                let h = b.add_host();
                b.link(h, l, host_rate, prop);
                hosts.push(h);
                links.push((h, l));
            }
        }
        let mtu = Bytes::new(1000);
        let host_ser = host_rate.serialization_delay(mtu);
        let fabric_ser = fabric_rate.serialization_delay(mtu);
        // Worst case: host -> leaf -> spine -> leaf -> host.
        let one_way = (prop + host_ser) * 2 + (prop + fabric_ser) * 2;
        let mut switches = leaf_sw;
        switches.extend(spine_sw);
        Topology {
            builder: b,
            hosts,
            switches,
            links,
            host_rate,
            max_hops: 3,
            base_rtt: one_way * 2,
        }
    }
}

/// Parameters of the 3-layer fat-tree (paper Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct FatTreeConfig {
    /// Number of 2-layer pods.
    pub pods: usize,
    /// ToR switches per pod.
    pub tors_per_pod: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Spine switches (must be a multiple of `aggs_per_pod`; each agg
    /// connects to `spines / aggs_per_pod` spines in its group).
    pub spines: usize,
    /// Host link rate.
    pub host_rate: BitRate,
    /// ToR-Agg and Agg-Spine link rate.
    pub fabric_rate: BitRate,
    /// Propagation delay of every link.
    pub prop: Nanos,
}

impl FatTreeConfig {
    /// The paper's datacenter topology: 320 hosts, 5 pods of 4 ToR + 4 Agg,
    /// 16 spines; 100 Gbps host links, 400 Gbps fabric links, 1 µs
    /// propagation everywhere. Maximum 5 hops between hosts.
    pub fn paper() -> Self {
        FatTreeConfig {
            pods: 5,
            tors_per_pod: 4,
            aggs_per_pod: 4,
            hosts_per_tor: 16,
            spines: 16,
            host_rate: BitRate::from_gbps(100),
            fabric_rate: BitRate::from_gbps(400),
            prop: Nanos::MICRO,
        }
    }

    /// A laptop-scale fat-tree preserving the paper's structure (3 layers,
    /// ECMP fan-out, 4:1 host-to-fabric rate ratio): 2 pods of 2 ToR +
    /// 2 Agg, 4 spines, 8 hosts per ToR = 32 hosts.
    pub fn reduced() -> Self {
        FatTreeConfig {
            pods: 2,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            hosts_per_tor: 8,
            spines: 4,
            host_rate: BitRate::from_gbps(100),
            fabric_rate: BitRate::from_gbps(400),
            prop: Nanos::MICRO,
        }
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.pods * self.tors_per_pod * self.hosts_per_tor
    }

    /// Build the topology.
    pub fn build(&self) -> Topology {
        assert!(self.pods >= 1 && self.tors_per_pod >= 1 && self.aggs_per_pod >= 1);
        assert!(
            self.spines.is_multiple_of(self.aggs_per_pod),
            "spines ({}) must be a multiple of aggs_per_pod ({})",
            self.spines,
            self.aggs_per_pod
        );
        let mut b = NetBuilder::new();
        let mut hosts = Vec::with_capacity(self.num_hosts());
        let mut switches = Vec::new();
        let mut links = Vec::new();

        // Spines first so ids are stable regardless of pod count.
        let spines: Vec<NodeId> = (0..self.spines).map(|_| b.add_switch()).collect();
        switches.extend(&spines);
        let spines_per_agg = self.spines / self.aggs_per_pod;

        for _pod in 0..self.pods {
            let tors: Vec<NodeId> = (0..self.tors_per_pod).map(|_| b.add_switch()).collect();
            let aggs: Vec<NodeId> = (0..self.aggs_per_pod).map(|_| b.add_switch()).collect();
            switches.extend(&tors);
            switches.extend(&aggs);
            // Full bipartite ToR <-> Agg inside the pod.
            for &t in &tors {
                for &a in &aggs {
                    b.link(t, a, self.fabric_rate, self.prop);
                    links.push((t, a));
                }
            }
            // Agg j connects to spine group j.
            for (j, &a) in aggs.iter().enumerate() {
                for s in 0..spines_per_agg {
                    let sp = spines[j * spines_per_agg + s];
                    b.link(a, sp, self.fabric_rate, self.prop);
                    links.push((a, sp));
                }
            }
            // Hosts under each ToR.
            for &t in &tors {
                for _ in 0..self.hosts_per_tor {
                    let h = b.add_host();
                    b.link(h, t, self.host_rate, self.prop);
                    hosts.push(h);
                    links.push((h, t));
                }
            }
        }

        // Base RTT: worst case host->ToR->Agg->Spine->Agg->ToR->host =
        // 6 links each way. Store-and-forward adds one MTU serialization
        // per link.
        let mtu = Bytes::new(1000);
        let host_ser = self.host_rate.serialization_delay(mtu);
        let fabric_ser = self.fabric_rate.serialization_delay(mtu);
        let one_way = (self.prop + host_ser) * 2 + (self.prop + fabric_ser) * 4;
        Topology {
            builder: b,
            hosts,
            switches,
            links,
            host_rate: self.host_rate,
            max_hops: 5,
            base_rtt: one_way * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use crate::monitor::MonitorConfig;
    use crate::network::NetConfig;
    use dcsim::{Bytes, Simulation};
    use faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};

    struct FixedRate(BitRate);
    impl CongestionControl for FixedRate {
        fn on_ack(&mut self, _: &AckFeedback) {}
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(self.0)
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    #[test]
    fn star_shape() {
        let t = Topology::paper_star(17);
        assert_eq!(t.hosts.len(), 17);
        assert_eq!(t.switches.len(), 1);
        // ~5 us base RTT, matching the paper's Swift setting for this
        // topology (base target delay 5 us).
        assert!(t.base_rtt >= Nanos::from_micros(4) && t.base_rtt <= Nanos::from_micros(6));
    }

    #[test]
    fn paper_fat_tree_counts() {
        let cfg = FatTreeConfig::paper();
        assert_eq!(cfg.num_hosts(), 320);
        let t = cfg.build();
        assert_eq!(t.hosts.len(), 320);
        // 16 spines + 5 pods x (4 ToR + 4 Agg) = 56 switches.
        assert_eq!(t.switches.len(), 56);
        assert_eq!(t.max_hops, 5);
    }

    #[test]
    fn reduced_fat_tree_counts() {
        let cfg = FatTreeConfig::reduced();
        assert_eq!(cfg.num_hosts(), 32);
        let t = cfg.build();
        assert_eq!(t.hosts.len(), 32);
        assert_eq!(t.switches.len(), 4 + 2 * (2 + 2));
    }

    #[test]
    fn fat_tree_cross_pod_flow_completes() {
        let t = FatTreeConfig::reduced().build();
        let hosts = t.hosts.clone();
        let mut net = t
            .builder
            .build(NetConfig::default(), MonitorConfig::default());
        // First host of pod 0 to last host (pod 1): must cross the spine.
        let id = net.add_flow(
            FlowSpec {
                src: hosts[0],
                dst: *hosts.last().expect("topology has hosts"),
                size: Bytes(100_000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        let ideal = net.ideal_fct(id);
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run();
        assert!(sim.world().all_finished());
        let fct = sim.world().monitor.fcts()[0].fct();
        assert!(fct >= ideal);
        assert!(
            fct.as_u64() < ideal.as_u64() + 1_000,
            "fct {fct} ideal {ideal}"
        );
    }

    #[test]
    fn fat_tree_intra_tor_flow_is_two_hops() {
        let t = FatTreeConfig::reduced().build();
        let hosts = t.hosts.clone();
        let mut net = t
            .builder
            .build(NetConfig::default(), MonitorConfig::default());
        // hosts[0] and hosts[1] share a ToR: path = host->ToR->host.
        let id = net.add_flow(
            FlowSpec {
                src: hosts[0],
                dst: hosts[1],
                size: Bytes(1000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        // 2 links forward: 2*(1000ns + 80ns); ACK back 2*(1000ns + 5ns).
        assert_eq!(net.ideal_fct(id), Nanos(2160 + 2010));
    }

    #[test]
    fn leaf_spine_shape_and_routing() {
        let t = Topology::leaf_spine(
            4,
            2,
            8,
            BitRate::from_gbps(100),
            BitRate::from_gbps(400),
            Nanos::MICRO,
        );
        assert_eq!(t.hosts.len(), 32);
        assert_eq!(t.switches.len(), 6);
        let hosts = t.hosts.clone();
        let mut net = t
            .builder
            .build(NetConfig::default(), MonitorConfig::default());
        // Cross-leaf flow must traverse a spine (3 switch hops).
        let id = net.add_flow(
            FlowSpec {
                src: hosts[0],
                dst: hosts[31],
                size: Bytes(1000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        // host->leaf 80ns + leaf->spine 20ns + spine->leaf 20ns +
        // leaf->host 80ns, plus 4us prop; ACK back 4 hops.
        let ideal = net.ideal_fct(id);
        assert!(ideal > Nanos::from_micros(8), "{ideal}");
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run();
        assert!(sim.world().all_finished());
    }

    #[test]
    fn dumbbell_bottlenecks_at_core() {
        let t = Topology::dumbbell(
            4,
            BitRate::from_gbps(100),
            BitRate::from_gbps(100),
            Nanos::MICRO,
        );
        assert_eq!(t.hosts.len(), 8);
        assert_eq!(t.switches.len(), 2);
    }

    #[test]
    fn fat_tree_paths_are_loop_free_and_short() {
        use crate::ids::FlowId;
        // Walk the pinned ECMP path for many random (src, dst, flow)
        // triples: it must reach the destination within max_hops+1 links
        // and never revisit a node.
        let t = FatTreeConfig::reduced().build();
        let hosts = t.hosts.clone();
        let max_hops = t.max_hops as usize;
        let net = t
            .builder
            .build(NetConfig::default(), MonitorConfig::default());
        let mut rng = dcsim::DetRng::new(17);
        for trial in 0..500 {
            let src = hosts[rng.below(hosts.len() as u64) as usize];
            let dst = hosts[rng.below(hosts.len() as u64) as usize];
            if src == dst {
                continue;
            }
            let flow = FlowId(trial);
            let mut cur = src;
            let mut visited = vec![src];
            let mut hops = 0;
            while cur != dst {
                let port = net.route_port(cur, dst, flow);
                let peer = net.node(cur).ports[port.idx()].peer.0;
                assert!(
                    !visited.contains(&peer),
                    "routing loop: {visited:?} then {peer:?}"
                );
                visited.push(peer);
                cur = peer;
                hops += 1;
                assert!(hops <= max_hops + 1, "path too long: {visited:?}");
            }
        }
    }

    #[test]
    fn fat_tree_ecmp_uses_all_uplinks() {
        use crate::ids::FlowId;
        // From one ToR, flows to another pod must spread across both
        // aggregation uplinks (per-flow ECMP).
        let t = FatTreeConfig::reduced().build();
        let hosts = t.hosts.clone();
        let net = t
            .builder
            .build(NetConfig::default(), MonitorConfig::default());
        let src = hosts[0];
        let dst = *hosts.last().expect("topology has hosts"); // other pod
        let tor = net.node(src).ports[0].peer.0;
        let mut used = std::collections::BTreeSet::new();
        for f in 0..64 {
            used.insert(net.route_port(tor, dst, FlowId(f)));
        }
        assert!(
            used.len() >= 2,
            "ECMP pinned every flow to one uplink: {used:?}"
        );
    }

    #[test]
    fn fat_tree_link_list_is_complete() {
        let t = FatTreeConfig::reduced().build();
        // Per pod: 2 ToR x 2 Agg = 4 ToR-Agg links, 2 Agg x 2 spines = 4
        // Agg-Spine links, 16 host links; x 2 pods.
        assert_eq!(t.links.len(), 2 * (4 + 4 + 16));
        let fabric = t
            .links
            .iter()
            .filter(|(a, b)| t.switches.contains(a) && t.switches.contains(b))
            .count();
        assert_eq!(fabric, 16);
        // Host links are exactly the remainder, one per host.
        assert_eq!(t.links.len() - fabric, t.hosts.len());
    }

    #[test]
    #[should_panic(expected = "multiple of aggs_per_pod")]
    fn bad_spine_count_rejected() {
        FatTreeConfig {
            spines: 3,
            ..FatTreeConfig::reduced()
        }
        .build();
    }
}
