//! Egress ports: the transmit side of one link direction.
//!
//! A port owns the FIFO packet queue for its link direction, the cumulative
//! transmit counter used by INT, the optional RED/ECN marking configuration,
//! and picosecond-exact serialization accounting.

use std::collections::VecDeque;

use dcsim::{BitRate, Bytes, DetRng, Nanos};

use crate::fault::LossState;
use crate::ids::{NodeId, PortNo};
use crate::packet::{PacketHandle, PacketKind, PacketPool};
use crate::pfc::PauseCounter;

/// RED (Random Early Detection) ECN-marking parameters, as used by DCQCN.
///
/// A packet is marked with probability 0 below `kmin` bytes of queue,
/// probability `pmax` at `kmax`, linearly interpolated in between, and
/// probability 1 above `kmax`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// Queue depth below which nothing is marked.
    pub kmin: Bytes,
    /// Queue depth at which marking probability reaches `pmax`.
    pub kmax: Bytes,
    /// Marking probability at `kmax` (DCQCN suggests small values; the
    /// paper quotes 1% as the moderate-congestion maximum).
    pub pmax: f64,
}

impl RedConfig {
    /// DCQCN defaults scaled for 100 Gbps links (the HPCC artifact uses
    /// kmin=100KB, kmax=400KB, pmax=0.05 at 100 Gbps).
    pub fn dcqcn_100g() -> Self {
        RedConfig {
            kmin: Bytes::from_kb(100),
            kmax: Bytes::from_kb(400),
            pmax: 0.05,
        }
    }

    /// Marking probability at queue depth `q`.
    pub fn mark_probability(&self, q: Bytes) -> f64 {
        if q <= self.kmin {
            0.0
        } else if q >= self.kmax {
            1.0
        } else {
            self.pmax * (q.as_u64() - self.kmin.as_u64()) as f64
                / (self.kmax.as_u64() - self.kmin.as_u64()) as f64
        }
    }
}

/// One queued frame: the pool handle plus the fields the port needs on
/// the dequeue side, cached at enqueue so transmission accounting never
/// touches the pool.
#[derive(Debug, Clone, Copy)]
struct QueuedFrame {
    handle: PacketHandle,
    wire_size: u32,
    kind: PacketKind,
}

/// The transmit side of one link direction.
#[derive(Debug)]
pub struct Port {
    /// The node and port this port's wire is attached to.
    pub peer: (NodeId, PortNo),
    /// Line rate of the link.
    pub rate: BitRate,
    /// Propagation delay of the link.
    pub prop: Nanos,
    /// Whether this port stamps INT telemetry on data packets at egress.
    pub stamp_int: bool,
    /// RED marking configuration (switch egress ports under DCQCN).
    pub red: Option<RedConfig>,
    /// Finite buffer for *data* packets, in bytes (`None` = deep-buffer
    /// lossless abstraction). Control frames (ACK/CNP/NACK) always use
    /// reserved headroom, as real RoCE switches prioritize them.
    pub buffer_limit: Option<u64>,
    /// Whether a packet is currently being serialized.
    pub busy: bool,
    /// PFC pause state: a paused port finishes the in-flight packet but
    /// does not start the next one. Reference-counted because several
    /// congested queues can pause the same port.
    pub pause: PauseCounter,
    /// PFC hysteresis: whether this queue is in the over-XOFF regime
    /// (set crossing above XOFF, cleared crossing below XON).
    pub pfc_over: bool,
    /// Fault injection: whether the link direction is up. Down ports
    /// drop every enqueue attempt and hold no backlog.
    pub link_up: bool,
    /// Fault injection: when this direction last went down (frames that
    /// departed before the outage but were still propagating are lost).
    pub last_down: Nanos,
    /// Fault injection: wire loss channel for this direction, if any.
    pub loss: Option<LossState>,
    queue: VecDeque<QueuedFrame>,
    qbytes: u64,
    max_qbytes: u64,
    tx_bytes: u64,
    tx_packets: u64,
    dropped_packets: u64,
    residue_ps: u64,
    /// Bytes ever offered to this port (accepted + dropped): the left-hand
    /// side of the sim-audit conservation law
    /// `enq_bytes == tx_bytes + dropped_bytes + qbytes`.
    enq_bytes: u64,
    /// Packets ever offered to this port (accepted + dropped).
    enq_packets: u64,
    /// Bytes tail-dropped by the finite buffer.
    dropped_bytes: u64,
    /// Packets ECN-marked by RED at this port.
    ecn_marked: u64,
    /// Frames destroyed on the wire by the loss model (fault injection).
    wire_lost: u64,
}

impl Port {
    /// A new idle port.
    pub fn new(peer: (NodeId, PortNo), rate: BitRate, prop: Nanos) -> Self {
        assert!(rate.as_u64() > 0, "links must have a positive rate");
        Port {
            peer,
            rate,
            prop,
            stamp_int: true,
            red: None,
            buffer_limit: None,
            busy: false,
            pause: PauseCounter::default(),
            pfc_over: false,
            link_up: true,
            last_down: Nanos::ZERO,
            loss: None,
            queue: VecDeque::new(),
            qbytes: 0,
            max_qbytes: 0,
            tx_bytes: 0,
            tx_packets: 0,
            dropped_packets: 0,
            residue_ps: 0,
            enq_bytes: 0,
            enq_packets: 0,
            dropped_bytes: 0,
            ecn_marked: 0,
            wire_lost: 0,
        }
    }

    /// sim-audit: every byte offered to the port must be transmitted,
    /// dropped, or still resident in the queue — and RED can only have
    /// marked packets the port actually accepted.
    fn audit_conservation(&self) {
        dcsim::audit_assert_eq!(
            self.enq_bytes,
            self.tx_bytes + self.dropped_bytes + self.qbytes,
            "port byte conservation: enqueued != transmitted + dropped + resident"
        );
        dcsim::audit_assert_eq!(
            self.enq_packets as usize,
            self.tx_packets as usize + self.dropped_packets as usize + self.queue.len(),
            "port packet conservation: enqueued != transmitted + dropped + resident"
        );
        dcsim::audit_assert!(
            self.ecn_marked <= self.enq_packets - self.dropped_packets,
            "ECN accounting: marked {} of only {} accepted packets",
            self.ecn_marked,
            self.enq_packets - self.dropped_packets
        );
    }

    /// Test hook: corrupt the byte ledger so audit tests can prove the
    /// conservation check fires. Compiled only with `sim-audit`.
    #[cfg(feature = "sim-audit")]
    pub fn audit_corrupt_qbytes(&mut self, delta: u64) {
        self.qbytes += delta;
    }

    /// Current queue backlog in bytes (excluding the packet on the wire).
    #[inline]
    pub fn qbytes(&self) -> u64 {
        self.qbytes
    }

    /// High-water mark of the backlog over the whole run.
    #[inline]
    pub fn max_qbytes(&self) -> u64 {
        self.max_qbytes
    }

    /// Cumulative bytes ever transmitted (the INT `txBytes` counter).
    #[inline]
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Cumulative packets ever transmitted.
    #[inline]
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Number of queued packets.
    #[inline]
    pub fn qlen_packets(&self) -> usize {
        self.queue.len()
    }

    /// Append a packet to the queue, RED-marking data packets if
    /// configured and tail-dropping data packets that exceed a finite
    /// buffer. Returns `Ok(true)` if the port was idle (the caller should
    /// start transmission), `Ok(false)` if queued behind others, and
    /// `Err(handle)` if the packet was dropped (caller frees the slot).
    pub fn enqueue(
        &mut self,
        h: PacketHandle,
        pool: &mut PacketPool,
        red_rng: &mut DetRng,
    ) -> Result<bool, PacketHandle> {
        let (wire_size, kind) = {
            let pkt = pool.get(h);
            (pkt.wire_size, pkt.kind)
        };
        self.enq_bytes += wire_size as u64;
        self.enq_packets += 1;
        if !self.link_up {
            // A downed wire loses everything, control frames included.
            self.dropped_packets += 1;
            self.dropped_bytes += wire_size as u64;
            self.audit_conservation();
            return Err(h);
        }
        if kind == PacketKind::Data {
            if let Some(limit) = self.buffer_limit {
                if self.qbytes + wire_size as u64 > limit {
                    self.dropped_packets += 1;
                    self.dropped_bytes += wire_size as u64;
                    self.audit_conservation();
                    return Err(h);
                }
            }
            if let Some(red) = self.red {
                let p = red.mark_probability(Bytes(self.qbytes));
                if p > 0.0 && red_rng.chance(p) {
                    pool.get_mut(h).ecn = true;
                    self.ecn_marked += 1;
                }
            }
        }
        self.qbytes += wire_size as u64;
        self.max_qbytes = self.max_qbytes.max(self.qbytes);
        if self.queue.len() == self.queue.capacity() {
            // Queue depth is bounded by the buffer limit; grow toward that
            // bound in chunks so a filling queue reallocates rarely.
            self.queue.reserve(32);
        }
        self.queue.push_back(QueuedFrame {
            handle: h,
            wire_size,
            kind,
        });
        self.audit_conservation();
        Ok(!self.busy && !self.is_paused())
    }

    /// Number of data packets tail-dropped by the finite buffer.
    #[inline]
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Cumulative bytes ever offered to this port (accepted + dropped).
    #[inline]
    pub fn enq_bytes(&self) -> u64 {
        self.enq_bytes
    }

    /// Cumulative packets ever offered to this port (accepted + dropped).
    #[inline]
    pub fn enq_packets(&self) -> u64 {
        self.enq_packets
    }

    /// Cumulative bytes tail-dropped by the finite buffer.
    #[inline]
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Cumulative packets ECN-marked by RED at this port.
    #[inline]
    pub fn ecn_marked(&self) -> u64 {
        self.ecn_marked
    }

    /// Remove the head-of-line packet and account for its transmission.
    /// Returns the packet's handle and its serialization delay (computed
    /// from the wire size cached at enqueue — no pool access needed).
    pub fn begin_tx(&mut self) -> Option<(PacketHandle, Nanos)> {
        let frame = self.queue.pop_front()?;
        self.qbytes -= frame.wire_size as u64;
        self.tx_bytes += frame.wire_size as u64;
        self.tx_packets += 1;
        self.audit_conservation();
        let delay = self.ser_delay(frame.wire_size);
        Some((frame.handle, delay))
    }

    /// The kind of the head-of-line frame, if any (the batched-drain path
    /// uses this to stop at frames that need per-frame egress work).
    #[inline]
    pub fn head_kind(&self) -> Option<PacketKind> {
        self.queue.front().map(|f| f.kind)
    }

    /// Picosecond-exact serialization delay with residue carrying, so that
    /// long-run throughput matches the line rate to within one ps per
    /// packet even when `bytes * 8e9 / rate` is not a whole nanosecond.
    fn ser_delay(&mut self, bytes: u32) -> Nanos {
        let ps = (bytes as u128) * 8_000_000_000_000u128 / (self.rate.as_u64() as u128);
        let total = (ps as u64).saturating_add(self.residue_ps);
        self.residue_ps = total % 1_000;
        Nanos(total / 1_000)
    }

    /// Whether the queue has packets waiting.
    #[inline]
    pub fn has_backlog(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Fault injection: take this link direction down at `now`, flushing
    /// the queue into the drop counters (the byte-conservation ledger
    /// treats flushed frames exactly like tail drops). Returns the
    /// flushed handles for the caller to free.
    pub fn take_down(&mut self, now: Nanos) -> Vec<PacketHandle> {
        self.link_up = false;
        self.last_down = now;
        let mut flushed = Vec::with_capacity(self.queue.len());
        while let Some(frame) = self.queue.pop_front() {
            self.qbytes -= frame.wire_size as u64;
            self.dropped_packets += 1;
            self.dropped_bytes += frame.wire_size as u64;
            flushed.push(frame.handle);
        }
        self.audit_conservation();
        flushed
    }

    /// Fault injection: bring this link direction back up.
    pub fn bring_up(&mut self) {
        self.link_up = true;
    }

    /// Fault injection: count one frame that the loss model destroyed
    /// mid-transmission. `begin_tx` already moved its bytes into the
    /// transmitted column, which is where a frame that fully serialized
    /// belongs; this counter just makes wire losses observable.
    pub fn count_wire_loss(&mut self) {
        self.wire_lost += 1;
    }

    /// Frames destroyed on the wire by the loss model.
    #[inline]
    pub fn wire_lost(&self) -> u64 {
        self.wire_lost
    }

    /// Whether PFC currently forbids starting a transmission.
    #[inline]
    pub fn is_paused(&self) -> bool {
        self.pause.is_paused()
    }

    /// Publish this port's cumulative counters into the metrics registry
    /// under `port.<node>.<port>.*` keys. Ports that never saw traffic
    /// stay out of the registry to keep large-topology output small.
    pub fn publish_metrics(&self, node: u32, port: u16, reg: &mut simtrace::MetricsRegistry) {
        if self.enq_packets == 0 {
            return;
        }
        let prefix = format!("port.{node}.{port}");
        reg.counter_set(&format!("{prefix}.tx_bytes"), self.tx_bytes);
        reg.counter_set(&format!("{prefix}.tx_packets"), self.tx_packets);
        reg.counter_set(&format!("{prefix}.enq_bytes"), self.enq_bytes);
        reg.counter_set(&format!("{prefix}.enq_packets"), self.enq_packets);
        reg.counter_set(&format!("{prefix}.max_qbytes"), self.max_qbytes);
        reg.counter_set(&format!("{prefix}.dropped_packets"), self.dropped_packets);
        reg.counter_set(&format!("{prefix}.ecn_marked"), self.ecn_marked);
        if self.wire_lost > 0 {
            reg.counter_set(&format!("{prefix}.wire_lost"), self.wire_lost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;

    fn data_pkt(pool: &mut PacketPool, size: u32) -> PacketHandle {
        let h = pool.alloc();
        let p = pool.get_mut(h);
        p.kind = PacketKind::Data;
        p.flow = FlowId(0);
        p.wire_size = size;
        p.payload = size;
        h
    }

    fn ack_pkt(pool: &mut PacketPool, size: u32) -> PacketHandle {
        let h = pool.alloc();
        let p = pool.get_mut(h);
        p.kind = PacketKind::Ack;
        p.wire_size = size;
        h
    }

    fn port(rate_gbps: u64) -> Port {
        Port::new(
            (NodeId(1), PortNo(0)),
            BitRate::from_gbps(rate_gbps),
            Nanos::MICRO,
        )
    }

    #[test]
    fn enqueue_dequeue_accounting() {
        let mut pool = PacketPool::new();
        let mut rng = DetRng::new(1);
        let mut p = port(100);
        let h1 = data_pkt(&mut pool, 1000);
        assert!(p
            .enqueue(h1, &mut pool, &mut rng)
            .expect("no buffer limit set")); // idle → start
        p.busy = true;
        let h2 = data_pkt(&mut pool, 500);
        assert!(!p
            .enqueue(h2, &mut pool, &mut rng)
            .expect("no buffer limit set")); // busy
        assert_eq!(p.qbytes(), 1500);
        assert_eq!(p.max_qbytes(), 1500);

        let (pkt, delay) = p.begin_tx().expect("queue has a packet");
        assert_eq!(pool.get(pkt).wire_size, 1000);
        assert_eq!(delay, Nanos(80)); // 1000B @ 100Gbps
        assert_eq!(p.qbytes(), 500);
        assert_eq!(p.tx_bytes(), 1000);
        assert_eq!(p.tx_packets(), 1);
        assert_eq!(p.max_qbytes(), 1500); // high-water sticks
    }

    #[test]
    fn ser_delay_residue_accumulates() {
        // 60B at 100Gbps = 4.8 ns. Five of them must total exactly 24 ns.
        let mut pool = PacketPool::new();
        let mut rng = DetRng::new(1);
        let mut p = port(100);
        let mut total = Nanos::ZERO;
        for _ in 0..5 {
            let h = data_pkt(&mut pool, 60);
            p.enqueue(h, &mut pool, &mut rng)
                .expect("no buffer limit set");
            let (_, d) = p.begin_tx().expect("queue has a packet");
            total += d;
        }
        assert_eq!(total, Nanos(24));
    }

    #[test]
    fn red_marks_above_kmax_always() {
        let mut pool = PacketPool::new();
        let mut rng = DetRng::new(1);
        let mut p = port(100);
        p.red = Some(RedConfig {
            kmin: Bytes(0),
            kmax: Bytes(1),
            pmax: 1.0,
        });
        // First packet sees empty queue (0 <= kmin=0 → no mark).
        let h1 = data_pkt(&mut pool, 1000);
        p.enqueue(h1, &mut pool, &mut rng)
            .expect("no buffer limit set");
        p.busy = true;
        // Second packet sees 1000 >= kmax → always marked.
        let h2 = data_pkt(&mut pool, 1000);
        p.enqueue(h2, &mut pool, &mut rng)
            .expect("no buffer limit set");
        let (first, _) = p.begin_tx().expect("queue has a packet");
        let (second, _) = p.begin_tx().expect("queue has a packet");
        assert!(!pool.get(first).ecn);
        assert!(pool.get(second).ecn);
    }

    #[test]
    fn red_never_marks_acks() {
        let mut pool = PacketPool::new();
        let mut rng = DetRng::new(1);
        let mut p = port(100);
        p.red = Some(RedConfig {
            kmin: Bytes(0),
            kmax: Bytes(1),
            pmax: 1.0,
        });
        let ack = ack_pkt(&mut pool, 60);
        let data = data_pkt(&mut pool, 1000);
        p.enqueue(data, &mut pool, &mut rng)
            .expect("no buffer limit set"); // fill queue
        p.busy = true;
        p.enqueue(ack, &mut pool, &mut rng)
            .expect("control frames never drop");
        p.begin_tx().expect("queue has a packet");
        let (ack_out, _) = p.begin_tx().expect("queue has a packet");
        assert!(!pool.get(ack_out).ecn);
    }

    #[test]
    fn red_probability_is_linear() {
        let red = RedConfig {
            kmin: Bytes(100),
            kmax: Bytes(300),
            pmax: 0.1,
        };
        assert_eq!(red.mark_probability(Bytes(50)), 0.0);
        assert_eq!(red.mark_probability(Bytes(100)), 0.0);
        assert!((red.mark_probability(Bytes(200)) - 0.05).abs() < 1e-12);
        assert_eq!(red.mark_probability(Bytes(300)), 1.0);
        assert_eq!(red.mark_probability(Bytes(400)), 1.0);
    }

    #[test]
    fn paused_port_reports_no_start() {
        let mut pool = PacketPool::new();
        let mut rng = DetRng::new(1);
        let mut p = port(100);
        p.pause.apply(true);
        let h = data_pkt(&mut pool, 1000);
        assert!(!p
            .enqueue(h, &mut pool, &mut rng)
            .expect("no buffer limit set"));
        assert!(p.has_backlog());
    }

    #[test]
    fn finite_buffer_tail_drops_data_only() {
        let mut pool = PacketPool::new();
        let mut rng = DetRng::new(1);
        let mut p = port(100);
        p.buffer_limit = Some(1_500);
        p.busy = true;
        let h1 = data_pkt(&mut pool, 1000);
        assert!(p.enqueue(h1, &mut pool, &mut rng).is_ok());
        // Second data packet exceeds the 1.5 KB budget: dropped.
        let h2 = data_pkt(&mut pool, 1000);
        let r = p.enqueue(h2, &mut pool, &mut rng);
        assert!(r.is_err());
        assert_eq!(p.dropped_packets(), 1);
        assert_eq!(p.qbytes(), 1000);
        // Control frames ride reserved headroom: never dropped.
        let ack = ack_pkt(&mut pool, 60);
        assert!(p.enqueue(ack, &mut pool, &mut rng).is_ok());
        assert_eq!(p.dropped_packets(), 1);
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_link_rejected() {
        Port::new((NodeId(0), PortNo(0)), BitRate::ZERO, Nanos::ZERO);
    }

    #[test]
    fn take_down_flushes_into_drop_counters() {
        let mut pool = PacketPool::new();
        let mut rng = DetRng::new(1);
        let mut p = port(100);
        p.busy = true;
        let h1 = data_pkt(&mut pool, 1000);
        p.enqueue(h1, &mut pool, &mut rng)
            .expect("no buffer limit set");
        let h2 = data_pkt(&mut pool, 500);
        p.enqueue(h2, &mut pool, &mut rng)
            .expect("no buffer limit set");
        let flushed = p.take_down(Nanos(77));
        assert_eq!(flushed, vec![h1, h2]);
        assert!(!p.link_up);
        assert_eq!(p.last_down, Nanos(77));
        assert_eq!(p.qbytes(), 0);
        assert_eq!(p.dropped_packets(), 2);
        assert_eq!(p.dropped_bytes(), 1500);
        // A down wire refuses everything, control frames included.
        let ack = ack_pkt(&mut pool, 60);
        assert!(p.enqueue(ack, &mut pool, &mut rng).is_err());
        assert_eq!(p.dropped_packets(), 3);
        p.bring_up();
        assert!(p.link_up);
        let h3 = data_pkt(&mut pool, 100);
        assert!(p.enqueue(h3, &mut pool, &mut rng).is_ok());
    }
}
