//! The network world: arenas of nodes, ports, and flows, plus the event
//! handlers that move packets between them.

use dcsim::{Bytes, DetRng, Nanos, Scheduler, World, RED_STREAM};
use faircc::{AckFeedback, CongestionControl, IntHop};
use simtrace::{Subsystem, TraceEvent, Tracer};

use crate::fault::{FaultPlan, FaultStats, LossState, RtoBackoff, FAULT_STREAM};
use crate::flow::{Flow, FlowSpec};
use crate::ids::{FlowId, NodeId, PortNo};
use crate::monitor::{FctRecord, Monitor, MonitorConfig};
use crate::packet::{PacketHandle, PacketKind, PacketPool};
use crate::pfc::PfcConfig;
use crate::port::{Port, RedConfig};
use crate::routing::{filter_adjacency, Adjacency, RoutingTable};

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host with exactly one NIC port.
    Host,
    /// A switch with one port per attached link.
    Switch,
}

/// One node in the arena.
pub struct Node {
    /// Host or switch.
    pub kind: NodeKind,
    /// Egress ports, one per attached link direction.
    pub ports: Vec<Port>,
}

/// Global simulator parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Maximum data-packet payload (the paper's MTU: 1000 bytes).
    pub mtu: u32,
    /// Wire size of ACK and CNP frames.
    pub ack_wire_size: u32,
    /// Minimum spacing between CNPs per flow (DCQCN: 50 µs).
    pub cnp_interval: Nanos,
    /// Scenario seed (drives RED marking and any other randomness).
    pub seed: u64,
    /// Optional PFC pause model.
    pub pfc: Option<PfcConfig>,
    /// Finite per-port data buffer on *switch* egress ports (`None` =
    /// deep-buffer lossless abstraction). When set, overflowing data
    /// packets are tail-dropped and flows recover with RoCE-style
    /// go-back-N (receiver NACKs, sender rewinds) plus a retransmission
    /// timeout for trailing losses.
    pub switch_buffer: Option<dcsim::Bytes>,
    /// *Base* retransmission timeout: if no cumulative-ACK progress for
    /// this long while data is outstanding, the sender rewinds to the
    /// last acknowledged byte. Armed in lossy (finite-buffer) mode and
    /// whenever a fault plan is active.
    ///
    /// Deprecated semantics note: this used to be the *fixed* timeout;
    /// it is now the base of the exponential backoff in
    /// [`NetConfig::rto_backoff`]. Existing scenarios build unchanged —
    /// set `rto_backoff: RtoBackoff::fixed()` to restore the old
    /// constant-timeout behaviour exactly.
    pub rto: Nanos,
    /// Exponential RTO backoff policy applied on top of [`rto`]
    /// (multiplier, cap, deterministic jitter).
    ///
    /// [`rto`]: NetConfig::rto
    pub rto_backoff: RtoBackoff,
    /// Deterministic fault-injection plan. The default (empty) plan is
    /// zero-cost: no RNG draws, no extra events, no per-packet work.
    pub faults: FaultPlan,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            mtu: 1000,
            ack_wire_size: 60,
            cnp_interval: Nanos::from_micros(50),
            seed: 1,
            pfc: None,
            switch_buffer: None,
            rto: Nanos::from_micros(100),
            rto_backoff: RtoBackoff::default(),
            faults: FaultPlan::none(),
        }
    }
}

/// Simulation events (see crate docs for the lifecycle).
pub enum Event {
    /// A flow's start time arrived.
    FlowStart(FlowId),
    /// A flow's pacing timer fired.
    FlowTrySend(FlowId),
    /// A port finished serializing its current packet.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortNo,
    },
    /// A packet's last bit reached `node`.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// Handle to the packet in the network's slab pool — 8 inline
        /// bytes, so moving this event never chases (or frees) a heap
        /// pointer.
        pkt: PacketHandle,
    },
    /// A congestion-control timer fired for a flow.
    CcTimer(FlowId),
    /// PFC pause/resume applied to a port (after propagation).
    PfcSet {
        /// Node owning the port.
        node: NodeId,
        /// The port to (un)pause.
        port: PortNo,
        /// New pause state.
        paused: bool,
    },
    /// Retransmission-timeout check for a flow (lossy mode only).
    Rto(FlowId),
    /// Fault injection: one link direction changes up/down state.
    LinkSet {
        /// Node owning the affected egress port.
        node: NodeId,
        /// The affected port.
        port: PortNo,
        /// New link state.
        up: bool,
    },
    /// Periodic measurement tick.
    Sample,
}

/// Builder for a [`Network`].
pub struct NetBuilder {
    kinds: Vec<NodeKind>,
    ports: Vec<Vec<Port>>,
    red_on_switches: Option<RedConfig>,
}

impl Default for NetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetBuilder {
    /// An empty topology.
    pub fn new() -> Self {
        NetBuilder {
            kinds: Vec::new(),
            ports: Vec::new(),
            red_on_switches: None,
        }
    }

    /// Add an end host. Hosts must end up with exactly one link.
    pub fn add_host(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Host);
        self.ports.push(Vec::new());
        NodeId(self.kinds.len() as u32 - 1)
    }

    /// Add a switch.
    pub fn add_switch(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Switch);
        self.ports.push(Vec::new());
        NodeId(self.kinds.len() as u32 - 1)
    }

    /// Connect two nodes with a symmetric full-duplex link.
    pub fn link(&mut self, a: NodeId, b: NodeId, rate: dcsim::BitRate, prop: Nanos) {
        assert!(a != b, "self-links are not allowed");
        let pa = PortNo(self.ports[a.idx()].len() as u16);
        let pb = PortNo(self.ports[b.idx()].len() as u16);
        self.ports[a.idx()].push(Port::new((b, pb), rate, prop));
        self.ports[b.idx()].push(Port::new((a, pa), rate, prop));
    }

    /// Enable RED/ECN marking on every switch egress port (DCQCN runs).
    pub fn red_on_switches(&mut self, red: RedConfig) {
        self.red_on_switches = Some(red);
    }

    /// Finalize: compute routing and produce the network.
    pub fn build(mut self, cfg: NetConfig, monitor: MonitorConfig) -> Network {
        if let Some(pfc) = &cfg.pfc {
            pfc.validate();
        }
        let mut hosts = Vec::new();
        for (i, k) in self.kinds.iter().enumerate() {
            match k {
                NodeKind::Host => {
                    assert_eq!(
                        self.ports[i].len(),
                        1,
                        "host {i} must have exactly one link, has {}",
                        self.ports[i].len()
                    );
                    hosts.push(NodeId(i as u32));
                }
                NodeKind::Switch => {
                    assert!(!self.ports[i].is_empty(), "switch {i} has no links");
                    for p in &mut self.ports[i] {
                        if let Some(red) = self.red_on_switches {
                            p.red = Some(red);
                        }
                        p.buffer_limit = cfg.switch_buffer.map(|b| b.as_u64());
                    }
                }
            }
        }
        let adj: Adjacency = self
            .ports
            .iter()
            .map(|ps| {
                ps.iter()
                    .enumerate()
                    .map(|(i, p)| (PortNo(i as u16), p.peer.0))
                    .collect()
            })
            .collect();
        let routes = RoutingTable::compute(&adj, &hosts);
        let rng = DetRng::new(cfg.seed);
        let red_rng = rng.stream(RED_STREAM);
        let fault_rng = rng.stream(FAULT_STREAM);
        let faults_active = !cfg.faults.is_empty();
        // Attach loss models to both directions of each faulted link, and
        // validate that every fault references a real link.
        for lf in &cfg.faults.links {
            for (x, y) in [(lf.a, lf.b), (lf.b, lf.a)] {
                let Some(i) = self.ports[x.idx()].iter().position(|p| p.peer.0 == y) else {
                    panic!(
                        "fault plan references nonexistent link {:?}-{:?}",
                        lf.a, lf.b
                    );
                };
                if let Some(model) = lf.loss {
                    self.ports[x.idx()][i].loss = Some(LossState::new(model));
                }
            }
        }
        // Keep a pristine copy of the routes while faults may rewrite
        // the live table: ideal FCTs must not move when links flap.
        let routes_full = faults_active.then(|| routes.clone());
        let nodes = self
            .kinds
            .into_iter()
            .zip(self.ports)
            .map(|(kind, ports)| Node { kind, ports })
            .collect();
        Network {
            cfg,
            nodes,
            flows: Vec::new(),
            routes,
            routes_full,
            adjacency: adj,
            monitor: Monitor::new(monitor),
            pool: PacketPool::new(),
            red_rng,
            fault_rng,
            faults_active,
            fault_stats: FaultStats::default(),
            hosts,
            dropped_data: 0,
            tracer: Tracer::off(),
        }
    }
}

/// The complete network state: implements [`dcsim::World`].
pub struct Network {
    /// Global parameters.
    pub cfg: NetConfig,
    nodes: Vec<Node>,
    flows: Vec<Flow>,
    routes: RoutingTable,
    /// Pristine routes over the no-faults topology (`None` when no fault
    /// plan is active): the `ideal_fct` denominator view, while `routes`
    /// tracks live link state.
    routes_full: Option<RoutingTable>,
    adjacency: Adjacency,
    /// Measurement collector.
    pub monitor: Monitor,
    pool: PacketPool,
    red_rng: DetRng,
    /// Dedicated fault-injection RNG stream — loss draws and RTO jitter
    /// never touch the traffic RNG streams.
    fault_rng: DetRng,
    faults_active: bool,
    fault_stats: FaultStats,
    hosts: Vec<NodeId>,
    dropped_data: u64,
    tracer: Tracer,
}

impl Network {
    /// Register a flow; it starts at `spec.start` once [`prime`]d.
    ///
    /// [`prime`]: Network::prime
    pub fn add_flow(&mut self, spec: FlowSpec, cc: Box<dyn CongestionControl>) -> FlowId {
        assert_eq!(
            self.nodes[spec.src.idx()].kind,
            NodeKind::Host,
            "flow source must be a host"
        );
        assert_eq!(
            self.nodes[spec.dst.idx()].kind,
            NodeKind::Host,
            "flow destination must be a host"
        );
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(Flow::new(id, spec, cc));
        id
    }

    /// Push the initial events (flow starts, first sample tick) onto the
    /// queue (any [`Scheduler`] implementation). Call once after all flows
    /// are added, before running.
    pub fn prime(&self, q: &mut impl Scheduler<Event>) {
        for f in &self.flows {
            q.push(f.spec.start, Event::FlowStart(f.id));
        }
        // Fault plan: schedule every link-state transition, for both
        // directions of the link (a flap cuts the full-duplex link whole).
        for lf in &self.cfg.faults.links {
            if let Some(flap) = lf.flap {
                for (t, up) in flap.transitions() {
                    for (x, y) in [(lf.a, lf.b), (lf.b, lf.a)] {
                        if let Some((node, port)) = self.port_towards(x, y) {
                            q.push(t, Event::LinkSet { node, port, up });
                        }
                    }
                }
            }
        }
        if let Some(iv) = self.monitor.cfg.sample_interval {
            q.push(iv, Event::Sample);
        }
    }

    /// All hosts, in creation order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Immutable flow access.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.idx()]
    }

    /// Number of flows registered.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of flows that have completed.
    pub fn finished_count(&self) -> usize {
        self.monitor.fcts.len()
    }

    /// Whether every registered flow has completed.
    pub fn all_finished(&self) -> bool {
        self.finished_count() == self.flows.len()
    }

    /// A node's port table (for instrumentation).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// The ECMP-pinned egress port from `node` toward `dst` for `flow`
    /// (exposed for route validation and instrumentation).
    pub fn route_port(&self, node: NodeId, dst: NodeId, flow: FlowId) -> PortNo {
        self.routes.pick(node, dst, flow)
    }

    /// Iterate over all nodes (for the stats module).
    pub fn nodes_iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Total data packets tail-dropped network-wide (0 in lossless mode).
    /// Fault-injection drops are counted separately in [`fault_stats`].
    ///
    /// [`fault_stats`]: Network::fault_stats
    pub fn dropped_data_packets(&self) -> u64 {
        self.dropped_data
    }

    /// Fault-injection counters (wire losses, link-down drops, reroutes,
    /// RTO rewinds). All zero when no fault plan is active.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Progress signature for the stall watchdog: `(total acked bytes,
    /// finished flows, flows started by now)`. A signature unchanged over
    /// a full watchdog horizon while started flows remain unfinished
    /// means the run is stalled.
    pub fn progress_signature(&self, now: Nanos) -> (u64, u64, u64) {
        let acked: u64 = self.flows.iter().map(|f| f.acked).sum();
        let started = self.flows.iter().filter(|f| f.spec.start <= now).count() as u64;
        (acked, self.monitor.fcts.len() as u64, started)
    }

    /// Flows started by `now` that have not finished — the suspects a
    /// stall watchdog reports.
    pub fn unfinished_started(&self, now: Nanos) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|f| f.spec.start <= now && f.finished.is_none())
            .map(|f| f.id)
            .collect()
    }

    /// Install a tracer (replacing the default disabled one). Call before
    /// running; the tracer observes every subsequent event.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The active tracer (for reading events/metrics in place).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Remove and return the tracer (for export after a run), leaving a
    /// disabled one behind.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Publish end-of-run counters and histograms from every subsystem
    /// into the tracer's metrics registry: per-port traffic counters, the
    /// monitor's FCT histogram, and each flow's congestion-control state.
    /// No-op unless the tracer is at counters level or above.
    pub fn publish_metrics(&mut self) {
        if !self.tracer.counters_enabled() {
            return;
        }
        let reg = self.tracer.metrics_mut();
        reg.counter_set("net.dropped_data_packets", self.dropped_data);
        reg.counter_set("net.flows", self.flows.len() as u64);
        reg.counter_set("net.flows_finished", self.monitor.fcts.len() as u64);
        let (pool_slots, pool_recycled) = self.pool.stats();
        reg.counter_set("net.pool.slots", pool_slots);
        reg.counter_set("net.pool.recycled", pool_recycled);
        reg.counter_set("net.pool.live_hwm", self.pool.live_hwm());
        if self.faults_active {
            reg.counter_set("net.fault.wire_drops", self.fault_stats.wire_drops);
            reg.counter_set(
                "net.fault.link_down_drops",
                self.fault_stats.link_down_drops,
            );
            reg.counter_set("net.fault.reroutes", self.fault_stats.reroutes);
            reg.counter_set("net.fault.rto_fires", self.fault_stats.rto_fires);
            let mut key = String::with_capacity(32);
            for f in &self.flows {
                if f.rto_count > 0 {
                    key.clear();
                    use std::fmt::Write as _;
                    let _ = write!(key, "flow.{}.rto_count", f.id.0);
                    reg.counter_set(&key, f.rto_count);
                }
            }
        }
        for (ni, n) in self.nodes.iter().enumerate() {
            for (pi, p) in n.ports.iter().enumerate() {
                p.publish_metrics(ni as u32, pi as u16, reg);
            }
        }
        self.monitor.publish_metrics(reg);
        for f in &self.flows {
            f.cc.publish_metrics(reg);
        }
    }

    /// Find the egress port on `a` whose link leads to `b`.
    pub fn port_towards(&self, a: NodeId, b: NodeId) -> Option<(NodeId, PortNo)> {
        self.nodes[a.idx()]
            .ports
            .iter()
            .position(|p| p.peer.0 == b)
            .map(|i| (a, PortNo(i as u16)))
    }

    /// The theoretical minimum FCT for a flow on an idle network:
    /// store-and-forward pipeline of its packets along its (ECMP-pinned)
    /// path, plus the return of the final ACK. This is the denominator of
    /// the paper's *FCT slowdown*.
    pub fn ideal_fct(&self, id: FlowId) -> Nanos {
        let f = &self.flows[id.idx()];
        let (src, dst) = (f.spec.src, f.spec.dst);
        // Walk the pinned path — over the pristine (no-faults) routes:
        // the slowdown denominator must not move when links flap.
        let routes = self.routes_full.as_ref().unwrap_or(&self.routes);
        // Fabric diameter is tiny (leaf-spine paths are <= 4 hops), so one
        // exact-size reservation covers every topology we build.
        let mut path: Vec<(dcsim::BitRate, Nanos)> = Vec::with_capacity(8);
        let mut cur = src;
        while cur != dst {
            let port = routes.pick(cur, dst, id);
            let p = &self.nodes[cur.idx()].ports[port.idx()];
            path.push((p.rate, p.prop));
            cur = p.peer.0;
        }
        let size = f.spec.size.as_u64();
        let mtu = self.cfg.mtu as u64;
        let n_pkts = size.div_ceil(mtu);
        let first_pkt = size.min(mtu);
        // First packet pipelines through every hop...
        let mut t = Nanos::ZERO;
        for (rate, prop) in &path {
            t += rate.serialization_delay(Bytes(first_pkt)) + *prop;
        }
        // ...the rest are clocked out at the bottleneck.
        if n_pkts > 1 {
            let bottleneck = path.iter().map(|(r, _)| *r).min().expect("non-empty path");
            let rest = size - first_pkt;
            t += bottleneck.serialization_delay(Bytes(rest));
        }
        // Final ACK returns over the reverse path.
        for (rate, prop) in &path {
            t += rate.serialization_delay(Bytes(self.cfg.ack_wire_size as u64)) + *prop;
        }
        t
    }

    // ---- internal mechanics ----

    fn try_send(&mut self, fi: usize, now: Nanos, q: &mut impl Scheduler<Event>) {
        loop {
            // Phase 1: decide under a scoped flow borrow.
            let action = {
                let f = &mut self.flows[fi];
                if f.finished.is_some() || f.remaining() == 0 {
                    break;
                }
                let lim = f.cc.limits();
                if (f.inflight() as f64) >= lim.window_bytes {
                    break; // window closed; an ACK will reopen it
                }
                if now < f.next_allowed {
                    if !f.pace_armed {
                        f.pace_armed = true;
                        q.push(f.next_allowed, Event::FlowTrySend(f.id));
                    }
                    break;
                }
                let sz = (f.remaining()).min(self.cfg.mtu as u64) as u32;
                let seq = f.sent;
                f.sent += sz as u64;
                f.cc.on_send(now, Bytes(sz as u64));
                debug_assert!(lim.pacing.0 > 0, "pacing rate must be positive");
                let delta = lim.pacing.serialization_delay(Bytes(sz as u64));
                f.next_allowed = f.next_allowed.max(now) + delta;
                (f.id, f.spec.src, f.spec.dst, seq, sz)
            };
            // Phase 2: build and enqueue the packet.
            let (id, src, dst, seq, sz) = action;
            let h = self.pool.alloc();
            let pkt = self.pool.get_mut(h);
            pkt.kind = PacketKind::Data;
            pkt.flow = id;
            pkt.src = src;
            pkt.dst = dst;
            pkt.seq = seq;
            pkt.wire_size = sz;
            pkt.payload = sz;
            pkt.sent_at = now;
            self.enqueue_at(src, PortNo(0), h, now, q);
        }
        self.arm_cc_timer(fi, now, q);
        if self.cfg.switch_buffer.is_some() || self.faults_active {
            self.arm_rto(fi, now, q);
        }
    }

    fn arm_rto(&mut self, fi: usize, now: Nanos, q: &mut impl Scheduler<Event>) {
        {
            let f = &self.flows[fi];
            if f.finished.is_some() || f.inflight() == 0 || f.rto_armed.is_some() {
                return;
            }
        }
        let level = self.flows[fi].rto_level;
        let timeout = self.cfg.rto_backoff.timeout(self.cfg.rto, level);
        let jitter = self.cfg.rto_backoff.jitter(timeout, &mut self.fault_rng);
        let t = now + timeout + jitter;
        let f = &mut self.flows[fi];
        f.rto_armed = Some(t);
        q.push(t, Event::Rto(f.id));
    }

    fn on_rto(&mut self, fi: usize, now: Nanos, q: &mut impl Scheduler<Event>) {
        let backoff = self.cfg.rto_backoff;
        let base = self.cfg.rto;
        let rewind = {
            let f = &mut self.flows[fi];
            if f.rto_armed != Some(now) {
                return; // stale
            }
            f.rto_armed = None;
            if f.finished.is_some() || f.inflight() == 0 {
                return;
            }
            if now.saturating_sub(f.last_progress) >= backoff.timeout(base, f.rto_level) {
                // Stalled: everything past `acked` may be lost. Rewind,
                // count, tell the CC, and back off the next timeout.
                f.sent = f.acked;
                f.last_progress = now;
                f.rto_count += 1;
                f.rto_level = f.rto_level.saturating_add(1);
                f.cc.on_rto(now);
                true
            } else {
                false
            }
        };
        if rewind {
            self.fault_stats.rto_fires += 1;
            if self.tracer.wants(Subsystem::Fault) {
                let f = &self.flows[fi];
                self.tracer.record(
                    now,
                    TraceEvent::RtoBackoff {
                        flow: f.id.0,
                        level: f.rto_level,
                        timeout_ns: backoff.timeout(base, f.rto_level).as_u64(),
                    },
                );
            }
        }
        self.try_send(fi, now, q);
        self.arm_rto(fi, now, q);
    }

    fn enqueue_at(
        &mut self,
        node: NodeId,
        port: PortNo,
        pkt: PacketHandle,
        now: Nanos,
        q: &mut impl Scheduler<Event>,
    ) {
        let pfc = self.cfg.pfc;
        let trace_port = self.tracer.wants(Subsystem::Port);
        let (tr_flow, tr_bytes) = {
            let p = self.pool.get(pkt);
            (p.flow, p.wire_size)
        };
        let n = &mut self.nodes[node.idx()];
        let is_switch = n.kind == NodeKind::Switch;
        let p = &mut n.ports[port.idx()];
        let marked_before = p.ecn_marked();
        let start = match p.enqueue(pkt, &mut self.pool, &mut self.red_rng) {
            Ok(start) => start,
            Err(dropped) => {
                // Tail drop (or a dead link): the flow recovers via
                // go-back-N (receiver NACK on the sequence gap, or the
                // RTO for tail losses).
                if p.link_up {
                    self.dropped_data += 1;
                } else {
                    self.fault_stats.link_down_drops += 1;
                }
                self.tracer.record(
                    now,
                    TraceEvent::PortDrop {
                        node: node.0,
                        port: port.0,
                        flow: tr_flow.0,
                        bytes: tr_bytes,
                    },
                );
                self.pool.free(dropped);
                return;
            }
        };
        if trace_port {
            let qbytes = p.qbytes();
            self.tracer.record(
                now,
                TraceEvent::PortEnqueue {
                    node: node.0,
                    port: port.0,
                    flow: tr_flow.0,
                    bytes: tr_bytes,
                    qbytes,
                },
            );
            if p.ecn_marked() > marked_before {
                self.tracer.record(
                    now,
                    TraceEvent::EcnMark {
                        node: node.0,
                        port: port.0,
                        flow: tr_flow.0,
                        qbytes,
                    },
                );
            }
        }
        // PFC: did this enqueue push the port into the over-XOFF regime?
        // Only switches assert pause (see `pfc` module docs).
        let mut assert_pause = false;
        if let Some(c) = pfc {
            if is_switch && !p.pfc_over && p.qbytes() >= c.xoff.0 {
                p.pfc_over = true;
                assert_pause = true;
            }
        }
        if assert_pause {
            self.broadcast_pause(node, port, true, now, q);
        }
        if start {
            self.start_tx(node, port, now, q);
        }
    }

    fn start_tx(&mut self, node: NodeId, port: PortNo, now: Nanos, q: &mut impl Scheduler<Event>) {
        let pfc = self.cfg.pfc;
        let trace_port = self.tracer.wants(Subsystem::Port);
        let mut release = false;
        {
            let n = &mut self.nodes[node.idx()];
            let is_switch = n.kind == NodeKind::Switch;
            let p = &mut n.ports[port.idx()];
            if p.busy || p.is_paused() || !p.has_backlog() {
                return;
            }
            let (pkt, ser) = p.begin_tx().expect("backlog checked");
            let (flow, wire) = {
                let fr = self.pool.get_mut(pkt);
                if fr.kind == PacketKind::Data && p.stamp_int {
                    if is_switch {
                        fr.hops += 1;
                    }
                    fr.int.push(IntHop {
                        qlen: Bytes(p.qbytes()),
                        tx_bytes: p.tx_bytes(),
                        ts: now,
                        rate: p.rate,
                    });
                }
                (fr.flow, fr.wire_size)
            };
            p.busy = true;
            // PFC: the over-XOFF regime ends when the queue drains below XON.
            if let Some(c) = pfc {
                if p.pfc_over && p.qbytes() < c.xon.0 {
                    p.pfc_over = false;
                    release = true;
                }
            }
            self.tracer.record(
                now,
                TraceEvent::PortDequeue {
                    node: node.0,
                    port: port.0,
                    flow: flow.0,
                    bytes: wire,
                    qbytes: p.qbytes(),
                },
            );
            // Fault injection: the wire may eat this frame; surviving
            // frames are stamped with their link so a mid-flight
            // link-down can kill them on arrival. All gated so runs
            // without a fault plan do zero extra work and zero draws.
            let mut lost = false;
            let mut bursty = false;
            if self.faults_active {
                if let Some(loss) = p.loss.as_mut() {
                    if loss.lose(&mut self.fault_rng) {
                        lost = true;
                        bursty = loss.in_bad();
                        p.count_wire_loss();
                    }
                }
                if !lost {
                    self.pool.get_mut(pkt).via = Some((node, port));
                }
            }
            if lost {
                // The frame occupied the wire for its serialization time
                // (the port stays busy until TxDone) but never arrives.
                q.push(now + ser, Event::TxDone { node, port });
                self.fault_stats.wire_drops += 1;
                if self.tracer.wants(Subsystem::Fault) {
                    self.tracer.record(
                        now,
                        TraceEvent::LossBurst {
                            node: node.0,
                            port: port.0,
                            flow: flow.0,
                            bytes: wire,
                            bursty,
                        },
                    );
                }
                self.pool.free(pkt);
            } else {
                // Batched drain: a run of control frames behind the head
                // (ACK/CNP/NACK bursts — a receiver NIC clocking an
                // incast) needs no per-frame egress work: control frames
                // take no INT stamp, and with PFC, faults, and port
                // tracing off there is no per-frame observer either. Each
                // frame still serializes at its exact wire time; only the
                // intermediate TxDone wakeups are elided.
                let batch = pfc.is_none() && !self.faults_active && !trace_port;
                if batch && matches!(p.head_kind(), Some(k) if k != PacketKind::Data) {
                    let mut t = now + ser;
                    q.push(
                        t + p.prop,
                        Event::Arrive {
                            node: p.peer.0,
                            pkt,
                        },
                    );
                    while matches!(p.head_kind(), Some(k) if k != PacketKind::Data) {
                        let (h, ser2) = p.begin_tx().expect("head_kind checked");
                        t += ser2;
                        q.push(
                            t + p.prop,
                            Event::Arrive {
                                node: p.peer.0,
                                pkt: h,
                            },
                        );
                    }
                    q.push(t, Event::TxDone { node, port });
                } else {
                    q.push(now + ser, Event::TxDone { node, port });
                    q.push(
                        now + ser + p.prop,
                        Event::Arrive {
                            node: p.peer.0,
                            pkt,
                        },
                    );
                }
            }
        }
        if release {
            self.broadcast_pause(node, port, false, now, q);
        }
    }

    /// Apply one direction of a link flap: cut or restore the port,
    /// flush queued frames on a cut, and recompute ECMP routes over the
    /// surviving topology (failover rerouting).
    fn on_link_set(&mut self, node: NodeId, port: PortNo, up: bool, now: Nanos) {
        let trace = self.tracer.wants(Subsystem::Fault);
        if up {
            self.nodes[node.idx()].ports[port.idx()].bring_up();
            if trace {
                self.tracer.record(
                    now,
                    TraceEvent::LinkUp {
                        node: node.0,
                        port: port.0,
                    },
                );
            }
        } else {
            let flushed = self.nodes[node.idx()].ports[port.idx()].take_down(now);
            let n_flushed = flushed.len() as u32;
            for pkt in flushed {
                self.pool.free(pkt);
            }
            self.fault_stats.link_down_drops += n_flushed as u64;
            if trace {
                self.tracer.record(
                    now,
                    TraceEvent::LinkDown {
                        node: node.0,
                        port: port.0,
                        flushed: n_flushed,
                    },
                );
            }
        }
        // Failover: recompute the ECMP routes over the links still up.
        let filtered = filter_adjacency(&self.adjacency, |n, p| {
            self.nodes[n.idx()].ports[p.idx()].link_up
        });
        self.routes = RoutingTable::compute(&filtered, &self.hosts);
        self.fault_stats.reroutes += 1;
        if trace {
            self.tracer.record(
                now,
                TraceEvent::Reroute {
                    node: node.0,
                    port: port.0,
                    up,
                },
            );
        }
    }

    /// Send PAUSE/RESUME to every neighbour except the peer of the
    /// congested port itself (that peer is the drain direction; pausing it
    /// would create the classic PFC circular wait).
    fn broadcast_pause(
        &self,
        node: NodeId,
        congested: PortNo,
        paused: bool,
        now: Nanos,
        q: &mut impl Scheduler<Event>,
    ) {
        for (i, p) in self.nodes[node.idx()].ports.iter().enumerate() {
            if i == congested.idx() {
                continue;
            }
            q.push(
                now + p.prop,
                Event::PfcSet {
                    node: p.peer.0,
                    port: p.peer.1,
                    paused,
                },
            );
        }
    }

    fn arm_cc_timer(&mut self, fi: usize, now: Nanos, q: &mut impl Scheduler<Event>) {
        let f = &mut self.flows[fi];
        if f.finished.is_some() {
            return;
        }
        if let Some(t) = f.cc.next_timer() {
            let t = t.max(now);
            if f.cc_timer_armed.is_none_or(|a| t < a) {
                f.cc_timer_armed = Some(t);
                q.push(t, Event::CcTimer(f.id));
            }
        }
    }

    fn on_cc_timer(&mut self, fi: usize, now: Nanos, q: &mut impl Scheduler<Event>) {
        {
            let f = &mut self.flows[fi];
            if f.cc_timer_armed != Some(now) {
                return; // stale duplicate
            }
            f.cc_timer_armed = None;
            match f.cc.next_timer() {
                Some(due) if due <= now => f.cc.on_timer(now),
                _ => {}
            }
        }
        self.try_send(fi, now, q);
    }

    fn deliver_to_host(
        &mut self,
        node: NodeId,
        pkt: PacketHandle,
        now: Nanos,
        q: &mut impl Scheduler<Event>,
    ) {
        let (kind, flow, seq, payload, ecn) = {
            let p = self.pool.get(pkt);
            debug_assert_eq!(
                p.dst, node,
                "packet for {:?} arrived at host {:?}: routing bug",
                p.dst, node
            );
            (p.kind, p.flow, p.seq, p.payload, p.ecn)
        };
        match kind {
            PacketKind::Data => {
                let fi = flow.idx();
                // In lossless mode delivery is strictly in order; with
                // finite buffers, gaps mean upstream drops and RoCE-style
                // go-back-N applies: out-of-order packets are discarded
                // and the receiver NACKs the expected sequence once per
                // gap.
                let lossless = self.cfg.switch_buffer.is_none() && !self.faults_active;
                enum Rx {
                    Accept { need_cnp: bool },
                    Nack { expected: u64 },
                    AckDup,
                    DiscardDup,
                }
                let action = {
                    let f = &mut self.flows[fi];
                    if seq == f.rcv_next {
                        f.rcv_next = seq + payload as u64;
                        f.last_nack_for = None;
                        Rx::Accept {
                            need_cnp: ecn && f.try_emit_cnp(now, self.cfg.cnp_interval),
                        }
                    } else if seq > f.rcv_next {
                        debug_assert!(!lossless, "sequence gap in lossless mode");
                        if f.last_nack_for != Some(f.rcv_next) {
                            f.last_nack_for = Some(f.rcv_next);
                            Rx::Nack {
                                expected: f.rcv_next,
                            }
                        } else {
                            Rx::DiscardDup
                        }
                    } else if self.faults_active {
                        // Duplicate from a go-back-N rewind. Under wire
                        // loss the original ACK may itself have died, so
                        // re-ACK the cumulative offset — the only way a
                        // sender whose final ACK was eaten learns it is
                        // done. Unreachable without faults, so lossless
                        // and tail-drop runs are untouched.
                        Rx::AckDup
                    } else {
                        // Duplicate from a go-back-N rewind: discard; the
                        // cumulative ACK below keeps the sender moving.
                        Rx::DiscardDup
                    }
                };
                match action {
                    Rx::Accept { need_cnp } => {
                        if need_cnp {
                            let src = self.flows[fi].spec.src;
                            let ch = self.pool.alloc();
                            let cnp = self.pool.get_mut(ch);
                            cnp.kind = PacketKind::Cnp;
                            cnp.flow = flow;
                            cnp.src = node;
                            cnp.dst = src;
                            cnp.wire_size = self.cfg.ack_wire_size;
                            self.enqueue_at(node, PortNo(0), ch, now, q);
                        }
                        let cumulative = self.flows[fi].rcv_next;
                        let p = self.pool.get_mut(pkt);
                        p.into_ack(self.cfg.ack_wire_size);
                        p.seq = cumulative;
                        self.enqueue_at(node, PortNo(0), pkt, now, q);
                    }
                    Rx::Nack { expected } => {
                        let src = self.flows[fi].spec.src;
                        let p = self.pool.get_mut(pkt);
                        p.kind = PacketKind::Nack;
                        p.src = node;
                        p.dst = src;
                        p.seq = expected;
                        p.payload = 0;
                        p.wire_size = self.cfg.ack_wire_size;
                        self.enqueue_at(node, PortNo(0), pkt, now, q);
                    }
                    Rx::AckDup => {
                        let cumulative = self.flows[fi].rcv_next;
                        let p = self.pool.get_mut(pkt);
                        p.into_ack(self.cfg.ack_wire_size);
                        p.seq = cumulative;
                        self.enqueue_at(node, PortNo(0), pkt, now, q);
                    }
                    Rx::DiscardDup => {
                        self.pool.free(pkt);
                    }
                }
            }
            PacketKind::Ack => {
                let fi = flow.idx();
                let (sent_at, int, hops) = {
                    let p = self.pool.get(pkt);
                    (p.sent_at, p.int, p.hops)
                };
                let (done, rec) = {
                    let f = &mut self.flows[fi];
                    let newly = seq.saturating_sub(f.acked);
                    f.acked = f.acked.max(seq);
                    // An RTO rewind can pull `sent` below a cumulative ACK
                    // that was still in flight; those bytes are delivered,
                    // so the send cursor never needs to revisit them.
                    f.sent = f.sent.max(f.acked);
                    let fb = AckFeedback {
                        now,
                        rtt: now.saturating_sub(sent_at),
                        ecn,
                        int,
                        acked: Bytes(newly),
                        hops,
                    };
                    f.cc.on_ack(&fb);
                    f.acks_seen += 1;
                    if self.tracer.wants_cc(f.acks_seen) {
                        let snap = f.cc.snapshot();
                        self.tracer.record(
                            now,
                            TraceEvent::CcUpdate {
                                flow: f.id.0,
                                window_bytes: snap.window_bytes,
                                rate_bps: snap.rate.as_u64(),
                                vai_bank: snap.vai_bank,
                            },
                        );
                    }
                    if f.acked >= f.spec.size.as_u64() && f.finished.is_none() {
                        f.finished = Some(now);
                        (
                            true,
                            FctRecord {
                                flow: f.id,
                                size: f.spec.size,
                                start: f.spec.start,
                                finish: now,
                            },
                        )
                    } else {
                        (
                            false,
                            FctRecord {
                                flow: f.id,
                                size: Bytes::ZERO,
                                start: Nanos::ZERO,
                                finish: Nanos::ZERO,
                            },
                        )
                    }
                };
                self.pool.free(pkt);
                if done {
                    self.tracer.record(
                        now,
                        TraceEvent::FlowFinish {
                            flow: rec.flow.0,
                            bytes: rec.size.as_u64(),
                            fct_ns: rec.fct().as_u64(),
                        },
                    );
                    self.monitor.record_fct(rec);
                } else {
                    let f = &mut self.flows[fi];
                    f.last_progress = now;
                    f.rto_level = 0; // backoff resets on ACK progress
                    self.try_send(fi, now, q);
                }
            }
            PacketKind::Nack => {
                // Go-back-N: rewind the send cursor to the receiver's
                // expected byte and retransmit from there.
                let fi = flow.idx();
                let expected = seq;
                {
                    let f = &mut self.flows[fi];
                    if f.finished.is_none() && expected < f.sent && expected >= f.acked {
                        f.sent = expected;
                        f.last_progress = now;
                    }
                }
                self.pool.free(pkt);
                self.try_send(fi, now, q);
            }
            PacketKind::Cnp => {
                let fi = flow.idx();
                self.flows[fi].cc.on_cnp(now);
                self.pool.free(pkt);
                self.try_send(fi, now, q);
            }
        }
    }
}

impl World for Network {
    type Event = Event;

    fn handle<S: Scheduler<Event>>(&mut self, now: Nanos, event: Event, q: &mut S) {
        match event {
            Event::FlowStart(f) => {
                if self.tracer.wants(Subsystem::Flow) {
                    let bytes = self.flows[f.idx()].spec.size.as_u64();
                    self.tracer
                        .record(now, TraceEvent::FlowStart { flow: f.0, bytes });
                }
                self.try_send(f.idx(), now, q)
            }
            Event::FlowTrySend(f) => {
                self.flows[f.idx()].pace_armed = false;
                self.try_send(f.idx(), now, q);
            }
            Event::TxDone { node, port } => {
                let p = &mut self.nodes[node.idx()].ports[port.idx()];
                p.busy = false;
                if p.has_backlog() && !p.is_paused() {
                    self.start_tx(node, port, now, q);
                }
            }
            Event::Arrive { node, pkt } => {
                if self.faults_active {
                    let via = self.pool.get(pkt).via;
                    if let Some((vn, vp)) = via {
                        let p = &self.nodes[vn.idx()].ports[vp.idx()];
                        // A frame propagating on a link that was cut after
                        // it left (or is still down) never arrives.
                        if !p.link_up || p.last_down > now.saturating_sub(p.prop) {
                            self.fault_stats.link_down_drops += 1;
                            if self.tracer.wants(Subsystem::Fault) {
                                let (flow, bytes) = {
                                    let p = self.pool.get(pkt);
                                    (p.flow.0, p.wire_size)
                                };
                                self.tracer.record(
                                    now,
                                    TraceEvent::PortDrop {
                                        node: vn.0,
                                        port: vp.0,
                                        flow,
                                        bytes,
                                    },
                                );
                            }
                            self.pool.free(pkt);
                            return;
                        }
                    }
                }
                match self.nodes[node.idx()].kind {
                    NodeKind::Switch => {
                        let (dst, flow) = {
                            let p = self.pool.get(pkt);
                            (p.dst, p.flow)
                        };
                        match self.routes.try_pick(node, dst, flow) {
                            Some(out) => self.enqueue_at(node, out, pkt, now, q),
                            None => {
                                // Partitioned by a link-down: no route left.
                                // Drop; the sender's RTO (and a later link-up
                                // reroute) recovers.
                                self.fault_stats.link_down_drops += 1;
                                self.pool.free(pkt);
                            }
                        }
                    }
                    NodeKind::Host => self.deliver_to_host(node, pkt, now, q),
                }
            }
            Event::CcTimer(f) => self.on_cc_timer(f.idx(), now, q),
            Event::Rto(f) => self.on_rto(f.idx(), now, q),
            Event::LinkSet { node, port, up } => self.on_link_set(node, port, up, now),
            Event::PfcSet { node, port, paused } => {
                self.tracer.record(
                    now,
                    TraceEvent::PfcPause {
                        node: node.0,
                        port: port.0,
                        paused,
                    },
                );
                let p = &mut self.nodes[node.idx()].ports[port.idx()];
                p.pause.apply(paused);
                if !p.is_paused() && p.has_backlog() && !p.busy {
                    self.start_tx(node, port, now, q);
                }
            }
            Event::Sample => {
                let qb: Vec<u64> = self
                    .monitor
                    .cfg
                    .watch_ports
                    .iter()
                    .map(|(n, p)| self.nodes[n.idx()].ports[p.idx()].qbytes())
                    .collect();
                let flows = std::mem::take(&mut self.flows);
                self.monitor.take_sample(now, qb, &flows);
                self.flows = flows;
                // Keep sampling while any flow is pending; one final
                // sample lands just after the last completion.
                if !self.all_finished() {
                    if let Some(next) = self.monitor.wants_sample_after(now) {
                        q.push(next, Event::Sample);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::{BitRate, Simulation};
    use faircc::{CcMode, SenderLimits};

    #[test]
    fn events_carry_no_heap_payload() {
        // The schedulers shuffle events constantly (heap sift, wheel
        // cascade); the packet rides as an 8-byte slab handle, so the
        // whole enum must stay two words and `Copy`-movable without
        // touching the allocator.
        let size = std::mem::size_of::<Event>();
        assert!(size <= 16, "Event grew to {size} bytes — boxed payload?");
    }

    /// Fixed-rate congestion control for substrate tests.
    struct FixedRate(BitRate);
    impl CongestionControl for FixedRate {
        fn on_ack(&mut self, _: &AckFeedback) {}
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(self.0)
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    /// Rate control that halves on every CNP (minimal DCQCN-alike).
    struct HalveOnCnp {
        rate: f64,
    }
    impl CongestionControl for HalveOnCnp {
        fn on_ack(&mut self, _: &AckFeedback) {}
        fn on_cnp(&mut self, _: Nanos) {
            self.rate = (self.rate / 2.0).max(1e9);
        }
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(BitRate(self.rate as u64))
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "halve-on-cnp"
        }
    }

    /// host0 -- switch -- host1, both links 100 Gbps, 1 µs.
    fn two_host_net(monitor: MonitorConfig, cfg: NetConfig) -> (Network, NodeId, NodeId) {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let sw = b.add_switch();
        b.link(h0, sw, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(h1, sw, BitRate::from_gbps(100), Nanos::MICRO);
        (b.build(cfg, monitor), h0, h1)
    }

    #[test]
    fn single_flow_completes_at_ideal_fct() {
        let (mut net, h0, h1) = two_host_net(MonitorConfig::default(), NetConfig::default());
        let id = net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(100_000), // 100 packets
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        let ideal = net.ideal_fct(id);
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        // Hold the queue borrow correctly: prime needs &self and &mut queue.
        sim.run();
        let net = sim.world();
        assert!(net.all_finished());
        let fct = net.monitor.fcts()[0].fct();
        // The measured FCT should be within a few packet times of ideal
        // (pacing quantization), and never below it.
        assert!(fct >= ideal, "fct {fct} < ideal {ideal}");
        assert!(
            fct.as_u64() <= ideal.as_u64() + 500,
            "fct {fct} too far above ideal {ideal}"
        );
    }

    #[test]
    fn ideal_fct_matches_hand_computation() {
        let (mut net, h0, h1) = two_host_net(MonitorConfig::default(), NetConfig::default());
        let id = net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(1000), // single packet
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        // Forward: 2 hops x (80ns ser + 1000ns prop) = 2160.
        // ACK back: 2 hops x (4.8->5ns ser + 1000ns prop) = 2010.
        assert_eq!(net.ideal_fct(id), Nanos(2160 + 2010));
    }

    #[test]
    fn two_flows_share_bottleneck() {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let sw = b.add_switch();
        for h in [h0, h1, h2] {
            b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
        }
        let mut net = b.build(NetConfig::default(), MonitorConfig::default());
        // Two senders at 60 Gbps each into one 100 Gbps sink: the switch
        // egress queue must absorb the 20 Gbps excess.
        for src in [h0, h1] {
            net.add_flow(
                FlowSpec {
                    src,
                    dst: h2,
                    size: Bytes(600_000),
                    start: Nanos::ZERO,
                },
                Box::new(FixedRate(BitRate::from_gbps(60))),
            );
        }
        let bottleneck = net
            .port_towards(sw, h2)
            .expect("switch has a port toward every attached host");
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run();
        let net = sim.world();
        assert!(net.all_finished());
        // Offered 120 Gbps for 600KB each = 80us of sending; the sink link
        // is saturated so queue peaked near 20Gbps * 80us = 200KB.
        let peak = net.nodes[bottleneck.0.idx()].ports[bottleneck.1.idx()].max_qbytes();
        assert!(
            peak > 100_000,
            "expected a large standing queue, got {peak}"
        );
        assert!(peak < 300_000, "queue larger than offered excess: {peak}");
    }

    #[test]
    fn per_packet_acks_clock_the_window() {
        // A window-based CC with a 2-packet window and no pacing: delivery
        // must still complete, clocked by ACKs.
        struct TwoPacketWindow;
        impl CongestionControl for TwoPacketWindow {
            fn on_ack(&mut self, _: &AckFeedback) {}
            fn limits(&self) -> SenderLimits {
                SenderLimits {
                    window_bytes: 2000.0,
                    pacing: BitRate(u64::MAX),
                }
            }
            fn mode(&self) -> CcMode {
                CcMode::Window
            }
            fn name(&self) -> &str {
                "w2"
            }
        }
        let (mut net, h0, h1) = two_host_net(MonitorConfig::default(), NetConfig::default());
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(50_000),
                start: Nanos::ZERO,
            },
            Box::new(TwoPacketWindow),
        );
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run();
        assert!(sim.world().all_finished());
        // 50 packets, 2 per RTT (~4.2us) => ~105us.
        let fct = sim.world().monitor.fcts()[0].fct();
        assert!(fct > Nanos::from_micros(90), "fct {fct}");
        assert!(fct < Nanos::from_micros(130), "fct {fct}");
    }

    #[test]
    fn red_marking_generates_cnps_and_rate_drops() {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let sw = b.add_switch();
        for h in [h0, h1, h2] {
            b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
        }
        b.red_on_switches(RedConfig {
            kmin: Bytes(5_000),
            kmax: Bytes(20_000),
            pmax: 0.2,
        });
        let mut net = b.build(NetConfig::default(), MonitorConfig::default());
        // Two line-rate senders overload the sink: queue grows, RED marks,
        // CNPs halve the rates until the queue stabilizes.
        for src in [h0, h1] {
            net.add_flow(
                FlowSpec {
                    src,
                    dst: h2,
                    size: Bytes(2_000_000),
                    start: Nanos::ZERO,
                },
                Box::new(HalveOnCnp { rate: 100e9 }),
            );
        }
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(5));
        let net = sim.world();
        // Both flows got CNPs: their rates dropped below line rate.
        for f in 0..2 {
            let r = net.flow(FlowId(f)).cc.current_rate();
            assert!(
                r < BitRate::from_gbps(100),
                "flow {f} never received a CNP (rate {r})"
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed: u64| -> Vec<(u64, u64)> {
            let mut b = NetBuilder::new();
            let hs: Vec<_> = (0..4).map(|_| b.add_host()).collect();
            let sw = b.add_switch();
            for &h in &hs {
                b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
            }
            b.red_on_switches(RedConfig {
                kmin: Bytes(5_000),
                kmax: Bytes(20_000),
                pmax: 0.2,
            });
            let mut net = b.build(
                NetConfig {
                    seed,
                    ..Default::default()
                },
                MonitorConfig::default(),
            );
            for i in 0..3 {
                net.add_flow(
                    FlowSpec {
                        src: hs[i],
                        dst: hs[3],
                        size: Bytes(500_000),
                        start: Nanos::from_micros(i as u64 * 10),
                    },
                    Box::new(HalveOnCnp { rate: 100e9 }),
                );
            }
            let mut sim = Simulation::new(net);
            {
                let (w, q) = sim.split_mut();
                w.prime(q);
            }
            sim.run_until(Nanos::from_millis(10));
            sim.world()
                .monitor
                .fcts()
                .iter()
                .map(|r| (r.flow.0 as u64, r.finish.as_u64()))
                .collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must give identical completions");
        assert!(!a.is_empty());
        // Different seed: RED draws differ, finishes (almost surely) shift.
        assert_ne!(a, c, "different seeds should perturb RED marking");
    }

    #[test]
    fn pfc_pauses_bound_queue_growth() {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let sw = b.add_switch();
        for h in [h0, h1, h2] {
            b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
        }
        let pfc = PfcConfig {
            xoff: Bytes(30_000),
            xon: Bytes(20_000),
        };
        let mut net = b.build(
            NetConfig {
                pfc: Some(pfc),
                ..Default::default()
            },
            MonitorConfig::default(),
        );
        for src in [h0, h1] {
            net.add_flow(
                FlowSpec {
                    src,
                    dst: h2,
                    size: Bytes(2_000_000),
                    start: Nanos::ZERO,
                },
                Box::new(FixedRate(BitRate::from_gbps(100))), // never backs off
            );
        }
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(2));
        let net = sim.world();
        let (n, p) = net
            .port_towards(sw, h2)
            .expect("switch has a port toward every attached host");
        let peak = net.nodes[n.idx()].ports[p.idx()].max_qbytes();
        // Without PFC the peak would approach 1 MB (half the offered
        // excess); with PFC it must stay near xoff plus one BDP of
        // in-flight headroom.
        assert!(
            peak < 60_000,
            "PFC failed to bound the bottleneck queue: {peak}"
        );
        // And the flows must still finish eventually (pause, not drop).
        sim.run_until(Nanos::from_millis(10));
        if !sim.world().all_finished() {
            let net = sim.world();
            for f in 0..2u32 {
                let fl = net.flow(FlowId(f));
                eprintln!(
                    "flow {f}: sent={} acked={} rcv_next={}",
                    fl.sent, fl.acked, fl.rcv_next
                );
            }
            for (ni, n) in net.nodes.iter().enumerate() {
                for (pi, p) in n.ports.iter().enumerate() {
                    eprintln!(
                        "node {ni} port {pi}: q={} busy={} paused={} over={} peer={:?}",
                        p.qbytes(),
                        p.busy,
                        p.is_paused(),
                        p.pfc_over,
                        p.peer
                    );
                }
            }
            panic!("not finished");
        }
    }

    #[test]
    fn lossless_mode_never_drops() {
        let (mut net, h0, h1) = two_host_net(MonitorConfig::default(), NetConfig::default());
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(500_000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run();
        assert_eq!(sim.world().dropped_data_packets(), 0);
        assert!(sim.world().all_finished());
    }

    #[test]
    fn finite_buffers_drop_and_go_back_n_recovers() {
        // Two line-rate senders into one sink with a 10 KB switch buffer:
        // heavy tail-drop, yet every byte must be delivered in order.
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let sw = b.add_switch();
        for h in [h0, h1, h2] {
            b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
        }
        let mut net = b.build(
            NetConfig {
                switch_buffer: Some(Bytes::from_kb(10)),
                rto: Nanos::from_micros(100),
                ..NetConfig::default()
            },
            MonitorConfig::default(),
        );
        for src in [h0, h1] {
            net.add_flow(
                FlowSpec {
                    src,
                    dst: h2,
                    size: Bytes(300_000),
                    start: Nanos::ZERO,
                },
                Box::new(FixedRate(BitRate::from_gbps(100))), // never backs off
            );
        }
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(50));
        let net = sim.world();
        assert!(
            net.dropped_data_packets() > 0,
            "the 10 KB buffer must overflow under 2x line-rate load"
        );
        assert!(net.all_finished(), "go-back-N failed to recover");
        for f in 0..2u32 {
            let fl = net.flow(FlowId(f));
            // Receiver got every byte, exactly once, in order.
            assert_eq!(fl.rcv_next, fl.spec.size.0);
            assert_eq!(fl.acked, fl.spec.size.0);
            // Go-back-N means retransmission: more bytes sent than the
            // flow size would need... but `sent` is the cursor, which
            // ends exactly at size.
            assert_eq!(fl.sent, fl.spec.size.0);
        }
        // The drop counter matches the per-port accounting.
        let (n, p) = net
            .port_towards(sw, h2)
            .expect("switch has a port toward every attached host");
        assert_eq!(
            net.node(n).ports[p.idx()].dropped_packets(),
            net.dropped_data_packets()
        );
    }

    #[test]
    fn rto_recovers_trailing_loss() {
        // A flow whose *final* packets are dropped has no later packet to
        // trigger a NACK gap: only the RTO can save it. Force this with a
        // buffer that fits almost nothing and a sender that bursts the
        // whole flow at once.
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let sw = b.add_switch();
        for h in [h0, h1, h2] {
            b.link(h, sw, BitRate::from_gbps(100), Nanos::MICRO);
        }
        let mut net = b.build(
            NetConfig {
                switch_buffer: Some(Bytes(3_000)),
                rto: Nanos::from_micros(50),
                ..NetConfig::default()
            },
            MonitorConfig::default(),
        );
        for src in [h0, h1] {
            net.add_flow(
                FlowSpec {
                    src,
                    dst: h2,
                    size: Bytes(50_000),
                    start: Nanos::ZERO,
                },
                Box::new(FixedRate(BitRate::from_gbps(100))),
            );
        }
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(20));
        let net = sim.world();
        assert!(net.dropped_data_packets() > 0);
        assert!(net.all_finished(), "RTO failed to recover trailing losses");
    }

    #[test]
    fn faults_off_leaves_counters_untouched() {
        let (mut net, h0, h1) = two_host_net(MonitorConfig::default(), NetConfig::default());
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(100_000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run();
        assert!(sim.world().all_finished());
        assert_eq!(
            sim.world().fault_stats(),
            crate::fault::FaultStats::default()
        );
        assert_eq!(sim.world().flow(FlowId(0)).rto_count, 0);
    }

    #[test]
    fn wire_loss_recovers_and_counts() {
        use crate::fault::{FaultPlan, LinkFault, LossModel};
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let sw = b.add_switch();
        b.link(h0, sw, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(h1, sw, BitRate::from_gbps(100), Nanos::MICRO);
        let mut net = b.build(
            NetConfig {
                rto: Nanos::from_micros(50),
                faults: FaultPlan::none()
                    .link(LinkFault::on(h0, sw).with_loss(LossModel::uniform(0.05))),
                ..NetConfig::default()
            },
            MonitorConfig::default(),
        );
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(200_000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(100));
        let net = sim.world();
        let stats = net.fault_stats();
        assert!(stats.wire_drops > 0, "5% loss over 200 packets must bite");
        assert!(
            net.all_finished(),
            "go-back-N + RTO backoff failed to recover from wire loss: {stats:?}"
        );
        let fl = net.flow(FlowId(0));
        assert_eq!(fl.rcv_next, fl.spec.size.0);
        assert_eq!(fl.acked, fl.spec.size.0);
        // No buffer limit configured: every drop is a fault, not a tail drop.
        assert_eq!(net.dropped_data_packets(), 0);
    }

    #[test]
    fn link_cut_fails_over_to_detour() {
        use crate::fault::{FaultPlan, FlapSchedule, LinkFault};
        // h0 - s0 = s1 - h1, with a longer detour s0 - s2 - s1. All
        // traffic pins the direct s0-s1 link until it is cut mid-flow.
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let s2 = b.add_switch();
        b.link(h0, s0, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(h1, s1, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(s0, s1, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(s0, s2, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(s2, s1, BitRate::from_gbps(100), Nanos::MICRO);
        let mut net = b.build(
            NetConfig {
                rto: Nanos::from_micros(50),
                faults: FaultPlan::none().link(
                    LinkFault::on(s0, s1)
                        .with_flap(FlapSchedule::permanent(Nanos::from_micros(20))),
                ),
                ..NetConfig::default()
            },
            MonitorConfig::default(),
        );
        let id = net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(500_000), // ~40us at line rate: the cut lands mid-flow
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        let ideal = net.ideal_fct(id);
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(50));
        let net = sim.world();
        let stats = net.fault_stats();
        assert!(
            net.all_finished(),
            "failover rerouting did not recover the flow: {stats:?}"
        );
        // Both directions of the cut link trigger a route recomputation.
        assert!(stats.reroutes >= 2, "{stats:?}");
        // Frames queued or in flight on the cut link died.
        assert!(stats.link_down_drops > 0, "{stats:?}");
        // The ideal-FCT denominator still reflects the pristine topology.
        assert_eq!(net.ideal_fct(id), ideal);
        let fct = net.monitor.fcts()[0].fct();
        assert!(fct > ideal, "a mid-flow cut must cost time");
    }

    #[test]
    #[should_panic(expected = "nonexistent link")]
    fn fault_plan_validates_links() {
        use crate::fault::{FaultPlan, LinkFault, LossModel};
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let sw = b.add_switch();
        b.link(h0, sw, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(h1, sw, BitRate::from_gbps(100), Nanos::MICRO);
        b.build(
            NetConfig {
                // h0 and h1 are not directly linked.
                faults: FaultPlan::none()
                    .link(LinkFault::on(h0, h1).with_loss(LossModel::uniform(0.1))),
                ..NetConfig::default()
            },
            MonitorConfig::default(),
        );
    }

    #[test]
    fn sampling_produces_series() {
        let (mut net, h0, h1) = two_host_net(
            MonitorConfig {
                sample_interval: Some(Nanos::from_micros(10)),
                sample_until: Nanos::from_millis(1),
                watch_ports: vec![],
                track_flow_rates: true,
            },
            NetConfig::default(),
        );
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(1_000_000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(50))),
        );
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(Nanos::from_millis(1));
        let samples = sim.world().monitor.samples();
        assert!(samples.len() > 10);
        // Mid-run samples should show ~50 Gbps goodput.
        let mid = &samples[5];
        assert_eq!(mid.flow_rates.len(), 1);
        let rate = mid.flow_rates[0].1;
        assert!((rate - 50e9).abs() < 5e9, "rate {rate}");
    }
}
