//! Per-flow sender and receiver state.

use dcsim::{Bytes, Nanos};
use faircc::CongestionControl;

use crate::ids::{FlowId, NodeId};

/// Immutable description of a flow to run.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Payload bytes to transfer.
    pub size: Bytes,
    /// When the sender starts.
    pub start: Nanos,
}

/// The live state of one flow (sender side and receiver side).
pub struct Flow {
    /// This flow's id.
    pub id: FlowId,
    /// The specification it was created from.
    pub spec: FlowSpec,
    /// Payload bytes handed to the NIC so far.
    pub sent: u64,
    /// Cumulative payload bytes acknowledged.
    pub acked: u64,
    /// Completion time, once all bytes are acknowledged.
    pub finished: Option<Nanos>,
    /// The congestion-control algorithm driving this flow.
    pub cc: Box<dyn CongestionControl>,
    /// Earliest time pacing allows the next packet out.
    pub next_allowed: Nanos,
    /// Whether a pacing timer event is already scheduled.
    pub pace_armed: bool,
    /// The earliest currently-scheduled CC timer, if any (dedup guard).
    pub cc_timer_armed: Option<Nanos>,
    /// Receiver side: next expected byte offset (in-order check).
    pub rcv_next: u64,
    /// Receiver side: time of the last CNP sent (DCQCN rate limiting).
    pub last_cnp: Option<Nanos>,
    /// Receiver side: the expected-sequence value already NACKed (one
    /// NACK per loss gap; reset when the gap fills).
    pub last_nack_for: Option<u64>,
    /// Sender side: last time the cumulative ACK advanced (RTO input).
    pub last_progress: Nanos,
    /// Sender side: the scheduled RTO check, if armed (dedup guard).
    pub rto_armed: Option<Nanos>,
    /// Sender side: consecutive-timeout backoff level (0 = base RTO;
    /// reset whenever the cumulative ACK advances).
    pub rto_level: u32,
    /// Sender side: total RTO firings that rewound this flow (the
    /// retransmit counter exposed through the metrics registry).
    pub rto_count: u64,
    /// Sender side: acknowledgements processed so far (drives the trace
    /// layer's CC sampling cadence).
    pub acks_seen: u64,
}

impl Flow {
    /// Create a fresh flow.
    pub fn new(id: FlowId, spec: FlowSpec, cc: Box<dyn CongestionControl>) -> Self {
        assert!(spec.size.as_u64() > 0, "zero-length flows are not allowed");
        assert!(
            spec.src != spec.dst,
            "flow source and destination must differ"
        );
        Flow {
            id,
            spec,
            sent: 0,
            acked: 0,
            finished: None,
            cc,
            next_allowed: Nanos::ZERO,
            pace_armed: false,
            cc_timer_armed: None,
            rcv_next: 0,
            last_cnp: None,
            last_nack_for: None,
            last_progress: spec.start,
            rto_armed: None,
            rto_level: 0,
            rto_count: 0,
            acks_seen: 0,
        }
    }

    /// Payload bytes in flight (sent, not yet acknowledged).
    #[inline]
    pub fn inflight(&self) -> u64 {
        self.sent - self.acked
    }

    /// Payload bytes not yet handed to the NIC.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.spec.size.as_u64() - self.sent
    }

    /// Whether the flow has started by `now` and is not yet finished.
    #[inline]
    pub fn is_active(&self, now: Nanos) -> bool {
        self.spec.start <= now && self.finished.is_none()
    }

    /// Whether a CNP may be emitted now, and record it if so.
    ///
    /// DCQCN receivers rate-limit CNPs to one per `interval` per flow.
    pub fn try_emit_cnp(&mut self, now: Nanos, interval: Nanos) -> bool {
        let due = match self.last_cnp {
            None => true,
            Some(t) => now.saturating_sub(t) >= interval,
        };
        if due {
            self.last_cnp = Some(now);
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::BitRate;
    use faircc::{AckFeedback, CcMode, SenderLimits};

    struct Dummy;
    impl CongestionControl for Dummy {
        fn on_ack(&mut self, _: &AckFeedback) {}
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(BitRate::from_gbps(100))
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "dummy"
        }
    }

    fn spec() -> FlowSpec {
        FlowSpec {
            src: NodeId(0),
            dst: NodeId(1),
            size: Bytes::from_mb(1),
            start: Nanos::from_micros(5),
        }
    }

    #[test]
    fn accounting() {
        let mut f = Flow::new(FlowId(0), spec(), Box::new(Dummy));
        f.sent = 5000;
        f.acked = 2000;
        assert_eq!(f.inflight(), 3000);
        assert_eq!(f.remaining(), 995_000);
    }

    #[test]
    fn activity_window() {
        let mut f = Flow::new(FlowId(0), spec(), Box::new(Dummy));
        assert!(!f.is_active(Nanos::ZERO)); // not started yet
        assert!(f.is_active(Nanos::from_micros(5)));
        f.finished = Some(Nanos::from_micros(100));
        assert!(!f.is_active(Nanos::from_micros(200)));
    }

    #[test]
    fn cnp_rate_limit() {
        let mut f = Flow::new(FlowId(0), spec(), Box::new(Dummy));
        let interval = Nanos::from_micros(50);
        assert!(f.try_emit_cnp(Nanos(0), interval));
        assert!(!f.try_emit_cnp(Nanos(10_000), interval));
        assert!(!f.try_emit_cnp(Nanos(49_999), interval));
        assert!(f.try_emit_cnp(Nanos(50_000), interval));
        assert!(!f.try_emit_cnp(Nanos(60_000), interval));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_size_rejected() {
        Flow::new(
            FlowId(0),
            FlowSpec {
                size: Bytes(0),
                ..spec()
            },
            Box::new(Dummy),
        );
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_flow_rejected() {
        Flow::new(
            FlowId(0),
            FlowSpec {
                dst: NodeId(0),
                ..spec()
            },
            Box::new(Dummy),
        );
    }
}
