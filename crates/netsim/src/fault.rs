//! Deterministic fault injection: per-link loss models, scheduled link
//! flaps with failover rerouting, and exponential RTO backoff.
//!
//! All fault randomness draws from a dedicated [`DetRng`] stream
//! ([`FAULT_STREAM`]) so enabling faults never perturbs the workload,
//! ECMP, or RED streams — and an empty [`FaultPlan`] performs zero
//! draws, keeping fault-free runs bit-identical to runs built before
//! this module existed (the same zero-cost-when-off contract as the
//! trace layer).

use dcsim::{DetRng, Nanos};

use crate::ids::NodeId;

/// The dedicated RNG stream label for fault injection (see
/// [`DetRng::stream`]). Streams 0–3 belong to the workload, ECMP, RED,
/// and probabilistic feedback; fault draws must never share them.
pub const FAULT_STREAM: u64 = 4;

/// Per-link, per-direction packet loss model, applied to each frame as
/// it begins transmission (the wire is held busy for the serialization
/// time; the frame simply never arrives).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent (Bernoulli) loss with probability `p` per packet —
    /// the classic uniform bit-error-rate abstraction.
    Uniform {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss: the channel wanders
    /// between a good and a bad state with per-packet transition
    /// probabilities, and each state has its own loss probability.
    GilbertElliott {
        /// P(good → bad), evaluated once per packet while good.
        p_enter_bad: f64,
        /// P(bad → good), evaluated once per packet while bad.
        p_exit_bad: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Uniform Bernoulli loss at rate `p`.
    pub fn uniform(p: f64) -> Self {
        LossModel::Uniform { p }
    }

    /// A bursty Gilbert–Elliott channel that is clean while good and
    /// loses `loss_bad` of packets while bad.
    pub fn bursty(p_enter_bad: f64, p_exit_bad: f64, loss_bad: f64) -> Self {
        LossModel::GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// The long-run average loss rate of the model (stationary
    /// distribution for Gilbert–Elliott).
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::Uniform { p } => p,
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                let denom = p_enter_bad + p_exit_bad;
                if denom <= 0.0 {
                    loss_good
                } else {
                    let pi_bad = p_enter_bad / denom;
                    loss_good * (1.0 - pi_bad) + loss_bad * pi_bad
                }
            }
        }
    }
}

/// Live loss-channel state for one link direction.
#[derive(Debug, Clone, Copy)]
pub struct LossState {
    model: LossModel,
    in_bad: bool,
}

impl LossState {
    /// A fresh channel, starting in the good state.
    pub fn new(model: LossModel) -> Self {
        LossState {
            model,
            in_bad: false,
        }
    }

    /// Advance the channel by one packet and decide whether that packet
    /// is lost. Draws come only from the caller-supplied fault stream.
    pub fn lose(&mut self, rng: &mut DetRng) -> bool {
        match self.model {
            LossModel::Uniform { p } => rng.chance(p),
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                if self.in_bad {
                    if rng.chance(p_exit_bad) {
                        self.in_bad = false;
                    }
                } else if rng.chance(p_enter_bad) {
                    self.in_bad = true;
                }
                rng.chance(if self.in_bad { loss_bad } else { loss_good })
            }
        }
    }

    /// Whether the channel is currently in the bad (bursty-loss) state.
    pub fn in_bad(&self) -> bool {
        self.in_bad
    }
}

/// A deterministic schedule of link-down/link-up transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSchedule {
    /// When the link first goes down.
    pub first_down: Nanos,
    /// How long each outage lasts ([`Nanos::MAX`] = stays down).
    pub down_for: Nanos,
    /// Down-to-down interval for repeated flaps (ignored when
    /// `cycles == 1`). Must exceed `down_for` to leave up-time.
    pub period: Nanos,
    /// Number of outages (≥ 1).
    pub cycles: u32,
}

impl FlapSchedule {
    /// A single outage of `down_for` starting at `at`.
    pub fn once(at: Nanos, down_for: Nanos) -> Self {
        FlapSchedule {
            first_down: at,
            down_for,
            period: Nanos::MAX,
            cycles: 1,
        }
    }

    /// A permanent cut at `at` (the link never comes back).
    pub fn permanent(at: Nanos) -> Self {
        FlapSchedule::once(at, Nanos::MAX)
    }

    /// `cycles` outages of `down_for`, one every `period`.
    pub fn periodic(first_down: Nanos, down_for: Nanos, period: Nanos, cycles: u32) -> Self {
        assert!(cycles >= 1, "a flap schedule needs at least one outage");
        assert!(
            cycles == 1 || period > down_for,
            "flap period must exceed the outage length"
        );
        FlapSchedule {
            first_down,
            down_for,
            period,
            cycles,
        }
    }

    /// Enumerate the `(time, link_up)` transitions of this schedule, in
    /// chronological order.
    pub fn transitions(&self) -> Vec<(Nanos, bool)> {
        let mut out = Vec::new();
        for k in 0..u64::from(self.cycles.max(1)) {
            let offset = self.period.as_u64().saturating_mul(k);
            let down = self.first_down.as_u64().saturating_add(offset);
            out.push((Nanos(down), false));
            let up = down.saturating_add(self.down_for.as_u64());
            if up < Nanos::MAX.as_u64() {
                out.push((Nanos(up), true));
            }
        }
        out
    }
}

/// Faults applied to one bidirectional link, identified by its
/// endpoints (both directions are affected symmetrically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Wire loss model, if any.
    pub loss: Option<LossModel>,
    /// Up/down schedule, if any.
    pub flap: Option<FlapSchedule>,
}

impl LinkFault {
    /// A fault entry for the `a`–`b` link with nothing enabled yet.
    pub fn on(a: NodeId, b: NodeId) -> Self {
        LinkFault {
            a,
            b,
            loss: None,
            flap: None,
        }
    }

    /// Attach a loss model.
    pub fn with_loss(mut self, model: LossModel) -> Self {
        self.loss = Some(model);
        self
    }

    /// Attach a flap schedule.
    pub fn with_flap(mut self, flap: FlapSchedule) -> Self {
        self.flap = Some(flap);
        self
    }
}

/// Exponential retransmission-timeout backoff policy.
///
/// The n-th consecutive timeout of a flow waits
/// `min(base · multiplier^n, cap)`, optionally stretched by a
/// deterministic jitter drawn from the fault stream. The backoff level
/// resets to zero whenever the cumulative ACK advances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtoBackoff {
    /// Per-timeout growth factor (1 = fixed timeout, i.e. the old
    /// `NetConfig::rto` behaviour).
    pub multiplier: u32,
    /// Upper bound on the backed-off timeout.
    pub cap: Nanos,
    /// Jitter fraction in `[0, 1)`: each armed timeout is stretched by
    /// `U[0, jitter_frac)` of itself. `0.0` (the default) draws
    /// nothing from the RNG at all.
    pub jitter_frac: f64,
}

impl Default for RtoBackoff {
    fn default() -> Self {
        RtoBackoff {
            multiplier: 2,
            cap: Nanos::from_millis(10),
            jitter_frac: 0.0,
        }
    }
}

impl RtoBackoff {
    /// A fixed timeout with no growth and no jitter (legacy behaviour).
    pub fn fixed() -> Self {
        RtoBackoff {
            multiplier: 1,
            cap: Nanos::MAX,
            jitter_frac: 0.0,
        }
    }

    /// The timeout for backoff `level` with base timeout `base`,
    /// capped (the cap never shrinks the timeout below `base`).
    pub fn timeout(&self, base: Nanos, level: u32) -> Nanos {
        let factor = u64::from(self.multiplier.max(1))
            .checked_pow(level)
            .unwrap_or(u64::MAX);
        let raw = base.as_u64().saturating_mul(factor);
        Nanos(raw.min(self.cap.as_u64().max(base.as_u64())))
    }

    /// The jitter to add on top of `timeout`. Zero — with zero RNG
    /// draws — when `jitter_frac` is 0.
    pub fn jitter(&self, timeout: Nanos, rng: &mut DetRng) -> Nanos {
        if self.jitter_frac <= 0.0 {
            return Nanos::ZERO;
        }
        let frac = self.jitter_frac.min(1.0) * rng.f64();
        let extra = (timeout.as_u64() as f64 * frac) as u64; // simlint: allow(D4) — jitter rounding; sub-ns precision is immaterial
        Nanos(extra)
    }
}

/// The full fault schedule for one run. An empty plan (the default) is
/// free: no draws, no extra events, no per-packet work.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-link fault entries.
    pub links: Vec<LinkFault>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Add one link's faults (builder style).
    pub fn link(mut self, fault: LinkFault) -> Self {
        self.links.push(fault);
        self
    }
}

/// Run counters for the fault subsystem, published through the metrics
/// registry and readable after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames destroyed by a wire loss model mid-transmission.
    pub wire_drops: u64,
    /// Frames flushed from a downed port's queue or caught in flight
    /// on a link that went down.
    pub link_down_drops: u64,
    /// Routing recomputations triggered by link state changes.
    pub reroutes: u64,
    /// RTO firings that rewound a sender (across all flows).
    pub rto_fires: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let b = RtoBackoff {
            multiplier: 2,
            cap: Nanos::from_micros(900),
            jitter_frac: 0.0,
        };
        let base = Nanos::from_micros(100);
        assert_eq!(b.timeout(base, 0), Nanos::from_micros(100));
        assert_eq!(b.timeout(base, 1), Nanos::from_micros(200));
        assert_eq!(b.timeout(base, 2), Nanos::from_micros(400));
        assert_eq!(b.timeout(base, 3), Nanos::from_micros(800));
        assert_eq!(b.timeout(base, 4), Nanos::from_micros(900)); // capped
        assert_eq!(b.timeout(base, 63), Nanos::from_micros(900));
    }

    #[test]
    fn cap_never_shrinks_below_base() {
        let b = RtoBackoff {
            multiplier: 2,
            cap: Nanos::from_micros(10),
            jitter_frac: 0.0,
        };
        let base = Nanos::from_micros(100);
        assert_eq!(b.timeout(base, 0), base);
        assert_eq!(b.timeout(base, 5), base);
    }

    #[test]
    fn fixed_policy_matches_legacy_rto() {
        let b = RtoBackoff::fixed();
        let base = Nanos::from_micros(100);
        for level in [0, 1, 7, 31] {
            assert_eq!(b.timeout(base, level), base);
        }
    }

    #[test]
    fn huge_levels_saturate() {
        let b = RtoBackoff {
            multiplier: 4,
            cap: Nanos::MAX,
            jitter_frac: 0.0,
        };
        // 4^40 overflows u64; the timeout must saturate, not wrap.
        assert_eq!(b.timeout(Nanos::from_micros(100), 40), Nanos::MAX);
    }

    #[test]
    fn zero_jitter_draws_nothing() {
        let b = RtoBackoff::default();
        let mut a = DetRng::new(7); // simlint: allow(D6) — test fixture RNG, not sim fault wiring
        let mut c = DetRng::new(7); // simlint: allow(D6) — test fixture RNG, not sim fault wiring
        assert_eq!(b.jitter(Nanos::from_micros(100), &mut a), Nanos::ZERO);
        // The RNG state is untouched: both generators still agree.
        assert_eq!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn jitter_is_bounded() {
        let b = RtoBackoff {
            jitter_frac: 0.5,
            ..RtoBackoff::default()
        };
        let mut rng = DetRng::new(42); // simlint: allow(D6) — test fixture RNG, not sim fault wiring
        let t = Nanos::from_micros(100);
        for _ in 0..100 {
            let j = b.jitter(t, &mut rng);
            assert!(j < Nanos::from_micros(50), "jitter {j:?} out of bounds");
        }
    }

    #[test]
    fn flap_transitions_enumerate_in_order() {
        let f = FlapSchedule::periodic(
            Nanos::from_micros(10),
            Nanos::from_micros(2),
            Nanos::from_micros(20),
            3,
        );
        let ts = f.transitions();
        assert_eq!(
            ts,
            vec![
                (Nanos::from_micros(10), false),
                (Nanos::from_micros(12), true),
                (Nanos::from_micros(30), false),
                (Nanos::from_micros(32), true),
                (Nanos::from_micros(50), false),
                (Nanos::from_micros(52), true),
            ]
        );
    }

    #[test]
    fn permanent_cut_has_no_up_transition() {
        let f = FlapSchedule::permanent(Nanos::from_micros(5));
        assert_eq!(f.transitions(), vec![(Nanos::from_micros(5), false)]);
    }

    #[test]
    fn gilbert_elliott_bursts_and_recovers() {
        let mut st = LossState::new(LossModel::bursty(0.05, 0.2, 0.8));
        let mut rng = DetRng::new(1234); // simlint: allow(D6) — test fixture RNG, not sim fault wiring
        let mut losses = 0u64;
        let mut bad_packets = 0u64;
        let n = 100_000u64;
        for _ in 0..n {
            if st.lose(&mut rng) {
                losses += 1;
            }
            if st.in_bad() {
                bad_packets += 1;
            }
        }
        // Stationary bad-state share is 0.05/(0.05+0.2) = 0.2; mean loss
        // is 0.8 * 0.2 = 0.16. Allow generous slack.
        let bad_share = bad_packets as f64 / n as f64;
        let loss_rate = losses as f64 / n as f64;
        assert!((0.15..0.25).contains(&bad_share), "bad share {bad_share}");
        assert!((0.12..0.20).contains(&loss_rate), "loss rate {loss_rate}");
        let expect = LossModel::bursty(0.05, 0.2, 0.8).mean_loss();
        assert!((expect - 0.16).abs() < 1e-12);
    }

    #[test]
    fn uniform_loss_rate_matches_p() {
        let mut st = LossState::new(LossModel::uniform(0.03));
        let mut rng = DetRng::new(99); // simlint: allow(D6) — test fixture RNG, not sim fault wiring
        let n = 100_000u64;
        let losses = (0..n).filter(|_| st.lose(&mut rng)).count() as f64;
        let rate = losses / n as f64;
        assert!((0.025..0.035).contains(&rate), "rate {rate}");
    }

    #[test]
    fn plan_builder_and_emptiness() {
        assert!(FaultPlan::none().is_empty());
        let plan = FaultPlan::none().link(
            LinkFault::on(NodeId(0), NodeId(1))
                .with_loss(LossModel::uniform(0.01))
                .with_flap(FlapSchedule::once(Nanos::from_micros(5), Nanos::MICRO)),
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.links.len(), 1);
        assert!(plan.links[0].loss.is_some());
        assert!(plan.links[0].flap.is_some());
    }
}
