//! `netsim` — a packet-level datacenter network simulator.
//!
//! This crate is the workspace's substitute for ns-3 plus the HPCC artifact's
//! RDMA stack: it models hosts, store-and-forward output-queued switches,
//! full-duplex links, and per-flow senders driven by any
//! [`faircc::CongestionControl`] implementation.
//!
//! # Model
//!
//! * **Links** are point-to-point and full duplex; each direction has a
//!   line rate and a propagation delay. The transmit queue for a direction
//!   lives at the sending node's [`Port`](port::Port).
//! * **Switches** are output-queued: a packet arriving on any ingress is
//!   immediately placed on the egress port chosen by the routing table
//!   (shortest paths, per-flow ECMP). Egress ports stamp INT telemetry on
//!   data packets and can RED-mark ECN.
//! * **Hosts** run one sender per outgoing flow. Senders are window-limited
//!   *and* paced (per [`faircc::SenderLimits`]); every data packet is
//!   acknowledged by the receiver, and ACKs consume reverse bandwidth.
//!   ECN-marked deliveries can trigger DCQCN CNPs, rate-limited per flow.
//! * **Losslessness**: RDMA fabrics are lossless (PFC). The evaluated
//!   protocols keep queues near zero, so the default model uses deep
//!   buffers and *measures* queue depth rather than dropping; an optional
//!   PFC pause model ([`pfc`]) is provided to verify queues stay below
//!   realistic XOFF thresholds.
//!
//! # Determinism
//!
//! Runs are bit-reproducible given a seed: FIFO event ordering comes from
//! `dcsim`, ECMP hashing is a pure function of (flow, switch), and all
//! randomness (RED marking) derives from per-subsystem RNG streams.
//!
//! # Quick example
//!
//! See `examples/quickstart.rs` at the workspace root for a two-flow
//! bottleneck walkthrough.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod flow;
pub mod ids;
pub mod monitor;
pub mod network;
pub mod packet;
pub mod pfc;
pub mod port;
pub mod routing;
pub mod run;
pub mod stats;
pub mod topology;

pub use fault::{
    FaultPlan, FaultStats, FlapSchedule, LinkFault, LossModel, RtoBackoff, FAULT_STREAM,
};
pub use flow::{Flow, FlowSpec};
pub use ids::{FlowId, NodeId, PortNo};
pub use monitor::{FctRecord, Monitor, MonitorConfig, Sample};
pub use network::{Event, NetBuilder, NetConfig, Network};
pub use packet::{Packet, PacketKind};
pub use port::RedConfig;
pub use run::{run_watched, RunOutcome};
pub use stats::{bottleneck, port_stats, PortStats};
pub use topology::{FatTreeConfig, Topology};
