//! Index newtypes for the network arenas.
//!
//! All simulator state lives in flat vectors; these wrappers keep host,
//! port, and flow indices from being mixed up at compile time while staying
//! `Copy` and four bytes wide.

/// Index of a node (host or switch) in the network arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Index of a port within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortNo(pub u16);

impl PortNo {
    /// The raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Index of a flow in the network's flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        assert_eq!(NodeId(7).idx(), 7);
        assert_eq!(PortNo(3).idx(), 3);
        assert_eq!(FlowId(11).idx(), 11);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        // BTreeSet rather than HashSet: the default RandomState hasher is
        // banned workspace-wide (simlint D1), and the point here is only
        // that ids implement Ord + Eq for use as deterministic keys.
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(NodeId(1));
        assert!(s.contains(&NodeId(1)));
        assert!(NodeId(1) < NodeId(2));
    }
}
