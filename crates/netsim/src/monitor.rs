//! Run instrumentation: flow-completion records, periodic throughput and
//! queue-depth samples.
//!
//! The paper's figures need three kinds of measurement:
//!
//! * **FCT records** (Figs. 2/3/8/9 scatter plots and Figs. 10-13 slowdown
//!   curves): `(flow, size, start, finish)` per completed flow.
//! * **Per-flow throughput samples** (Jain-index time series, Figs. 1/5/6):
//!   achieved goodput of each active flow over each sampling interval.
//! * **Queue-depth samples** (queue plots, Figs. 1/5/6): backlog of watched
//!   bottleneck ports at each sampling instant.

use dcsim::{Bytes, Nanos};

use crate::flow::Flow;
use crate::ids::{FlowId, NodeId, PortNo};

/// Completion record for one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FctRecord {
    /// Which flow.
    pub flow: FlowId,
    /// Flow size in payload bytes.
    pub size: Bytes,
    /// Sender start time.
    pub start: Nanos,
    /// Time the final acknowledgement reached the sender.
    pub finish: Nanos,
}

impl FctRecord {
    /// The flow completion time.
    pub fn fct(&self) -> Nanos {
        self.finish - self.start
    }
}

/// One periodic measurement instant.
#[derive(Debug, Clone)]
pub struct Sample {
    /// When the sample was taken.
    pub t: Nanos,
    /// Backlogs of the watched ports, in watch order, in bytes.
    pub queue_bytes: Vec<u64>,
    /// Goodput of each active flow over the interval ending at `t`,
    /// in bits/s. Flows that were inactive the whole interval are omitted.
    pub flow_rates: Vec<(FlowId, f64)>,
}

/// What to measure.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Interval between samples; `None` disables periodic sampling
    /// (FCTs are always recorded).
    pub sample_interval: Option<Nanos>,
    /// Stop sampling after this time (the experiment horizon).
    pub sample_until: Nanos,
    /// Egress ports whose backlog to record each sample.
    pub watch_ports: Vec<(NodeId, PortNo)>,
    /// Whether to record per-flow rates (disable for large datacenter runs
    /// where only FCTs matter — per-flow sampling is O(flows) per tick).
    pub track_flow_rates: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            sample_interval: None,
            sample_until: Nanos::MAX,
            watch_ports: Vec::new(),
            track_flow_rates: false,
        }
    }
}

/// Collects measurements during a run.
#[derive(Debug, Default)]
pub struct Monitor {
    /// Configuration.
    pub cfg: MonitorConfig,
    /// Completed-flow records, in completion order.
    pub fcts: Vec<FctRecord>,
    /// Periodic samples, in time order.
    pub samples: Vec<Sample>,
    last_acked: Vec<u64>,
    last_sample_at: Nanos,
}

impl Monitor {
    /// A monitor with the given configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor {
            cfg,
            ..Default::default()
        }
    }

    /// Record a flow completion.
    pub fn record_fct(&mut self, rec: FctRecord) {
        if self.fcts.len() == self.fcts.capacity() {
            // Completions arrive between events; grow in large steps so
            // steady-state recording never reallocates mid-run.
            self.fcts.reserve(1024);
        }
        self.fcts.push(rec);
    }

    /// Take one periodic sample. `queue_bytes` must align with
    /// `cfg.watch_ports`.
    pub fn take_sample(&mut self, now: Nanos, queue_bytes: Vec<u64>, flows: &[Flow]) {
        let dt = now.saturating_sub(self.last_sample_at).as_secs_f64();
        let want = if self.cfg.track_flow_rates {
            flows.len()
        } else {
            0
        };
        let mut flow_rates = Vec::with_capacity(want);
        if self.samples.len() == self.samples.capacity() {
            // Same amortization as `record_fct`: sampling runs on the
            // event loop, so growth must happen in rare large steps.
            self.samples.reserve(256);
        }
        if self.cfg.track_flow_rates {
            self.last_acked.resize(flows.len(), 0);
            for f in flows {
                let i = f.id.idx();
                let delta = f.acked - self.last_acked[i];
                // A flow contributes if it was active at any point in the
                // interval: it started before `now` and either is still
                // running or finished within the interval.
                let finished_in_interval =
                    f.finished.map(|t| t > self.last_sample_at).unwrap_or(true);
                if f.spec.start <= now && finished_in_interval && dt > 0.0 {
                    flow_rates.push((f.id, delta as f64 * 8.0 / dt));
                }
                self.last_acked[i] = f.acked;
            }
        }
        self.samples.push(Sample {
            t: now,
            queue_bytes,
            flow_rates,
        });
        self.last_sample_at = now;
    }

    /// Whether another sample should be scheduled after `now`.
    pub fn wants_sample_after(&self, now: Nanos) -> Option<Nanos> {
        let iv = self.cfg.sample_interval?;
        let next = now + iv;
        (next <= self.cfg.sample_until).then_some(next)
    }

    /// All completed-flow records.
    pub fn fcts(&self) -> &[FctRecord] {
        &self.fcts
    }

    /// All periodic samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Publish run-level measurement counters and the FCT histogram into
    /// the metrics registry.
    pub fn publish_metrics(&self, reg: &mut simtrace::MetricsRegistry) {
        reg.counter_set("monitor.fcts", self.fcts.len() as u64);
        reg.counter_set("monitor.samples", self.samples.len() as u64);
        for r in &self.fcts {
            reg.histogram_record("monitor.fct_ns", r.fct().as_u64());
            reg.histogram_record("monitor.flow_bytes", r.size.as_u64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use dcsim::BitRate;
    use faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};

    struct Dummy;
    impl CongestionControl for Dummy {
        fn on_ack(&mut self, _: &AckFeedback) {}
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(BitRate::from_gbps(100))
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "dummy"
        }
    }

    fn flow(id: u32, start_us: u64) -> Flow {
        Flow::new(
            FlowId(id),
            FlowSpec {
                src: NodeId(id),
                dst: NodeId(100),
                size: Bytes::from_mb(1),
                start: Nanos::from_micros(start_us),
            },
            Box::new(Dummy),
        )
    }

    #[test]
    fn fct_math() {
        let r = FctRecord {
            flow: FlowId(0),
            size: Bytes(1000),
            start: Nanos(100),
            finish: Nanos(350),
        };
        assert_eq!(r.fct(), Nanos(250));
    }

    #[test]
    fn sampling_computes_rates() {
        let mut m = Monitor::new(MonitorConfig {
            sample_interval: Some(Nanos::from_micros(10)),
            track_flow_rates: true,
            ..Default::default()
        });
        let mut flows = vec![flow(0, 0), flow(1, 0)];
        flows[0].acked = 0;
        flows[1].acked = 0;
        m.take_sample(Nanos::ZERO, vec![], &flows);

        flows[0].acked = 12_500; // 12.5 KB in 10 us = 10 Gbps
        flows[1].acked = 25_000; // 20 Gbps
        m.take_sample(Nanos::from_micros(10), vec![7], &flows);

        let s = &m.samples()[1];
        assert_eq!(s.queue_bytes, vec![7]);
        let rates: Vec<f64> = s.flow_rates.iter().map(|(_, r)| *r).collect();
        assert!((rates[0] - 1e10).abs() < 1.0, "{rates:?}");
        assert!((rates[1] - 2e10).abs() < 1.0);
    }

    #[test]
    fn finished_flows_leave_the_rate_set() {
        let mut m = Monitor::new(MonitorConfig {
            sample_interval: Some(Nanos::from_micros(10)),
            track_flow_rates: true,
            ..Default::default()
        });
        let mut flows = vec![flow(0, 0)];
        m.take_sample(Nanos::ZERO, vec![], &flows);
        flows[0].finished = Some(Nanos::from_micros(5));
        flows[0].acked = 1_000_000;
        // Finished within this interval: still contributes its last bytes.
        m.take_sample(Nanos::from_micros(10), vec![], &flows);
        assert_eq!(m.samples()[1].flow_rates.len(), 1);
        // Next interval: long finished, omitted.
        m.take_sample(Nanos::from_micros(20), vec![], &flows);
        assert!(m.samples()[2].flow_rates.is_empty());
    }

    #[test]
    fn unstarted_flows_are_omitted() {
        let mut m = Monitor::new(MonitorConfig {
            sample_interval: Some(Nanos::from_micros(10)),
            track_flow_rates: true,
            ..Default::default()
        });
        let flows = vec![flow(0, 1000)]; // starts at 1 ms
        m.take_sample(Nanos::ZERO, vec![], &flows);
        m.take_sample(Nanos::from_micros(10), vec![], &flows);
        assert!(m.samples()[1].flow_rates.is_empty());
    }

    #[test]
    fn sample_scheduling_respects_horizon() {
        let m = Monitor::new(MonitorConfig {
            sample_interval: Some(Nanos::from_micros(10)),
            sample_until: Nanos::from_micros(25),
            ..Default::default()
        });
        assert_eq!(
            m.wants_sample_after(Nanos::ZERO),
            Some(Nanos::from_micros(10))
        );
        assert_eq!(
            m.wants_sample_after(Nanos::from_micros(15)),
            Some(Nanos::from_micros(25))
        );
        assert_eq!(m.wants_sample_after(Nanos::from_micros(20)), None);
    }

    #[test]
    fn disabled_sampling_schedules_nothing() {
        let m = Monitor::new(MonitorConfig::default());
        assert_eq!(m.wants_sample_after(Nanos::ZERO), None);
    }
}
