//! Watched runs: drive a [`Network`] simulation with a stall watchdog.
//!
//! `Simulation::run_until` alone cannot distinguish "all flows done",
//! "horizon hit with flows still moving", and "flows wedged while the
//! clock keeps ticking" (e.g. a permanently partitioned fabric where RTO
//! timers keep the event queue alive forever). [`run_watched`] chunks the
//! run into watchdog windows, snapshots a progress signature between
//! chunks, and reports a structured [`RunOutcome`] instead of silently
//! burning the whole time limit.
//!
//! The chunking is *event-order transparent*: `run_with_budget` resumes
//! exactly where it stopped, so a watched run dispatches the same events
//! in the same order as a plain `run_until(deadline)` — traces and
//! event counts are byte-identical (pinned by a unit test below).

use dcsim::{Nanos, RunOutcome as EngineOutcome, Scheduler, Simulation};

use crate::ids::FlowId;
use crate::network::{Event, Network};

/// Why a watched run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every registered flow completed (and the run played out to its
    /// natural end: drain or deadline).
    Completed,
    /// The time horizon was reached with unfinished — but progressing —
    /// flows.
    Horizon,
    /// No flow delivered a byte over a full watchdog window while started
    /// flows remained unfinished: the run is wedged. The offenders are
    /// listed.
    Stalled {
        /// Flows started but unfinished at detection time.
        flows: Vec<FlowId>,
    },
    /// The event budget ran out (runaway protection).
    Budget,
}

impl RunOutcome {
    /// Whether the run ended with every flow complete.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// Short stable name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Horizon => "horizon",
            RunOutcome::Stalled { .. } => "stalled",
            RunOutcome::Budget => "budget",
        }
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Stalled { flows } => write!(f, "stalled ({} flows)", flows.len()),
            other => f.write_str(other.name()),
        }
    }
}

/// Run `sim` until `deadline` (with an event `budget` as runaway
/// protection), checking progress every `watchdog` of simulated time.
///
/// A run is declared [`Stalled`](RunOutcome::Stalled) when the network's
/// [progress signature](Network::progress_signature) does not change
/// across a full watchdog window while started flows remain unfinished.
/// Pick a `watchdog` comfortably above the network RTT *and* the largest
/// backed-off RTO, or slow-but-alive recovery reads as a stall.
/// The watchdog never ends a run early on *completion* — trailing timer
/// events still play out to the deadline exactly as they would under
/// `run_until`, keeping watched and unwatched runs event-identical.
pub fn run_watched<S: Scheduler<Event>>(
    sim: &mut Simulation<Network, S>,
    deadline: Nanos,
    budget: u64,
    watchdog: Nanos,
) -> RunOutcome {
    assert!(watchdog > Nanos::ZERO, "watchdog horizon must be positive");
    let mut remaining = budget;
    let mut last_sig = None;
    loop {
        let chunk_end = deadline.min(sim.now() + watchdog); // Add saturates
        let before = sim.events_handled();
        let out = sim.run_with_budget(chunk_end, remaining);
        remaining = remaining.saturating_sub(sim.events_handled() - before);
        match out {
            EngineOutcome::Drained => {
                return if sim.world().all_finished() {
                    RunOutcome::Completed
                } else {
                    // Queue empty with flows pending: no timer left that
                    // could ever save them.
                    RunOutcome::Stalled {
                        flows: sim.world().unfinished_started(sim.now()),
                    }
                };
            }
            EngineOutcome::BudgetExhausted => return RunOutcome::Budget,
            EngineOutcome::DeadlineReached => {
                let now = sim.now();
                if now >= deadline {
                    return if sim.world().all_finished() {
                        RunOutcome::Completed
                    } else {
                        RunOutcome::Horizon
                    };
                }
                let sig = sim.world().progress_signature(now);
                if last_sig == Some(sig) {
                    let flows = sim.world().unfinished_started(now);
                    if !flows.is_empty() {
                        return RunOutcome::Stalled { flows };
                    }
                }
                last_sig = Some(sig);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FlapSchedule, LinkFault};
    use crate::flow::FlowSpec;
    use crate::monitor::MonitorConfig;
    use crate::network::{NetBuilder, NetConfig};
    use dcsim::{BitRate, Bytes};
    use faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};

    struct FixedRate(BitRate);
    impl CongestionControl for FixedRate {
        fn on_ack(&mut self, _: &AckFeedback) {}
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(self.0)
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    /// h0 - s0 - s1 - h1 dumbbell with an optional fault plan.
    fn dumbbell(faults: FaultPlan) -> Simulation<crate::network::Network> {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        b.link(h0, s0, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(s0, s1, BitRate::from_gbps(100), Nanos::MICRO);
        b.link(s1, h1, BitRate::from_gbps(100), Nanos::MICRO);
        let mut net = b.build(
            NetConfig {
                rto: Nanos::from_micros(50),
                faults,
                ..NetConfig::default()
            },
            MonitorConfig::default(),
        );
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(500_000),
                start: Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(100))),
        );
        let mut sim = dcsim::Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim
    }

    #[test]
    fn healthy_run_completes() {
        let mut sim = dumbbell(FaultPlan::none());
        let out = run_watched(
            &mut sim,
            Nanos::from_millis(100),
            u64::MAX,
            Nanos::from_millis(1),
        );
        assert_eq!(out, RunOutcome::Completed);
        assert!(out.is_complete());
        assert!(sim.world().all_finished());
    }

    #[test]
    fn watched_run_is_event_identical_to_plain_run() {
        let deadline = Nanos::from_millis(100);
        let mut plain = dumbbell(FaultPlan::none());
        plain.run_until(deadline);
        let mut watched = dumbbell(FaultPlan::none());
        run_watched(&mut watched, deadline, u64::MAX, Nanos::from_micros(7));
        assert_eq!(plain.events_handled(), watched.events_handled());
        assert_eq!(
            plain.world().monitor.fcts()[0].fct(),
            watched.world().monitor.fcts()[0].fct()
        );
    }

    #[test]
    fn permanent_partition_reports_stall() {
        // Cut the only fabric link mid-flow: the sender's RTO keeps the
        // queue alive forever, but no byte can ever be delivered.
        let s0 = crate::ids::NodeId(2);
        let s1 = crate::ids::NodeId(3);
        let mut sim = dumbbell(FaultPlan::none().link(
            LinkFault::on(s0, s1).with_flap(FlapSchedule::permanent(Nanos::from_micros(10))),
        ));
        let out = run_watched(
            &mut sim,
            Nanos::from_millis(500),
            u64::MAX,
            Nanos::from_millis(1),
        );
        match out {
            RunOutcome::Stalled { flows } => assert_eq!(flows, vec![FlowId(0)]),
            other => panic!("expected a stall, got {other}"),
        }
        // Detection came well before the full horizon burned.
        assert!(sim.now() < Nanos::from_millis(500));
    }

    #[test]
    fn short_horizon_reports_horizon() {
        let mut sim = dumbbell(FaultPlan::none());
        // 500 KB at 100 Gbps needs ~40us; stop at 20us while progressing.
        // The watchdog must exceed the ~6us RTT or the pre-first-ACK
        // window would read as a (false) stall.
        let out = run_watched(
            &mut sim,
            Nanos::from_micros(20),
            u64::MAX,
            Nanos::from_micros(10),
        );
        assert_eq!(out, RunOutcome::Horizon);
    }

    #[test]
    fn tiny_budget_reports_budget() {
        let mut sim = dumbbell(FaultPlan::none());
        let out = run_watched(&mut sim, Nanos::from_millis(100), 50, Nanos::from_millis(1));
        assert_eq!(out, RunOutcome::Budget);
    }

    #[test]
    fn outcome_display_names() {
        assert_eq!(RunOutcome::Completed.to_string(), "completed");
        assert_eq!(RunOutcome::Horizon.to_string(), "horizon");
        assert_eq!(RunOutcome::Budget.to_string(), "budget");
        assert_eq!(
            RunOutcome::Stalled {
                flows: vec![FlowId(0), FlowId(2)]
            }
            .to_string(),
            "stalled (2 flows)"
        );
    }
}
