//! Packets and the recycling pool.
//!
//! Packets are the hottest allocation in the simulator, so they are boxed
//! once and recycled through a free list: a data packet's box is reused for
//! its ACK at the receiver, and ACK boxes return to the pool when consumed
//! at the sender.

use dcsim::Nanos;
use faircc::IntStack;

use crate::ids::{FlowId, NodeId, PortNo};

/// What kind of frame this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Payload-carrying data segment of a flow.
    Data,
    /// Per-packet acknowledgement, carrying the echoed INT stack, ECN echo,
    /// and send timestamp.
    Ack,
    /// DCQCN Congestion Notification Packet.
    Cnp,
    /// Go-back-N negative acknowledgement: `seq` carries the receiver's
    /// expected byte offset; the sender rewinds there (lossy mode only).
    Nack,
}

/// One frame in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Frame kind.
    pub kind: PacketKind,
    /// The flow this frame belongs to.
    pub flow: FlowId,
    /// Node the frame is travelling from (sender of this frame).
    pub src: NodeId,
    /// Node the frame is travelling to.
    pub dst: NodeId,
    /// For `Data`: byte offset of the first payload byte.
    /// For `Ack`: cumulative acknowledgement (all bytes `< seq` received).
    pub seq: u64,
    /// Bytes on the wire (payload + headers for data, header-only for
    /// ACK/CNP).
    pub wire_size: u32,
    /// Payload bytes carried (`Data`) or newly acknowledged (`Ack`).
    pub payload: u32,
    /// When the original data packet left the sender (echoed in the ACK so
    /// the sender can compute an RTT).
    pub sent_at: Nanos,
    /// ECN congestion-experienced mark (set by RED, echoed by the ACK).
    pub ecn: bool,
    /// Number of switch egress ports traversed so far (Swift's hop count).
    pub hops: u8,
    /// Fault injection: the `(node, port)` whose wire this frame is
    /// currently propagating on, stamped at transmit start so a
    /// mid-flight link-down can kill it on arrival. `None` outside
    /// fault-injection runs (stamping is gated to keep the hot path
    /// untouched when faults are off).
    pub via: Option<(NodeId, PortNo)>,
    /// INT telemetry accumulated on the forward path.
    pub int: IntStack,
}

impl Packet {
    /// A blank packet (pool backing storage).
    fn blank() -> Self {
        Packet {
            kind: PacketKind::Data,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(0),
            seq: 0,
            wire_size: 0,
            payload: 0,
            sent_at: Nanos::ZERO,
            ecn: false,
            hops: 0,
            via: None,
            int: IntStack::new(),
        }
    }

    /// Turn this (data) packet into its acknowledgement in place,
    /// preserving the INT stack, ECN mark, hop count, and send timestamp,
    /// and reversing the direction.
    pub fn into_ack(&mut self, ack_wire_size: u32) {
        debug_assert_eq!(self.kind, PacketKind::Data);
        self.kind = PacketKind::Ack;
        std::mem::swap(&mut self.src, &mut self.dst);
        self.seq += self.payload as u64; // cumulative ack past this segment
        self.payload = self.wire_size_payload();
        self.wire_size = ack_wire_size;
    }

    fn wire_size_payload(&self) -> u32 {
        self.payload
    }
}

/// A free list of packet boxes.
///
/// `get` hands out a recycled box when available (INT stack cleared, all
/// fields overwritten by the caller via the returned `&mut`), `put` returns
/// one. The pool never shrinks; its high-water mark equals the peak number
/// of packets simultaneously in flight.
#[derive(Debug, Default)]
pub struct PacketPool {
    // Deliberately boxed: the same boxes circulate through the event
    // queue, so the free list must hold allocations, not values.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Packet>>,
    allocated: u64,
    recycled: u64,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        PacketPool::default()
    }

    /// Acquire a packet box; fields are reset to blank.
    pub fn get(&mut self) -> Box<Packet> {
        match self.free.pop() {
            Some(mut p) => {
                self.recycled += 1;
                *p = Packet::blank();
                p
            }
            None => {
                self.allocated += 1;
                Box::new(Packet::blank())
            }
        }
    }

    /// Return a packet box to the pool.
    pub fn put(&mut self, p: Box<Packet>) {
        self.free.push(p);
    }

    /// (fresh allocations, recycled grabs) — instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (self.allocated, self.recycled)
    }

    /// Boxes currently sitting in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Boxes currently held by callers (in flight through the event queue).
    ///
    /// Every live box was allocated exactly once and is not in the free
    /// list, so `live = allocated − free_len` — the invariant the pool
    /// unit tests pin down.
    pub fn live(&self) -> u64 {
        self.allocated - self.free.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::{BitRate, Bytes};
    use faircc::IntHop;

    #[test]
    fn into_ack_reverses_and_accumulates() {
        let mut p = Packet::blank();
        p.kind = PacketKind::Data;
        p.src = NodeId(1);
        p.dst = NodeId(2);
        p.seq = 5000;
        p.payload = 1000;
        p.wire_size = 1000;
        p.sent_at = Nanos(42);
        p.ecn = true;
        p.int.push(IntHop {
            qlen: Bytes(77),
            tx_bytes: 1,
            ts: Nanos(9),
            rate: BitRate::from_gbps(100),
        });

        p.into_ack(60);
        assert_eq!(p.kind, PacketKind::Ack);
        assert_eq!(p.src, NodeId(2));
        assert_eq!(p.dst, NodeId(1));
        assert_eq!(p.seq, 6000); // cumulative
        assert_eq!(p.wire_size, 60);
        assert_eq!(p.sent_at, Nanos(42)); // echoed for RTT
        assert!(p.ecn);
        assert_eq!(p.int.len(), 1); // telemetry preserved
    }

    #[test]
    fn pool_recycles() {
        let mut pool = PacketPool::new();
        let a = pool.get();
        let b = pool.get();
        pool.put(a);
        pool.put(b);
        let _c = pool.get();
        let _d = pool.get();
        let (alloc, recyc) = pool.stats();
        assert_eq!(alloc, 2);
        assert_eq!(recyc, 2);
    }

    #[test]
    fn recycled_packets_are_blank() {
        let mut pool = PacketPool::new();
        let mut p = pool.get();
        p.ecn = true;
        p.seq = 99;
        p.int.push(IntHop::default());
        pool.put(p);
        let q = pool.get();
        assert!(!q.ecn);
        assert_eq!(q.seq, 0);
        assert!(q.int.is_empty());
    }

    #[test]
    fn get_after_put_recycles_and_moves_counters() {
        let mut pool = PacketPool::new();
        let a = pool.get();
        assert_eq!(pool.stats(), (1, 0));
        pool.put(a);
        assert_eq!(pool.free_len(), 1);
        let _b = pool.get();
        // The box came from the free list, not a fresh allocation.
        assert_eq!(pool.stats(), (1, 1));
        assert_eq!(pool.free_len(), 0);
    }

    #[test]
    fn recycled_boxes_come_back_fully_blanked() {
        let mut pool = PacketPool::new();
        let mut p = pool.get();
        // Dirty every field.
        p.kind = PacketKind::Nack;
        p.flow = FlowId(7);
        p.src = NodeId(1);
        p.dst = NodeId(2);
        p.seq = 42;
        p.wire_size = 999;
        p.payload = 123;
        p.sent_at = Nanos(55);
        p.ecn = true;
        p.hops = 9;
        p.via = Some((NodeId(3), PortNo(1)));
        p.int.push(IntHop::default());
        pool.put(p);
        let q = pool.get();
        assert_eq!(q.kind, PacketKind::Data);
        assert_eq!(q.flow, FlowId(0));
        assert_eq!(q.src, NodeId(0));
        assert_eq!(q.dst, NodeId(0));
        assert_eq!(q.seq, 0);
        assert_eq!(q.wire_size, 0);
        assert_eq!(q.payload, 0);
        assert_eq!(q.sent_at, Nanos::ZERO);
        assert!(!q.ecn);
        assert_eq!(q.hops, 0);
        assert_eq!(q.via, None);
        assert!(q.int.is_empty());
    }

    #[test]
    fn live_count_tracks_a_simulated_burst() {
        // Simulate an incast-like burst: grab a wave of packets, return a
        // ragged subset, grab again — at every point the number of boxes
        // held by the "simulation" equals pool.live().
        let mut pool = PacketPool::new();
        let mut in_flight = Vec::new();
        for round in 0..8 {
            for _ in 0..(16 + round * 3) {
                in_flight.push(pool.get());
                assert_eq!(pool.live(), in_flight.len() as u64);
            }
            // Deliver (return) roughly two-thirds of the wave.
            let keep = in_flight.len() / 3;
            for p in in_flight.drain(keep..) {
                pool.put(p);
            }
            assert_eq!(pool.live(), in_flight.len() as u64);
        }
        let (alloc, recyc) = pool.stats();
        assert!(recyc > 0, "bursts after the first must recycle");
        // allocated counts distinct boxes ever created; everything not in
        // the free list is still held.
        assert_eq!(alloc, pool.live() + pool.free_len() as u64);
        // Drain completely: nothing live, every box back in the pool.
        for p in in_flight.drain(..) {
            pool.put(p);
        }
        assert_eq!(pool.live(), 0);
        assert_eq!(alloc, pool.free_len() as u64);
    }
}
