//! Packets and the recycling pool.
//!
//! Packets are the hottest allocation in the simulator, so they are boxed
//! once and recycled through a free list: a data packet's box is reused for
//! its ACK at the receiver, and ACK boxes return to the pool when consumed
//! at the sender.

use dcsim::Nanos;
use faircc::IntStack;

use crate::ids::{FlowId, NodeId};

/// What kind of frame this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Payload-carrying data segment of a flow.
    Data,
    /// Per-packet acknowledgement, carrying the echoed INT stack, ECN echo,
    /// and send timestamp.
    Ack,
    /// DCQCN Congestion Notification Packet.
    Cnp,
    /// Go-back-N negative acknowledgement: `seq` carries the receiver's
    /// expected byte offset; the sender rewinds there (lossy mode only).
    Nack,
}

/// One frame in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Frame kind.
    pub kind: PacketKind,
    /// The flow this frame belongs to.
    pub flow: FlowId,
    /// Node the frame is travelling from (sender of this frame).
    pub src: NodeId,
    /// Node the frame is travelling to.
    pub dst: NodeId,
    /// For `Data`: byte offset of the first payload byte.
    /// For `Ack`: cumulative acknowledgement (all bytes `< seq` received).
    pub seq: u64,
    /// Bytes on the wire (payload + headers for data, header-only for
    /// ACK/CNP).
    pub wire_size: u32,
    /// Payload bytes carried (`Data`) or newly acknowledged (`Ack`).
    pub payload: u32,
    /// When the original data packet left the sender (echoed in the ACK so
    /// the sender can compute an RTT).
    pub sent_at: Nanos,
    /// ECN congestion-experienced mark (set by RED, echoed by the ACK).
    pub ecn: bool,
    /// Number of switch egress ports traversed so far (Swift's hop count).
    pub hops: u8,
    /// INT telemetry accumulated on the forward path.
    pub int: IntStack,
}

impl Packet {
    /// A blank packet (pool backing storage).
    fn blank() -> Self {
        Packet {
            kind: PacketKind::Data,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(0),
            seq: 0,
            wire_size: 0,
            payload: 0,
            sent_at: Nanos::ZERO,
            ecn: false,
            hops: 0,
            int: IntStack::new(),
        }
    }

    /// Turn this (data) packet into its acknowledgement in place,
    /// preserving the INT stack, ECN mark, hop count, and send timestamp,
    /// and reversing the direction.
    pub fn into_ack(&mut self, ack_wire_size: u32) {
        debug_assert_eq!(self.kind, PacketKind::Data);
        self.kind = PacketKind::Ack;
        std::mem::swap(&mut self.src, &mut self.dst);
        self.seq += self.payload as u64; // cumulative ack past this segment
        self.payload = self.wire_size_payload();
        self.wire_size = ack_wire_size;
    }

    fn wire_size_payload(&self) -> u32 {
        self.payload
    }
}

/// A free list of packet boxes.
///
/// `get` hands out a recycled box when available (INT stack cleared, all
/// fields overwritten by the caller via the returned `&mut`), `put` returns
/// one. The pool never shrinks; its high-water mark equals the peak number
/// of packets simultaneously in flight.
#[derive(Debug, Default)]
pub struct PacketPool {
    // Deliberately boxed: the same boxes circulate through the event
    // queue, so the free list must hold allocations, not values.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Packet>>,
    allocated: u64,
    recycled: u64,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        PacketPool::default()
    }

    /// Acquire a packet box; fields are reset to blank.
    pub fn get(&mut self) -> Box<Packet> {
        match self.free.pop() {
            Some(mut p) => {
                self.recycled += 1;
                *p = Packet::blank();
                p
            }
            None => {
                self.allocated += 1;
                Box::new(Packet::blank())
            }
        }
    }

    /// Return a packet box to the pool.
    pub fn put(&mut self, p: Box<Packet>) {
        self.free.push(p);
    }

    /// (fresh allocations, recycled grabs) — instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (self.allocated, self.recycled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::{BitRate, Bytes};
    use faircc::IntHop;

    #[test]
    fn into_ack_reverses_and_accumulates() {
        let mut p = Packet::blank();
        p.kind = PacketKind::Data;
        p.src = NodeId(1);
        p.dst = NodeId(2);
        p.seq = 5000;
        p.payload = 1000;
        p.wire_size = 1000;
        p.sent_at = Nanos(42);
        p.ecn = true;
        p.int.push(IntHop {
            qlen: Bytes(77),
            tx_bytes: 1,
            ts: Nanos(9),
            rate: BitRate::from_gbps(100),
        });

        p.into_ack(60);
        assert_eq!(p.kind, PacketKind::Ack);
        assert_eq!(p.src, NodeId(2));
        assert_eq!(p.dst, NodeId(1));
        assert_eq!(p.seq, 6000); // cumulative
        assert_eq!(p.wire_size, 60);
        assert_eq!(p.sent_at, Nanos(42)); // echoed for RTT
        assert!(p.ecn);
        assert_eq!(p.int.len(), 1); // telemetry preserved
    }

    #[test]
    fn pool_recycles() {
        let mut pool = PacketPool::new();
        let a = pool.get();
        let b = pool.get();
        pool.put(a);
        pool.put(b);
        let _c = pool.get();
        let _d = pool.get();
        let (alloc, recyc) = pool.stats();
        assert_eq!(alloc, 2);
        assert_eq!(recyc, 2);
    }

    #[test]
    fn recycled_packets_are_blank() {
        let mut pool = PacketPool::new();
        let mut p = pool.get();
        p.ecn = true;
        p.seq = 99;
        p.int.push(IntHop::default());
        pool.put(p);
        let q = pool.get();
        assert!(!q.ecn);
        assert_eq!(q.seq, 0);
        assert!(q.int.is_empty());
    }
}
