//! Packets and the generation-indexed slab pool.
//!
//! Packets are the hottest allocation in the simulator. Instead of boxing
//! each one and circulating the boxes through the event queue, all packets
//! live in one contiguous slab owned by the pool; the event queue carries
//! copyable [`PacketHandle`]s (index + generation). Events shrink from a
//! heap pointer to 8 inline bytes, the per-packet `Box::new` disappears
//! from the hot path entirely, and packet storage becomes cache-dense.
//!
//! Generations make handle misuse detectable: freeing a slot bumps its
//! generation, so a stale handle (or a double free) no longer matches.
//! Under `sim-audit` a mismatch panics at the offending call; in release
//! builds a double free is ignored (never corrupting the free list) and
//! stale accesses are caught by `debug_assert`.

use dcsim::Nanos;
use faircc::IntStack;

use crate::ids::{FlowId, NodeId, PortNo};

/// What kind of frame this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Payload-carrying data segment of a flow.
    Data,
    /// Per-packet acknowledgement, carrying the echoed INT stack, ECN echo,
    /// and send timestamp.
    Ack,
    /// DCQCN Congestion Notification Packet.
    Cnp,
    /// Go-back-N negative acknowledgement: `seq` carries the receiver's
    /// expected byte offset; the sender rewinds there (lossy mode only).
    Nack,
}

/// One frame in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Frame kind.
    pub kind: PacketKind,
    /// The flow this frame belongs to.
    pub flow: FlowId,
    /// Node the frame is travelling from (sender of this frame).
    pub src: NodeId,
    /// Node the frame is travelling to.
    pub dst: NodeId,
    /// For `Data`: byte offset of the first payload byte.
    /// For `Ack`: cumulative acknowledgement (all bytes `< seq` received).
    pub seq: u64,
    /// Bytes on the wire (payload + headers for data, header-only for
    /// ACK/CNP).
    pub wire_size: u32,
    /// Payload bytes carried (`Data`) or newly acknowledged (`Ack`).
    pub payload: u32,
    /// When the original data packet left the sender (echoed in the ACK so
    /// the sender can compute an RTT).
    pub sent_at: Nanos,
    /// ECN congestion-experienced mark (set by RED, echoed by the ACK).
    pub ecn: bool,
    /// Number of switch egress ports traversed so far (Swift's hop count).
    pub hops: u8,
    /// Fault injection: the `(node, port)` whose wire this frame is
    /// currently propagating on, stamped at transmit start so a
    /// mid-flight link-down can kill it on arrival. `None` outside
    /// fault-injection runs (stamping is gated to keep the hot path
    /// untouched when faults are off).
    pub via: Option<(NodeId, PortNo)>,
    /// INT telemetry accumulated on the forward path.
    pub int: IntStack,
}

impl Packet {
    /// A blank packet (pool backing storage).
    fn blank() -> Self {
        Packet {
            kind: PacketKind::Data,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(0),
            seq: 0,
            wire_size: 0,
            payload: 0,
            sent_at: Nanos::ZERO,
            ecn: false,
            hops: 0,
            via: None,
            int: IntStack::new(),
        }
    }

    /// Turn this (data) packet into its acknowledgement in place,
    /// preserving the INT stack, ECN mark, hop count, and send timestamp,
    /// and reversing the direction.
    pub fn into_ack(&mut self, ack_wire_size: u32) {
        debug_assert_eq!(self.kind, PacketKind::Data);
        self.kind = PacketKind::Ack;
        std::mem::swap(&mut self.src, &mut self.dst);
        self.seq += self.payload as u64; // cumulative ack past this segment
        self.payload = self.wire_size_payload();
        self.wire_size = ack_wire_size;
    }

    fn wire_size_payload(&self) -> u32 {
        self.payload
    }
}

/// A copyable reference to a packet in a [`PacketPool`] slab.
///
/// The generation ties the handle to one lifetime of its slot: freeing the
/// slot bumps the slot's generation, so every handle issued before the
/// free stops matching. 8 bytes, `Copy` — cheap enough to sit inline in
/// the event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHandle {
    idx: u32,
    gen: u32,
}

/// One slab slot: the packet plus the generation of its current lifetime.
#[derive(Debug)]
struct Slot {
    pkt: Packet,
    gen: u32,
}

/// A generation-indexed slab of packets with a LIFO free list.
///
/// [`alloc`] hands out a handle to a blanked slot (recycling the most
/// recently freed one when available), [`free`] returns a slot and bumps
/// its generation. The slab never shrinks; its high-water mark equals the
/// peak number of packets simultaneously in flight.
///
/// [`alloc`]: PacketPool::alloc
/// [`free`]: PacketPool::free
#[derive(Debug, Default)]
pub struct PacketPool {
    slots: Vec<Slot>,
    /// Indices of free slots, popped LIFO — the same reuse order as the
    /// old boxed free list, so allocation patterns (and anything derived
    /// from them) are unchanged.
    free: Vec<u32>,
    recycled: u64,
    /// Peak live-slot count ever observed (published to metrics).
    live_hwm: usize,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        PacketPool::default()
    }

    /// Acquire a handle to a blank packet slot.
    pub fn alloc(&mut self) -> PacketHandle {
        let h = match self.free.pop() {
            Some(idx) => {
                self.recycled += 1;
                let slot = &mut self.slots[idx as usize];
                slot.pkt = Packet::blank();
                PacketHandle { idx, gen: slot.gen }
            }
            None => {
                let idx = self.slots.len() as u32;
                if self.slots.len() == self.slots.capacity() {
                    // The slab only grows while the live-packet high-water
                    // mark is still rising; chunked reservation makes a
                    // growing burst pay one reallocation, not one per packet.
                    self.slots.reserve(256);
                }
                self.slots.push(Slot {
                    pkt: Packet::blank(),
                    gen: 0,
                });
                PacketHandle { idx, gen: 0 }
            }
        };
        self.live_hwm = self.live_hwm.max(self.live() as usize);
        h
    }

    /// Return a slot to the pool, invalidating every outstanding handle
    /// to it. A double free (or a stale handle) panics under `sim-audit`;
    /// without the feature it is ignored, so the free list can never hold
    /// the same slot twice.
    pub fn free(&mut self, h: PacketHandle) {
        let slot = &mut self.slots[h.idx as usize];
        dcsim::audit_assert_eq!(
            slot.gen,
            h.gen,
            "packet pool double free or stale handle on slot {}",
            h.idx
        );
        if slot.gen != h.gen {
            return;
        }
        slot.gen = slot.gen.wrapping_add(1);
        if self.free.len() == self.free.capacity() {
            // The free list can hold at most one entry per slab slot, so
            // this settles at the slab's own high-water capacity.
            self.free.reserve(256);
        }
        self.free.push(h.idx);
    }

    /// Read a live packet.
    pub fn get(&self, h: PacketHandle) -> &Packet {
        let slot = &self.slots[h.idx as usize];
        dcsim::audit_assert_eq!(
            slot.gen,
            h.gen,
            "stale packet handle read on slot {}",
            h.idx
        );
        debug_assert_eq!(slot.gen, h.gen, "stale packet handle on slot {}", h.idx);
        &slot.pkt
    }

    /// Mutate a live packet.
    pub fn get_mut(&mut self, h: PacketHandle) -> &mut Packet {
        let slot = &mut self.slots[h.idx as usize];
        dcsim::audit_assert_eq!(
            slot.gen,
            h.gen,
            "stale packet handle write on slot {}",
            h.idx
        );
        debug_assert_eq!(slot.gen, h.gen, "stale packet handle on slot {}", h.idx);
        &mut slot.pkt
    }

    /// (fresh slot allocations, recycled grabs) — instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (self.slots.len() as u64, self.recycled)
    }

    /// Slots currently sitting in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Slots currently held by callers (in flight through the event queue).
    ///
    /// Every slot was created exactly once and is either free or live, so
    /// `live = slots − free_len` — the invariant the pool unit tests pin
    /// down.
    pub fn live(&self) -> u64 {
        (self.slots.len() - self.free.len()) as u64
    }

    /// Peak simultaneous live-slot count — the slab's working-set size.
    pub fn live_hwm(&self) -> u64 {
        self.live_hwm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::{BitRate, Bytes};
    use faircc::IntHop;

    #[test]
    fn into_ack_reverses_and_accumulates() {
        let mut p = Packet::blank();
        p.kind = PacketKind::Data;
        p.src = NodeId(1);
        p.dst = NodeId(2);
        p.seq = 5000;
        p.payload = 1000;
        p.wire_size = 1000;
        p.sent_at = Nanos(42);
        p.ecn = true;
        p.int.push(IntHop {
            qlen: Bytes(77),
            tx_bytes: 1,
            ts: Nanos(9),
            rate: BitRate::from_gbps(100),
        });

        p.into_ack(60);
        assert_eq!(p.kind, PacketKind::Ack);
        assert_eq!(p.src, NodeId(2));
        assert_eq!(p.dst, NodeId(1));
        assert_eq!(p.seq, 6000); // cumulative
        assert_eq!(p.wire_size, 60);
        assert_eq!(p.sent_at, Nanos(42)); // echoed for RTT
        assert!(p.ecn);
        assert_eq!(p.int.len(), 1); // telemetry preserved
    }

    #[test]
    fn handles_are_copyable_and_small() {
        // The whole point of the slab: an event payload that fits inline.
        assert_eq!(std::mem::size_of::<PacketHandle>(), 8);
        let mut pool = PacketPool::new();
        let h = pool.alloc();
        let h2 = h; // Copy, no move-out
        assert_eq!(h, h2);
        pool.free(h);
    }

    #[test]
    fn pool_recycles() {
        let mut pool = PacketPool::new();
        let a = pool.alloc();
        let b = pool.alloc();
        pool.free(a);
        pool.free(b);
        let _c = pool.alloc();
        let _d = pool.alloc();
        let (alloc, recyc) = pool.stats();
        assert_eq!(alloc, 2);
        assert_eq!(recyc, 2);
    }

    #[test]
    fn recycled_packets_are_blank() {
        let mut pool = PacketPool::new();
        let h = pool.alloc();
        let p = pool.get_mut(h);
        p.ecn = true;
        p.seq = 99;
        p.int.push(IntHop::default());
        pool.free(h);
        let fresh = pool.alloc();
        let q = pool.get(fresh);
        assert!(!q.ecn);
        assert_eq!(q.seq, 0);
        assert!(q.int.is_empty());
    }

    #[test]
    fn alloc_after_free_recycles_and_moves_counters() {
        let mut pool = PacketPool::new();
        let a = pool.alloc();
        assert_eq!(pool.stats(), (1, 0));
        pool.free(a);
        assert_eq!(pool.free_len(), 1);
        let _b = pool.alloc();
        // The slot came from the free list, not a fresh slab grow.
        assert_eq!(pool.stats(), (1, 1));
        assert_eq!(pool.free_len(), 0);
    }

    #[test]
    fn recycled_slots_come_back_fully_blanked() {
        let mut pool = PacketPool::new();
        let h = pool.alloc();
        let p = pool.get_mut(h);
        // Dirty every field.
        p.kind = PacketKind::Nack;
        p.flow = FlowId(7);
        p.src = NodeId(1);
        p.dst = NodeId(2);
        p.seq = 42;
        p.wire_size = 999;
        p.payload = 123;
        p.sent_at = Nanos(55);
        p.ecn = true;
        p.hops = 9;
        p.via = Some((NodeId(3), PortNo(1)));
        p.int.push(IntHop::default());
        pool.free(h);
        let fresh = pool.alloc();
        let q = pool.get(fresh);
        assert_eq!(q.kind, PacketKind::Data);
        assert_eq!(q.flow, FlowId(0));
        assert_eq!(q.src, NodeId(0));
        assert_eq!(q.dst, NodeId(0));
        assert_eq!(q.seq, 0);
        assert_eq!(q.wire_size, 0);
        assert_eq!(q.payload, 0);
        assert_eq!(q.sent_at, Nanos::ZERO);
        assert!(!q.ecn);
        assert_eq!(q.hops, 0);
        assert_eq!(q.via, None);
        assert!(q.int.is_empty());
    }

    #[test]
    fn freeing_a_slot_invalidates_older_handles() {
        let mut pool = PacketPool::new();
        let a = pool.alloc();
        pool.free(a);
        let b = pool.alloc(); // recycles the same slot, new generation
        assert_ne!(a, b);
        // Without sim-audit the stale free is a no-op: the free list must
        // not end up holding `b`'s slot while `b` is still live.
        if !dcsim::audit::ENABLED {
            pool.free(a);
            assert_eq!(pool.free_len(), 0);
            assert_eq!(pool.live(), 1);
        }
        pool.free(b);
    }

    #[test]
    fn live_count_and_high_water_mark_track_a_simulated_burst() {
        // Simulate an incast-like burst: grab a wave of packets, return a
        // ragged subset, grab again — at every point the number of slots
        // held by the "simulation" equals pool.live(), and the high-water
        // mark never decays.
        let mut pool = PacketPool::new();
        let mut in_flight = Vec::new();
        let mut peak = 0u64;
        for round in 0..8 {
            for _ in 0..(16 + round * 3) {
                in_flight.push(pool.alloc());
                assert_eq!(pool.live(), in_flight.len() as u64);
            }
            peak = peak.max(pool.live());
            assert_eq!(pool.live_hwm(), peak);
            // Deliver (return) roughly two-thirds of the wave.
            let keep = in_flight.len() / 3;
            for h in in_flight.drain(keep..) {
                pool.free(h);
            }
            assert_eq!(pool.live(), in_flight.len() as u64);
        }
        let (alloc, recyc) = pool.stats();
        assert!(recyc > 0, "bursts after the first must recycle");
        // slots counts distinct slots ever created; everything not in
        // the free list is still held.
        assert_eq!(alloc, pool.live() + pool.free_len() as u64);
        // Drain completely: nothing live, every slot back in the pool.
        for h in in_flight.drain(..) {
            pool.free(h);
        }
        assert_eq!(pool.live(), 0);
        assert_eq!(alloc, pool.free_len() as u64);
        // The mark survives the drain: it records the peak working set.
        assert_eq!(pool.live_hwm(), peak);
    }
}
