//! Shortest-path routing with per-flow ECMP.
//!
//! Routes are precomputed at network build time: a reverse BFS from every
//! host yields hop distances, and each node's next-hop set toward a
//! destination is every port whose peer is one hop closer. At forwarding
//! time a flow picks deterministically among equal-cost ports with a hash
//! of `(flow, node)` — per-flow path pinning, as real fabrics do to avoid
//! intra-flow reordering, while spreading different flows across the
//! fabric.

use std::collections::VecDeque;

use crate::ids::{FlowId, NodeId, PortNo};

/// Adjacency view the router needs: for each node, the list of
/// `(port, peer)` pairs.
pub type Adjacency = Vec<Vec<(PortNo, NodeId)>>;

/// Precomputed next-hop table.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// `next[node][dst]` = equal-cost next-hop ports from `node` toward
    /// host `dst`. Empty when unreachable or `node == dst`.
    next: Vec<Vec<Vec<PortNo>>>,
}

impl RoutingTable {
    /// Build the table for all destinations in `dests` (normally all
    /// hosts) over the given adjacency.
    pub fn compute(adj: &Adjacency, dests: &[NodeId]) -> Self {
        let n = adj.len();
        let mut next = vec![vec![Vec::new(); n]; n];

        let mut dist = vec![u32::MAX; n];
        let mut bfs = VecDeque::new();
        for &d in dests {
            // Reverse BFS from the destination. Links are symmetric, so
            // forward adjacency doubles as reverse adjacency.
            dist.iter_mut().for_each(|x| *x = u32::MAX);
            dist[d.idx()] = 0;
            bfs.clear();
            bfs.push_back(d);
            while let Some(u) = bfs.pop_front() {
                for &(_, v) in &adj[u.idx()] {
                    if dist[v.idx()] == u32::MAX {
                        dist[v.idx()] = dist[u.idx()] + 1;
                        bfs.push_back(v);
                    }
                }
            }
            // Next hops: every port leading one step closer.
            for u in 0..n {
                if dist[u] == u32::MAX || dist[u] == 0 {
                    continue;
                }
                let hops: Vec<PortNo> = adj[u]
                    .iter()
                    .filter(|(_, v)| dist[v.idx()] + 1 == dist[u])
                    .map(|(p, _)| *p)
                    .collect();
                next[u][d.idx()] = hops;
            }
        }
        RoutingTable { next }
    }

    /// The equal-cost next-hop set from `node` toward `dst`.
    #[inline]
    pub fn candidates(&self, node: NodeId, dst: NodeId) -> &[PortNo] {
        &self.next[node.idx()][dst.idx()]
    }

    /// Pick the egress port for one flow at one node (per-flow ECMP).
    ///
    /// Panics if there is no route — a topology bug worth failing loudly on.
    #[inline]
    pub fn pick(&self, node: NodeId, dst: NodeId, flow: FlowId) -> PortNo {
        match self.try_pick(node, dst, flow) {
            Some(p) => p,
            None => panic!("no route from node {node:?} to {dst:?} for flow {flow:?}"),
        }
    }

    /// Like [`pick`](Self::pick), but `None` when no route exists —
    /// the forwarding path under fault injection, where a link-down can
    /// legitimately partition the fabric (the packet is dropped and
    /// traced instead of panicking).
    #[inline]
    pub fn try_pick(&self, node: NodeId, dst: NodeId, flow: FlowId) -> Option<PortNo> {
        let c = self.candidates(node, dst);
        if c.is_empty() {
            return None;
        }
        Some(c[ecmp_hash(flow, node) as usize % c.len()])
    }
}

/// `adj` minus every entry whose egress port fails `port_up` — the
/// failover view of the fabric after link-state changes. Link flaps take
/// both directions down together, so the symmetric-links assumption of
/// [`RoutingTable::compute`]'s reverse BFS still holds on the filtered
/// adjacency.
pub fn filter_adjacency(
    adj: &Adjacency,
    mut port_up: impl FnMut(NodeId, PortNo) -> bool,
) -> Adjacency {
    adj.iter()
        .enumerate()
        .map(|(u, ports)| {
            ports
                .iter()
                .filter(|&&(p, _)| port_up(NodeId(u as u32), p))
                .copied()
                .collect()
        })
        .collect()
}

/// FNV-1a over (flow, node): cheap, deterministic, well-spread for
/// consecutive ids.
#[inline]
fn ecmp_hash(flow: FlowId, node: NodeId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in flow.0.to_le_bytes().into_iter().chain(node.0.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build adjacency for a diamond: 0 -- {1,2} -- 3, all symmetric.
    fn diamond() -> Adjacency {
        // ports are per-node indices in insertion order
        vec![
            vec![(PortNo(0), NodeId(1)), (PortNo(1), NodeId(2))], // node 0
            vec![(PortNo(0), NodeId(0)), (PortNo(1), NodeId(3))], // node 1
            vec![(PortNo(0), NodeId(0)), (PortNo(1), NodeId(3))], // node 2
            vec![(PortNo(0), NodeId(1)), (PortNo(1), NodeId(2))], // node 3
        ]
    }

    #[test]
    fn shortest_paths_found() {
        let adj = diamond();
        let rt = RoutingTable::compute(&adj, &[NodeId(0), NodeId(3)]);
        // From 0 to 3: both middle nodes are equal cost.
        assert_eq!(rt.candidates(NodeId(0), NodeId(3)).len(), 2);
        // From 1 to 3: direct port.
        assert_eq!(rt.candidates(NodeId(1), NodeId(3)), &[PortNo(1)]);
        // From 3 to 0 (reverse dest): both.
        assert_eq!(rt.candidates(NodeId(3), NodeId(0)).len(), 2);
        // At the destination itself, no next hop.
        assert!(rt.candidates(NodeId(3), NodeId(3)).is_empty());
    }

    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let adj = diamond();
        let rt = RoutingTable::compute(&adj, &[NodeId(3)]);
        let f = FlowId(12);
        let p1 = rt.pick(NodeId(0), NodeId(3), f);
        let p2 = rt.pick(NodeId(0), NodeId(3), f);
        assert_eq!(p1, p2);
    }

    #[test]
    fn ecmp_spreads_flows() {
        let adj = diamond();
        let rt = RoutingTable::compute(&adj, &[NodeId(3)]);
        let mut counts = [0usize; 2];
        for f in 0..1000 {
            let p = rt.pick(NodeId(0), NodeId(3), FlowId(f));
            counts[p.idx()] += 1;
        }
        // Both paths used substantially (not a 90/10 split).
        assert!(counts[0] > 300 && counts[1] > 300, "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unreachable_panics() {
        let adj: Adjacency = vec![vec![], vec![]]; // two isolated nodes
        let rt = RoutingTable::compute(&adj, &[NodeId(1)]);
        rt.pick(NodeId(0), NodeId(1), FlowId(0));
    }

    #[test]
    fn try_pick_returns_none_when_partitioned() {
        let adj: Adjacency = vec![vec![], vec![]];
        let rt = RoutingTable::compute(&adj, &[NodeId(1)]);
        assert_eq!(rt.try_pick(NodeId(0), NodeId(1), FlowId(0)), None);
    }

    #[test]
    fn filtered_adjacency_fails_over_to_surviving_path() {
        let adj = diamond();
        // Take the 0–1 link down (both directions, as flaps do).
        let filtered = filter_adjacency(&adj, |node, port| {
            let down = (node == NodeId(0) || node == NodeId(1)) && port == PortNo(0);
            !down
        });
        let rt = RoutingTable::compute(&filtered, &[NodeId(3)]);
        // Every flow now routes via node 2 (port 1 at node 0).
        for f in 0..50 {
            assert_eq!(
                rt.try_pick(NodeId(0), NodeId(3), FlowId(f)),
                Some(PortNo(1))
            );
        }
        // Node 1 can still reach 3 directly.
        assert_eq!(
            rt.try_pick(NodeId(1), NodeId(3), FlowId(0)),
            Some(PortNo(1))
        );
    }

    #[test]
    fn line_topology_single_paths() {
        // 0 - 1 - 2
        let adj: Adjacency = vec![
            vec![(PortNo(0), NodeId(1))],
            vec![(PortNo(0), NodeId(0)), (PortNo(1), NodeId(2))],
            vec![(PortNo(0), NodeId(1))],
        ];
        let rt = RoutingTable::compute(&adj, &[NodeId(0), NodeId(2)]);
        assert_eq!(rt.pick(NodeId(0), NodeId(2), FlowId(0)), PortNo(0));
        assert_eq!(rt.pick(NodeId(1), NodeId(2), FlowId(0)), PortNo(1));
        assert_eq!(rt.pick(NodeId(1), NodeId(0), FlowId(0)), PortNo(0));
    }
}
