//! Post-run link statistics: per-port utilization, queue high-water
//! marks, and drop counts, plus network-wide rollups.
//!
//! The paper's figures only need the monitor's queue/FCT series, but
//! debugging a congestion-control run almost always starts with "which
//! link was the bottleneck and how busy was it" — this module answers
//! that in one call.

use dcsim::Nanos;

use crate::ids::{NodeId, PortNo};
use crate::network::{Network, NodeKind};

/// Summary of one egress port over a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct PortStats {
    /// Owning node.
    pub node: NodeId,
    /// Port index within the node.
    pub port: PortNo,
    /// Whether the owner is a switch (else a host NIC).
    pub on_switch: bool,
    /// The node at the other end of the wire.
    pub peer: NodeId,
    /// Total bytes transmitted.
    pub tx_bytes: u64,
    /// Total packets transmitted.
    pub tx_packets: u64,
    /// Peak queue backlog in bytes.
    pub max_queue: u64,
    /// Data packets tail-dropped (finite-buffer mode only).
    pub dropped: u64,
    /// Mean utilization over `[0, horizon]`: transmitted bits over
    /// capacity-bits.
    pub utilization: f64,
}

/// Collect stats for every port, using `horizon` as the denominator for
/// utilization (normally the simulation end time).
pub fn port_stats(net: &Network, horizon: Nanos) -> Vec<PortStats> {
    let secs = horizon.as_secs_f64();
    let mut out = Vec::new();
    for (ni, node) in net.nodes_iter().enumerate() {
        for (pi, p) in node.ports.iter().enumerate() {
            let capacity_bits = p.rate.as_f64() * secs;
            out.push(PortStats {
                node: NodeId(ni as u32),
                port: PortNo(pi as u16),
                on_switch: node.kind == NodeKind::Switch,
                peer: p.peer.0,
                tx_bytes: p.tx_bytes(),
                tx_packets: p.tx_packets(),
                max_queue: p.max_qbytes(),
                dropped: p.dropped_packets(),
                utilization: if capacity_bits > 0.0 {
                    (p.tx_bytes() as f64 * 8.0 / capacity_bits).min(1.0)
                } else {
                    0.0
                },
            });
        }
    }
    out
}

/// The busiest port (highest utilization) — the run's bottleneck.
pub fn bottleneck(stats: &[PortStats]) -> Option<&PortStats> {
    stats.iter().max_by(|a, b| {
        a.utilization
            .partial_cmp(&b.utilization)
            .expect("utilization is finite")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use crate::monitor::MonitorConfig;
    use crate::network::{NetBuilder, NetConfig};
    use dcsim::{BitRate, Bytes, Simulation};
    use faircc::{AckFeedback, CcMode, CongestionControl, SenderLimits};

    struct FixedRate(BitRate);
    impl CongestionControl for FixedRate {
        fn on_ack(&mut self, _: &AckFeedback) {}
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(self.0)
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    #[test]
    fn utilization_matches_offered_load() {
        let mut b = NetBuilder::new();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let sw = b.add_switch();
        b.link(h0, sw, BitRate::from_gbps(100), dcsim::Nanos::MICRO);
        b.link(h1, sw, BitRate::from_gbps(100), dcsim::Nanos::MICRO);
        let mut net = b.build(NetConfig::default(), MonitorConfig::default());
        net.add_flow(
            FlowSpec {
                src: h0,
                dst: h1,
                size: Bytes(625_000), // 50 Gbps x 100 us
                start: dcsim::Nanos::ZERO,
            },
            Box::new(FixedRate(BitRate::from_gbps(50))),
        );
        let mut sim = Simulation::new(net);
        {
            let (w, q) = sim.split_mut();
            w.prime(q);
        }
        sim.run_until(dcsim::Nanos::from_micros(100));
        let stats = port_stats(sim.world(), dcsim::Nanos::from_micros(100));
        // Four ports: h0 NIC, h1 NIC (ACKs only), and two switch ports.
        assert_eq!(stats.len(), 4);
        let b = bottleneck(&stats).expect("run transmitted on at least one port");
        // Bottleneck is h0's NIC or the switch port toward h1: ~50%.
        assert!(
            (b.utilization - 0.5).abs() < 0.05,
            "bottleneck utilization {}",
            b.utilization
        );
        // The ACK-only direction is nearly idle but nonzero.
        let ack_port = stats
            .iter()
            .find(|s| s.node == h1 && !s.on_switch)
            .expect("h1 has a NIC port in the stats");
        assert!(ack_port.tx_bytes > 0);
        assert!(ack_port.utilization < 0.05);
        // No drops in lossless mode.
        assert!(stats.iter().all(|s| s.dropped == 0));
    }
}
