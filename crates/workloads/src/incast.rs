//! The staggered-incast microbenchmark (paper Sections III-D and VI-A).
//!
//! "We use a single switch topology with 17 hosts ... 16 of the hosts have
//! one flow to the 17th host. Two flows start every 20 microseconds and
//! each flow sends 1MB." The 96-1 variant scales the sender count; the
//! stagger is what creates the join-time unfairness the paper studies —
//! each pair of new line-rate flows steals bandwidth from everyone already
//! running.

use dcsim::{Bytes, Nanos};

use crate::arrivals::FlowArrival;

/// Parameters for [`staggered_incast`].
#[derive(Debug, Clone, Copy)]
pub struct IncastConfig {
    /// Number of senders (16 or 96 in the paper).
    pub senders: usize,
    /// Flow size (paper: 1 MB).
    pub flow_size: Bytes,
    /// How many flows start per stagger interval (paper: 2).
    pub flows_per_interval: usize,
    /// The stagger interval (paper: 20 µs).
    pub interval: Nanos,
}

impl IncastConfig {
    /// The paper's 16-1 incast.
    pub fn paper_16_1() -> Self {
        IncastConfig {
            senders: 16,
            flow_size: Bytes::from_mb(1),
            flows_per_interval: 2,
            interval: Nanos::from_micros(20),
        }
    }

    /// The paper's 96-1 incast.
    pub fn paper_96_1() -> Self {
        IncastConfig {
            senders: 96,
            ..Self::paper_16_1()
        }
    }
}

/// Generate the arrival list: sender `i` (host index `i`) starts its flow
/// to the receiver (host index `senders`) at
/// `(i / flows_per_interval) * interval`.
pub fn staggered_incast(cfg: &IncastConfig) -> Vec<FlowArrival> {
    assert!(cfg.senders >= 1);
    assert!(cfg.flows_per_interval >= 1);
    (0..cfg.senders)
        .map(|i| FlowArrival {
            src: i,
            dst: cfg.senders,
            size: cfg.flow_size,
            start: cfg.interval * (i / cfg.flows_per_interval) as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_16_1_shape() {
        let flows = staggered_incast(&IncastConfig::paper_16_1());
        assert_eq!(flows.len(), 16);
        // All flows target host 16 with 1 MB.
        for f in &flows {
            assert_eq!(f.dst, 16);
            assert_eq!(f.size, Bytes(1_000_000));
            assert_ne!(f.src, f.dst);
        }
        // Two flows per 20 us slot.
        assert_eq!(flows[0].start, Nanos(0));
        assert_eq!(flows[1].start, Nanos(0));
        assert_eq!(flows[2].start, Nanos::from_micros(20));
        assert_eq!(flows[15].start, Nanos::from_micros(140));
    }

    #[test]
    fn paper_96_1_spans_longer() {
        let flows = staggered_incast(&IncastConfig::paper_96_1());
        assert_eq!(flows.len(), 96);
        assert_eq!(flows[95].start, Nanos::from_micros(47 * 20));
        assert_eq!(flows[95].dst, 96);
    }

    #[test]
    fn sources_are_distinct() {
        let flows = staggered_incast(&IncastConfig::paper_16_1());
        let mut srcs: Vec<usize> = flows.iter().map(|f| f.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 16);
    }

    #[test]
    fn custom_stagger() {
        let flows = staggered_incast(&IncastConfig {
            senders: 6,
            flow_size: Bytes(500),
            flows_per_interval: 3,
            interval: Nanos::from_micros(5),
        });
        assert_eq!(flows[2].start, Nanos(0));
        assert_eq!(flows[3].start, Nanos::from_micros(5));
        assert_eq!(flows[5].start, Nanos::from_micros(5));
    }
}
