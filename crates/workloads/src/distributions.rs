//! Empirical flow-size distributions.
//!
//! The paper takes its distribution files from the HPCC artifact
//! repository. We embed piecewise-linear CDFs reconstructed from the
//! constraints the paper itself states:
//!
//! * **Facebook Hadoop** — "mostly small flows (95% < 300KB) and a small
//!   number of large flows (2.5% > 1MB)";
//! * **Microsoft WebSearch** — "many long flows (30% > 1MB)" (the classic
//!   DCTCP distribution);
//! * **Alibaba storage** — "almost exclusively small flows (96% < 128KB
//!   and 100% < 2MB)".
//!
//! Absolute moments differ from the artifact files; the latency-bound vs.
//! bandwidth-bound flow mix — which drives every trend in Figures 10-13 —
//! is preserved.

use dcsim::{Bytes, DetRng};

/// A piecewise-linear cumulative distribution over flow sizes.
///
/// Points are `(size_bytes, cumulative_probability)`, strictly increasing
/// in both coordinates, ending at probability 1.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    points: Vec<(u64, f64)>,
    name: &'static str,
}

impl EmpiricalCdf {
    /// Build a CDF from `(size, cum_prob)` points. The first point's
    /// probability is the mass at (or below) the first size; sampling
    /// interpolates linearly between points and from 1 byte up to the
    /// first point.
    pub fn new(name: &'static str, points: &[(u64, f64)]) -> Self {
        assert!(!points.is_empty(), "CDF needs at least one point");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "{name}: sizes must increase");
            assert!(w[0].1 <= w[1].1, "{name}: probabilities must not decrease");
        }
        let last = points.last().expect("non-empty");
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "{name}: CDF must end at probability 1"
        );
        EmpiricalCdf {
            points: points.to_vec(),
            name,
        }
    }

    /// The distribution's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Inverse-CDF sampling with linear interpolation.
    pub fn sample(&self, rng: &mut DetRng) -> Bytes {
        let u = rng.f64();
        self.quantile(u)
    }

    /// The size at cumulative probability `u` (clamped to `[0, 1]`).
    pub fn quantile(&self, u: f64) -> Bytes {
        let u = u.clamp(0.0, 1.0);
        let mut prev = (1u64, 0.0f64);
        for &(size, p) in &self.points {
            if u <= p {
                if (p - prev.1) <= 1e-12 {
                    return Bytes(size);
                }
                let frac = (u - prev.1) / (p - prev.1);
                let sz = prev.0 as f64 + frac * (size as f64 - prev.0 as f64);
                return Bytes(sz.max(1.0).round() as u64);
            }
            prev = (size, p);
        }
        Bytes(self.points.last().expect("non-empty").0)
    }

    /// The mean flow size implied by the piecewise-linear CDF, used to
    /// convert a load fraction into an arrival rate.
    pub fn mean_bytes(&self) -> f64 {
        // E[X] for a piecewise-linear CDF: sum of segment means weighted
        // by segment probability mass.
        let mut mean = 0.0;
        let mut prev = (1u64, 0.0f64);
        for &(size, p) in &self.points {
            let mass = p - prev.1;
            if mass > 0.0 {
                mean += mass * (prev.0 as f64 + size as f64) / 2.0;
            }
            prev = (size, p);
        }
        mean
    }

    /// The probability that a flow exceeds `bytes`.
    pub fn frac_above(&self, bytes: u64) -> f64 {
        let mut prev = (1u64, 0.0f64);
        for &(size, p) in &self.points {
            if bytes < size {
                if bytes <= prev.0 {
                    return 1.0 - prev.1;
                }
                let frac = (bytes - prev.0) as f64 / (size - prev.0) as f64;
                let cdf = prev.1 + frac * (p - prev.1);
                return 1.0 - cdf;
            }
            prev = (size, p);
        }
        0.0
    }
}

/// Facebook Hadoop (reconstruction): heavy small-flow mass with a thin
/// multi-megabyte tail. 95% < 300 KB; 2.5% > 1 MB.
pub fn fb_hadoop() -> EmpiricalCdf {
    EmpiricalCdf::new(
        "FB_Hadoop",
        &[
            (250, 0.20),
            (500, 0.35),
            (1_000, 0.50),
            (5_000, 0.65),
            (10_000, 0.73),
            (30_000, 0.80),
            (100_000, 0.88),
            (300_000, 0.95),
            (1_000_000, 0.975),
            (3_000_000, 0.99),
            (10_000_000, 1.0),
        ],
    )
}

/// Microsoft WebSearch (the DCTCP distribution): ~30% of flows exceed
/// 1 MB, tail to 30 MB.
pub fn websearch() -> EmpiricalCdf {
    EmpiricalCdf::new(
        "WebSearch",
        &[
            (6_000, 0.15),
            (13_000, 0.20),
            (19_000, 0.30),
            (33_000, 0.40),
            (53_000, 0.53),
            (133_000, 0.60),
            (667_000, 0.70),
            (1_467_000, 0.80),
            (2_107_000, 0.90),
            (6_667_000, 0.95),
            (20_000_000, 0.98),
            (30_000_000, 1.0),
        ],
    )
}

/// Alibaba storage (reconstruction): almost exclusively small flows.
/// 96% < 128 KB, everything < 2 MB.
pub fn ali_storage() -> EmpiricalCdf {
    EmpiricalCdf::new(
        "Ali_Storage",
        &[
            (1_000, 0.30),
            (4_000, 0.55),
            (16_000, 0.75),
            (64_000, 0.90),
            (128_000, 0.96),
            (512_000, 0.985),
            (1_000_000, 0.995),
            (2_000_000, 1.0),
        ],
    )
}

/// Canonical name for [`fb_hadoop`] in experiment configs.
pub const FB_HADOOP: &str = "FB_Hadoop";
/// Canonical name for [`websearch`].
pub const WEBSEARCH: &str = "WebSearch";
/// Canonical name for [`ali_storage`].
pub const ALI_STORAGE: &str = "Ali_Storage";

/// Look a distribution up by its canonical name.
pub fn by_name(name: &str) -> Option<EmpiricalCdf> {
    match name {
        FB_HADOOP => Some(fb_hadoop()),
        WEBSEARCH => Some(websearch()),
        ALI_STORAGE => Some(ali_storage()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadoop_matches_paper_constraints() {
        let d = fb_hadoop();
        // "95% < 300KB"
        assert!((d.frac_above(300_000) - 0.05).abs() < 0.01);
        // "2.5% > 1MB"
        assert!((d.frac_above(1_000_000) - 0.025).abs() < 0.005);
    }

    #[test]
    fn websearch_matches_paper_constraints() {
        let d = websearch();
        // "30% > 1MB"
        let above_1mb = d.frac_above(1_000_000);
        assert!((0.2..=0.35).contains(&above_1mb), "P(>1MB) = {above_1mb}");
    }

    #[test]
    fn storage_matches_paper_constraints() {
        let d = ali_storage();
        // "96% < 128KB"
        assert!((d.frac_above(128_000) - 0.04).abs() < 0.01);
        // "100% < 2MB"
        assert_eq!(d.frac_above(2_000_000), 0.0);
        assert_eq!(d.quantile(1.0), Bytes(2_000_000));
    }

    #[test]
    fn sampling_matches_cdf() {
        let d = websearch();
        let mut rng = DetRng::new(42);
        let n = 100_000;
        let big = (0..n)
            .filter(|_| d.sample(&mut rng).as_u64() > 1_000_000)
            .count();
        let frac = big as f64 / n as f64;
        let expect = d.frac_above(1_000_000);
        assert!(
            (frac - expect).abs() < 0.01,
            "sampled {frac} vs cdf {expect}"
        );
    }

    #[test]
    fn sampled_mean_matches_analytic_mean() {
        let d = fb_hadoop();
        let mut rng = DetRng::new(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng).as_f64()).sum();
        let mean = sum / n as f64;
        let analytic = d.mean_bytes();
        assert!(
            (mean - analytic).abs() / analytic < 0.05,
            "sampled {mean} analytic {analytic}"
        );
    }

    #[test]
    fn quantile_monotone() {
        let d = websearch();
        let mut last = 0u64;
        for i in 0..=100 {
            let q = d.quantile(i as f64 / 100.0).as_u64();
            assert!(q >= last, "quantile not monotone at {i}");
            last = q;
        }
    }

    #[test]
    fn samples_never_zero_or_above_max() {
        let d = ali_storage();
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s.as_u64() >= 1);
            assert!(s.as_u64() <= 2_000_000);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name(FB_HADOOP).is_some());
        assert!(by_name(WEBSEARCH).is_some());
        assert!(by_name(ALI_STORAGE).is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "end at probability 1")]
    fn incomplete_cdf_rejected() {
        EmpiricalCdf::new("bad", &[(100, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "sizes must increase")]
    fn unsorted_cdf_rejected() {
        EmpiricalCdf::new("bad", &[(100, 0.5), (50, 1.0)]);
    }
}
