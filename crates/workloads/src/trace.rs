//! Workload traces: serialize generated arrival lists so an experiment's
//! exact traffic can be archived, diffed, or replayed outside the
//! generator (the moral equivalent of the HPCC artifact's `flow.txt`
//! inputs).

use dcsim::{Bytes, Nanos};
use minijson::{obj, Value};

use crate::arrivals::FlowArrival;

/// One line of a serialized trace (plain integers so the JSON is
/// toolchain-neutral).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Source host index.
    pub src: usize,
    /// Destination host index.
    pub dst: usize,
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Start time in nanoseconds.
    pub start_ns: u64,
}

impl From<&FlowArrival> for TraceRecord {
    fn from(f: &FlowArrival) -> Self {
        TraceRecord {
            src: f.src,
            dst: f.dst,
            size_bytes: f.size.as_u64(),
            start_ns: f.start.as_u64(),
        }
    }
}

impl From<&TraceRecord> for FlowArrival {
    fn from(r: &TraceRecord) -> Self {
        FlowArrival {
            src: r.src,
            dst: r.dst,
            size: Bytes(r.size_bytes),
            start: Nanos(r.start_ns),
        }
    }
}

/// Why a trace failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The input was not JSON at all.
    Json(minijson::ParseError),
    /// The JSON was well-formed but not shaped like a trace.
    Shape(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Json(e) => write!(f, "invalid JSON: {e}"),
            TraceError::Shape(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Serialize an arrival list to JSON.
pub fn to_json(flows: &[FlowArrival]) -> String {
    Value::Arr(
        flows
            .iter()
            .map(TraceRecord::from)
            .map(|r| {
                obj([
                    ("src", Value::from(r.src)),
                    ("dst", Value::from(r.dst)),
                    ("size_bytes", Value::from(r.size_bytes)),
                    ("start_ns", Value::from(r.start_ns)),
                ])
            })
            .collect(),
    )
    .to_string()
}

fn field(record: &Value, key: &str, index: usize) -> Result<u64, TraceError> {
    record[key]
        .as_u64()
        .ok_or_else(|| TraceError::Shape(format!("record {index}: missing integer `{key}`")))
}

/// Parse an arrival list from JSON (inverse of [`to_json`]).
pub fn from_json(json: &str) -> Result<Vec<FlowArrival>, TraceError> {
    let doc = Value::parse(json).map_err(TraceError::Json)?;
    let records = doc
        .as_array()
        .ok_or_else(|| TraceError::Shape("top level must be an array".into()))?;
    records
        .iter()
        .enumerate()
        .map(|(i, rec)| {
            let r = TraceRecord {
                src: field(rec, "src", i)? as usize,
                dst: field(rec, "dst", i)? as usize,
                size_bytes: field(rec, "size_bytes", i)?,
                start_ns: field(rec, "start_ns", i)?,
            };
            Ok(FlowArrival::from(&r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{poisson_arrivals, ArrivalConfig};
    use crate::distributions::fb_hadoop;
    use dcsim::BitRate;

    fn sample_flows() -> Vec<FlowArrival> {
        poisson_arrivals(
            &ArrivalConfig {
                n_hosts: 8,
                host_rate: BitRate::from_gbps(100),
                load: 0.3,
                horizon: Nanos::from_micros(200),
                seed: 4,
            },
            &fb_hadoop(),
        )
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let flows = sample_flows();
        assert!(!flows.is_empty());
        let json = to_json(&flows);
        let back = from_json(&json).unwrap();
        assert_eq!(flows, back);
    }

    #[test]
    fn json_shape_is_stable() {
        let flows = vec![FlowArrival {
            src: 1,
            dst: 2,
            size: Bytes(1000),
            start: Nanos(5_000),
        }];
        let json = to_json(&flows);
        assert_eq!(
            json,
            r#"[{"src":1,"dst":2,"size_bytes":1000,"start_ns":5000}]"#
        );
    }

    #[test]
    fn bad_json_is_an_error_not_a_panic() {
        assert!(from_json("not json").is_err());
        assert!(from_json(r#"[{"src":1}]"#).is_err());
        assert!(from_json(r#"{"src":1}"#).is_err());
    }
}
