//! Workload traces: serialize generated arrival lists so an experiment's
//! exact traffic can be archived, diffed, or replayed outside the
//! generator (the moral equivalent of the HPCC artifact's `flow.txt`
//! inputs).

use dcsim::{Bytes, Nanos};
use serde::{Deserialize, Serialize};

use crate::arrivals::FlowArrival;

/// One line of a serialized trace (plain integers so the JSON is
/// toolchain-neutral).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Source host index.
    pub src: usize,
    /// Destination host index.
    pub dst: usize,
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Start time in nanoseconds.
    pub start_ns: u64,
}

impl From<&FlowArrival> for TraceRecord {
    fn from(f: &FlowArrival) -> Self {
        TraceRecord {
            src: f.src,
            dst: f.dst,
            size_bytes: f.size.as_u64(),
            start_ns: f.start.as_u64(),
        }
    }
}

impl From<&TraceRecord> for FlowArrival {
    fn from(r: &TraceRecord) -> Self {
        FlowArrival {
            src: r.src,
            dst: r.dst,
            size: Bytes(r.size_bytes),
            start: Nanos(r.start_ns),
        }
    }
}

/// Serialize an arrival list to JSON.
pub fn to_json(flows: &[FlowArrival]) -> String {
    let records: Vec<TraceRecord> = flows.iter().map(TraceRecord::from).collect();
    serde_json::to_string(&records).expect("trace records are always serializable")
}

/// Parse an arrival list from JSON (inverse of [`to_json`]).
pub fn from_json(json: &str) -> Result<Vec<FlowArrival>, serde_json::Error> {
    let records: Vec<TraceRecord> = serde_json::from_str(json)?;
    Ok(records.iter().map(FlowArrival::from).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{poisson_arrivals, ArrivalConfig};
    use crate::distributions::fb_hadoop;
    use dcsim::BitRate;

    fn sample_flows() -> Vec<FlowArrival> {
        poisson_arrivals(
            &ArrivalConfig {
                n_hosts: 8,
                host_rate: BitRate::from_gbps(100),
                load: 0.3,
                horizon: Nanos::from_micros(200),
                seed: 4,
            },
            &fb_hadoop(),
        )
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let flows = sample_flows();
        assert!(!flows.is_empty());
        let json = to_json(&flows);
        let back = from_json(&json).unwrap();
        assert_eq!(flows, back);
    }

    #[test]
    fn json_shape_is_stable() {
        let flows = vec![FlowArrival {
            src: 1,
            dst: 2,
            size: Bytes(1000),
            start: Nanos(5_000),
        }];
        let json = to_json(&flows);
        assert_eq!(
            json,
            r#"[{"src":1,"dst":2,"size_bytes":1000,"start_ns":5000}]"#
        );
    }

    #[test]
    fn bad_json_is_an_error_not_a_panic() {
        assert!(from_json("not json").is_err());
        assert!(from_json(r#"[{"src":1}]"#).is_err());
    }
}
