//! `workloads` — traffic generation for the paper's benchmarks.
//!
//! Three generators:
//!
//! * [`incast::staggered_incast`] — the 16-1 / 96-1 incast
//!   microbenchmark: `n` senders to one receiver, two 1 MB flows starting
//!   every 20 µs (paper Section III-D).
//! * [`distributions`] — empirical flow-size CDFs for the three datacenter
//!   applications (Facebook Hadoop, Microsoft WebSearch, Alibaba storage),
//!   reconstructed to match the shape constraints the paper quotes; see
//!   DESIGN.md for the substitution note.
//! * [`arrivals::poisson_arrivals`] — the open-loop Poisson arrival
//!   process that drives the fat-tree simulations at a target load
//!   fraction (paper: 50% for 50 ms).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod distributions;
pub mod incast;
pub mod trace;

pub use arrivals::{permutation, poisson_arrivals, ArrivalConfig, FlowArrival};
pub use distributions::{EmpiricalCdf, ALI_STORAGE, FB_HADOOP, WEBSEARCH};
pub use incast::{staggered_incast, IncastConfig};
pub use trace::{from_json, to_json, TraceRecord};
