//! Open-loop Poisson traffic for the datacenter simulations.
//!
//! The paper runs "the network at 50% load for 50ms": flows arrive as a
//! Poisson process whose rate is chosen so the *offered* load equals the
//! requested fraction of the hosts' aggregate edge bandwidth, with sizes
//! drawn from an empirical distribution and uniformly random distinct
//! source/destination hosts (the standard HPCC-artifact methodology).

use dcsim::{BitRate, Bytes, DetRng, Nanos};

use crate::distributions::EmpiricalCdf;

/// One flow to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowArrival {
    /// Source host index (into the topology's host list).
    pub src: usize,
    /// Destination host index.
    pub dst: usize,
    /// Payload size.
    pub size: Bytes,
    /// Start time.
    pub start: Nanos,
}

/// Parameters for [`poisson_arrivals`].
#[derive(Debug, Clone)]
pub struct ArrivalConfig {
    /// Number of hosts in the topology.
    pub n_hosts: usize,
    /// Per-host edge link rate.
    pub host_rate: BitRate,
    /// Offered load as a fraction of aggregate edge bandwidth (paper: 0.5).
    pub load: f64,
    /// Traffic horizon: flows arrive in `[0, horizon)` (paper: 50 ms).
    pub horizon: Nanos,
    /// RNG seed (independent of the network's own seed).
    pub seed: u64,
}

/// Generate the arrival list for one distribution.
///
/// The aggregate arrival rate is
/// `load · n_hosts · host_rate / (8 · mean_size)` flows per second; each
/// arrival picks a uniformly random source and a distinct uniformly random
/// destination.
pub fn poisson_arrivals(cfg: &ArrivalConfig, dist: &EmpiricalCdf) -> Vec<FlowArrival> {
    assert!(cfg.n_hosts >= 2, "need at least two hosts");
    assert!(cfg.load > 0.0 && cfg.load <= 1.0, "load must be in (0, 1]");
    let mut rng = DetRng::new(cfg.seed);
    let mean = dist.mean_bytes();
    let bytes_per_sec = cfg.load * cfg.n_hosts as f64 * cfg.host_rate.bytes_per_sec();
    let flows_per_sec = bytes_per_sec / mean;
    let mean_gap_ns = 1e9 / flows_per_sec;

    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += rng.exp(mean_gap_ns);
        if t >= cfg.horizon.as_u64() as f64 {
            break;
        }
        let src = rng.below(cfg.n_hosts as u64) as usize;
        let mut dst = rng.below(cfg.n_hosts as u64 - 1) as usize;
        if dst >= src {
            dst += 1;
        }
        out.push(FlowArrival {
            src,
            dst,
            size: dist.sample(&mut rng),
            start: Nanos(t as u64),
        });
    }
    out
}

/// Generate a mixed workload: each distribution contributes an equal share
/// of the total load (the paper's WebSearch + Alibaba-storage "shared
/// environment"). Arrivals are merged in time order.
pub fn mixed_arrivals(cfg: &ArrivalConfig, dists: &[&EmpiricalCdf]) -> Vec<FlowArrival> {
    assert!(!dists.is_empty());
    let share = cfg.load / dists.len() as f64;
    let mut all = Vec::new();
    for (i, d) in dists.iter().enumerate() {
        let sub = ArrivalConfig {
            load: share,
            seed: cfg.seed.wrapping_add(1 + i as u64),
            ..cfg.clone()
        };
        all.extend(poisson_arrivals(&sub, d));
    }
    all.sort_by_key(|f| f.start);
    all
}

/// A random permutation pattern: every host sends one `size`-byte flow to
/// a distinct destination host (a derangement, so nobody sends to
/// itself), all starting at `start`.
///
/// Permutation traffic is the classic fabric-fairness stressor: there is
/// no incast — each destination receives exactly one flow — so any
/// unfairness comes from ECMP collisions inside the fabric.
pub fn permutation(n_hosts: usize, size: Bytes, start: Nanos, seed: u64) -> Vec<FlowArrival> {
    assert!(n_hosts >= 2, "a permutation needs at least two hosts");
    let mut rng = DetRng::new(seed);
    // Fisher-Yates, then rotate self-mappings away.
    let mut dst: Vec<usize> = (0..n_hosts).collect();
    for i in (1..n_hosts).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        dst.swap(i, j);
    }
    // Fix fixed points by swapping with a neighbour (keeps a derangement).
    for i in 0..n_hosts {
        if dst[i] == i {
            let j = (i + 1) % n_hosts;
            dst.swap(i, j);
        }
    }
    (0..n_hosts)
        .map(|src| FlowArrival {
            src,
            dst: dst[src],
            size,
            start,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{fb_hadoop, websearch};

    fn cfg(load: f64) -> ArrivalConfig {
        ArrivalConfig {
            n_hosts: 32,
            host_rate: BitRate::from_gbps(100),
            load,
            horizon: Nanos::from_millis(10),
            seed: 11,
        }
    }

    #[test]
    fn offered_load_matches_request() {
        let c = cfg(0.5);
        let flows = poisson_arrivals(&c, &fb_hadoop());
        let total_bytes: f64 = flows.iter().map(|f| f.size.as_f64()).sum();
        let capacity_bytes =
            c.n_hosts as f64 * c.host_rate.bytes_per_sec() * c.horizon.as_secs_f64();
        let load = total_bytes / capacity_bytes;
        assert!((load - 0.5).abs() < 0.05, "offered load {load}");
    }

    #[test]
    fn arrivals_sorted_and_in_horizon() {
        let c = cfg(0.3);
        let flows = poisson_arrivals(&c, &fb_hadoop());
        assert!(!flows.is_empty());
        for w in flows.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
        assert!(flows.last().unwrap().start < c.horizon);
    }

    #[test]
    fn src_dst_always_distinct_and_in_range() {
        let c = cfg(0.5);
        let flows = poisson_arrivals(&c, &fb_hadoop());
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(f.src < 32 && f.dst < 32);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = cfg(0.4);
        let a = poisson_arrivals(&c, &websearch());
        let b = poisson_arrivals(&c, &websearch());
        assert_eq!(a, b);
        let c2 = ArrivalConfig { seed: 12, ..c };
        let d = poisson_arrivals(&c2, &websearch());
        assert_ne!(a, d);
    }

    #[test]
    fn mixed_workload_splits_load() {
        let c = cfg(0.5);
        let ws = websearch();
        let hd = fb_hadoop();
        let flows = mixed_arrivals(&c, &[&ws, &hd]);
        let total_bytes: f64 = flows.iter().map(|f| f.size.as_f64()).sum();
        let capacity_bytes =
            c.n_hosts as f64 * c.host_rate.bytes_per_sec() * c.horizon.as_secs_f64();
        let load = total_bytes / capacity_bytes;
        assert!((load - 0.5).abs() < 0.05, "offered load {load}");
        // Merged in time order.
        for w in flows.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
    }

    #[test]
    fn permutation_is_a_derangement() {
        for seed in 0..20 {
            for n in [2usize, 3, 8, 32] {
                let flows = permutation(n, Bytes(1000), Nanos::ZERO, seed);
                assert_eq!(flows.len(), n);
                let mut dsts: Vec<usize> = flows.iter().map(|f| f.dst).collect();
                for f in &flows {
                    assert_ne!(f.src, f.dst, "n={n} seed={seed}");
                }
                dsts.sort_unstable();
                dsts.dedup();
                assert_eq!(dsts.len(), n, "destinations must be a permutation");
            }
        }
    }

    #[test]
    fn permutation_varies_with_seed() {
        let a = permutation(16, Bytes(1000), Nanos::ZERO, 1);
        let b = permutation(16, Bytes(1000), Nanos::ZERO, 2);
        assert_ne!(a, b);
        assert_eq!(a, permutation(16, Bytes(1000), Nanos::ZERO, 1));
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn zero_load_rejected() {
        poisson_arrivals(&cfg(0.0), &fb_hadoop());
    }
}
