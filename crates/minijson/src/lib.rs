//! `minijson` — a small, dependency-free JSON tree: parse, build, write.
//!
//! The workspace builds hermetically (no network, no registry), so instead
//! of `serde_json` the trace/export/benchmark paths use this crate. It
//! covers exactly what simulation tooling needs:
//!
//! * a [`Value`] tree with order-preserving objects (stable output diffs),
//! * a strict parser with byte-offset error reporting,
//! * compact ([`Value::to_string`]) and pretty ([`Value::pretty`]) writers,
//! * `serde_json`-style indexing: `v["bins"][1]["size"].as_u64()`.
//!
//! Numbers are stored as `f64`. Integers up to 2^53 round-trip exactly —
//! nanosecond timestamps, byte counts, and event counters in this repo all
//! fit (2^53 ns is ~104 days of simulated time); the writer emits them
//! without a fractional part.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped form).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

/// Build an object from `(key, value)` pairs, preserving order.
pub fn obj<I>(pairs: I) -> Value
where
    I: IntoIterator<Item = (&'static str, Value)>,
{
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Build an array from anything convertible to [`Value`].
pub fn arr<T: Into<Value>, I: IntoIterator<Item = T>>(items: I) -> Value {
    Value::Arr(items.into_iter().map(Into::into).collect())
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map_or(Value::Null, Into::into)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        arr(v)
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` when out of range or not an array.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// Parse a JSON document. The whole input must be one value (plus
    /// whitespace); trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Pretty-print with two-space indentation and a trailing newline-free
    /// body, like `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact serialization (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Member access; missing keys yield `Null` (like `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Element access; out-of-range yields `Null` (like `serde_json`).
    fn index(&self, i: usize) -> &Value {
        self.idx(i).unwrap_or(&NULL)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        // Integral and exactly representable: print without ".0" so
        // counters and byte sizes look like integers.
        let _ = fmt::write(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::write(out, format_args!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: JSON escapes astral-plane
                            // characters as two \u units.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary walk).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = obj([
            ("name", Value::from("incast")),
            ("n", Value::from(42u64)),
            ("ratio", Value::from(0.5)),
            ("ok", Value::from(true)),
            ("none", Value::from(Option::<u64>::None)),
            ("xs", arr([1u64, 2, 3])),
        ]);
        let text = v.to_string();
        assert_eq!(
            text,
            r#"{"name":"incast","n":42,"ratio":0.5,"ok":true,"none":null,"xs":[1,2,3]}"#
        );
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = obj([("a", arr([1u64])), ("b", Value::Obj(vec![]))]);
        let text = v.pretty();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn indexing_mirrors_serde_json() {
        let v = Value::parse(r#"{"bins":[{"size":1000},{"size":2000000}]}"#).unwrap();
        assert_eq!(v["bins"][1]["size"].as_u64(), Some(2_000_000));
        assert!(v["missing"].is_null());
        assert!(v["bins"][9].is_null());
    }

    #[test]
    fn integers_round_trip_exactly() {
        for n in [0u64, 1, 2_000_000, (1 << 53) - 1] {
            let text = Value::from(n).to_string();
            assert_eq!(text, n.to_string());
            assert_eq!(Value::parse(&text).unwrap().as_u64(), Some(n));
        }
        assert_eq!(Value::from(-5i64).to_string(), "-5");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" back\\ newline\n tab\t unicode\u{1F600}control\u{1}";
        let text = Value::from(s).to_string();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(
            Value::parse(r#""A😀""#).unwrap().as_str(),
            Some("A\u{1F600}")
        );
        assert!(Value::parse(r#""\uD83D""#).is_err());
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(Value::parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(Value::parse("-2E-2").unwrap().as_f64(), Some(-0.02));
    }

    #[test]
    fn errors_carry_offsets_not_panics() {
        assert!(Value::parse("not json").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1").is_err());
        assert!(Value::parse("[1] trailing").is_err());
        let err = Value::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn whitespace_everywhere_is_fine() {
        let v = Value::parse(" {\n \"a\" : [ 1 , 2 ] ,\t\"b\" : null } ").unwrap();
        assert_eq!(v["a"][1].as_u64(), Some(2));
        assert!(v["b"].is_null());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::from(f64::NAN).to_string(), "null");
        assert_eq!(Value::from(f64::INFINITY).to_string(), "null");
    }
}
