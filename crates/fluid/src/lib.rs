//! `fluid` — the fluid (ODE) model behind the Sampling Frequency
//! convergence proof (paper Section IV-B and Figure 4).
//!
//! The paper models two multiplicative-decrease disciplines during a
//! congestion episode:
//!
//! * **per-RTT decrease** — every flow decreases once per round trip, so
//!   the decrease frequency is independent of the flow's rate:
//!
//!   ```text
//!   R_i'(t) = −β · R_i(t) / r
//!   ```
//!
//! * **Sampling Frequency** — a flow decreases every `s` ACKs, so the
//!   decrease frequency `f = s·MTU / S_i(t)` is *inversely proportional to
//!   its rate*, giving the quadratic law
//!
//!   ```text
//!   S_i'(t) = −β · S_i(t)² / (s·MTU)
//!   ```
//!
//! With two flows starting at `C1 > C0`, fairness is the rate gap
//! (`R1−R0` resp. `S1−S0`); SF converges faster exactly when
//! `1/r < (C1 + C0)/(s·MTU)` (high initial rates, frequent sampling, long
//! RTTs — precisely the conditions right after a line-rate flow joins).
//! Figure 4 plots the *difference of the gaps* over time for
//! `r = 30000 ns`, `MTU = 1000 B`, `s = 30`, `β = 0.5`, rates 100 and
//! 50 Gbps.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Model parameters (paper Figure 4 caption).
#[derive(Debug, Clone, Copy)]
pub struct FluidParams {
    /// Multiplicative-decrease strength β per decrease interval.
    pub beta: f64,
    /// Observed round-trip time `r`, nanoseconds.
    pub rtt_ns: f64,
    /// ACKs between decreases `s`.
    pub s: f64,
    /// Packet size, bytes.
    pub mtu: f64,
    /// Initial rate of the faster flow, bytes/ns.
    pub c1: f64,
    /// Initial rate of the slower flow, bytes/ns.
    pub c0: f64,
}

impl FluidParams {
    /// The exact parameterization of Figure 4: r = 30000 ns, s = 30,
    /// MTU = 1000 B, β = 0.5, initial rates 100 Gbps and 50 Gbps
    /// (12.5 and 6.25 bytes/ns).
    pub fn figure4() -> Self {
        FluidParams {
            beta: 0.5,
            rtt_ns: 30_000.0,
            s: 30.0,
            mtu: 1000.0,
            c1: 12.5,
            c0: 6.25,
        }
    }

    /// The paper's convergence condition: Sampling Frequency closes the
    /// fairness gap faster at t=0 iff `1/r < (C1 + C0)/(s·MTU)`.
    pub fn sf_converges_faster(&self) -> bool {
        1.0 / self.rtt_ns < (self.c1 + self.c0) / (self.s * self.mtu)
    }
}

/// One integration sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidSample {
    /// Time, nanoseconds.
    pub t_ns: f64,
    /// Per-RTT-model rates (bytes/ns).
    pub r1: f64,
    /// Per-RTT-model slower flow.
    pub r0: f64,
    /// SF-model faster flow.
    pub s1: f64,
    /// SF-model slower flow.
    pub s0: f64,
}

impl FluidSample {
    /// The per-RTT model's fairness gap `R1 − R0`.
    pub fn gap_rtt(&self) -> f64 {
        self.r1 - self.r0
    }

    /// The SF model's fairness gap `S1 − S0`.
    pub fn gap_sf(&self) -> f64 {
        self.s1 - self.s0
    }

    /// Figure 4's y-axis: `(R1−R0) − (S1−S0)`. Positive means SF is the
    /// fairer discipline at this instant.
    pub fn fairness_difference(&self) -> f64 {
        self.gap_rtt() - self.gap_sf()
    }
}

/// Integrate both models with explicit Euler steps.
///
/// `dt_ns` must be small relative to `rtt_ns` (the paper's dynamics have
/// time constants of tens of microseconds; 1–10 ns steps are ample).
/// Returns `n_samples + 1` evenly spaced samples covering `[0, horizon]`.
pub fn integrate(
    p: &FluidParams,
    horizon_ns: f64,
    dt_ns: f64,
    n_samples: usize,
) -> Vec<FluidSample> {
    assert!(dt_ns > 0.0 && horizon_ns > 0.0 && n_samples > 0);
    assert!(p.c1 >= p.c0, "flow 1 is the faster flow by convention");
    let mut out = Vec::with_capacity(n_samples + 1);
    let (mut r1, mut r0, mut s1, mut s0) = (p.c1, p.c0, p.c1, p.c0);
    let sample_every = horizon_ns / n_samples as f64;
    let mut next_sample = 0.0f64;
    let mut t = 0.0f64;
    loop {
        if t >= next_sample - 1e-9 {
            out.push(FluidSample {
                t_ns: t,
                r1,
                r0,
                s1,
                s0,
            });
            next_sample += sample_every;
            if out.len() > n_samples {
                break;
            }
        }
        // Per-RTT model: exponential decay at rate β/r.
        r1 += -p.beta * r1 / p.rtt_ns * dt_ns;
        r0 += -p.beta * r0 / p.rtt_ns * dt_ns;
        // SF model: quadratic decay.
        s1 += -p.beta * s1 * s1 / (p.s * p.mtu) * dt_ns;
        s0 += -p.beta * s0 * s0 / (p.s * p.mtu) * dt_ns;
        t += dt_ns;
    }
    out
}

/// Integrate both models with classic fourth-order Runge-Kutta steps.
///
/// The dynamics are smooth and stiff-free, so explicit Euler at small
/// `dt` is already accurate; RK4 exists to *verify* that (the test suite
/// cross-checks the two integrators) and to allow coarse steps when a
/// caller sweeps many parameterizations.
pub fn integrate_rk4(
    p: &FluidParams,
    horizon_ns: f64,
    dt_ns: f64,
    n_samples: usize,
) -> Vec<FluidSample> {
    assert!(dt_ns > 0.0 && horizon_ns > 0.0 && n_samples > 0);
    assert!(p.c1 >= p.c0, "flow 1 is the faster flow by convention");
    let f_rtt = |x: f64| -p.beta * x / p.rtt_ns;
    let f_sf = |x: f64| -p.beta * x * x / (p.s * p.mtu);
    let rk4 = |x: f64, f: &dyn Fn(f64) -> f64| {
        let k1 = f(x);
        let k2 = f(x + dt_ns / 2.0 * k1);
        let k3 = f(x + dt_ns / 2.0 * k2);
        let k4 = f(x + dt_ns * k3);
        x + dt_ns / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
    };
    let mut out = Vec::with_capacity(n_samples + 1);
    let (mut r1, mut r0, mut s1, mut s0) = (p.c1, p.c0, p.c1, p.c0);
    let sample_every = horizon_ns / n_samples as f64;
    let mut next_sample = 0.0f64;
    let mut t = 0.0f64;
    loop {
        if t >= next_sample - 1e-9 {
            out.push(FluidSample {
                t_ns: t,
                r1,
                r0,
                s1,
                s0,
            });
            next_sample += sample_every;
            if out.len() > n_samples {
                break;
            }
        }
        r1 = rk4(r1, &f_rtt);
        r0 = rk4(r0, &f_rtt);
        s1 = rk4(s1, &f_sf);
        s0 = rk4(s0, &f_sf);
        t += dt_ns;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::DetRng;

    #[test]
    fn figure4_satisfies_convergence_condition() {
        let p = FluidParams::figure4();
        // 1/30000 = 3.3e-5 < 18.75/30000 = 6.25e-4.
        assert!(p.sf_converges_faster());
    }

    #[test]
    fn condition_flips_for_slow_sampling() {
        let p = FluidParams {
            s: 30_000.0, // absurdly sparse sampling
            ..FluidParams::figure4()
        };
        assert!(!p.sf_converges_faster());
    }

    #[test]
    fn both_models_decay_monotonically() {
        let p = FluidParams::figure4();
        let samples = integrate(&p, 100_000.0, 5.0, 100);
        for w in samples.windows(2) {
            assert!(w[1].r1 <= w[0].r1);
            assert!(w[1].s1 <= w[0].s1);
            assert!(w[1].r0 <= w[0].r0);
            assert!(w[1].s0 <= w[0].s0);
        }
    }

    #[test]
    fn per_rtt_model_matches_exponential_solution() {
        // R(t) = C·exp(−βt/r) has a closed form; Euler at dt=1ns must track
        // it to within 0.1% over 3 RTTs.
        let p = FluidParams::figure4();
        let samples = integrate(&p, 90_000.0, 1.0, 30);
        for s in &samples {
            let expect = p.c1 * (-p.beta * s.t_ns / p.rtt_ns).exp();
            assert!(
                (s.r1 - expect).abs() / expect < 1e-3,
                "t={} euler={} exact={}",
                s.t_ns,
                s.r1,
                expect
            );
        }
    }

    #[test]
    fn sf_model_matches_rational_solution() {
        // S'(t) = −k·S² with k = β/(s·MTU) solves to S(t) = C/(1 + C·k·t).
        let p = FluidParams::figure4();
        let k = p.beta / (p.s * p.mtu);
        let samples = integrate(&p, 90_000.0, 1.0, 30);
        for s in &samples {
            let expect = p.c1 / (1.0 + p.c1 * k * s.t_ns);
            assert!(
                (s.s1 - expect).abs() / expect < 1e-3,
                "t={} euler={} exact={}",
                s.t_ns,
                s.s1,
                expect
            );
        }
    }

    #[test]
    fn figure4_shape_positive_hump_then_decay() {
        // The paper's Figure 4: the fairness difference starts at 0, rises
        // (SF converges faster), peaks, then diminishes back toward 0.
        let p = FluidParams::figure4();
        let samples = integrate(&p, 500_000.0, 5.0, 500);
        assert!(samples[0].fairness_difference().abs() < 1e-9);
        let peak = samples
            .iter()
            .map(|s| s.fairness_difference())
            .fold(f64::MIN, f64::max);
        assert!(peak > 0.5, "peak fairness difference {peak} too small");
        // All samples non-negative: SF is never *less* fair here.
        for s in &samples {
            assert!(s.fairness_difference() > -1e-9);
        }
        // The tail decays to under half the peak.
        let tail = samples.last().unwrap().fairness_difference();
        assert!(tail < peak / 2.0, "tail {tail} vs peak {peak}");
    }

    #[test]
    fn sf_gap_closes_faster_than_rtt_gap() {
        let p = FluidParams::figure4();
        let samples = integrate(&p, 200_000.0, 5.0, 200);
        // At every positive time, SF's flows are closer together.
        for s in &samples[1..] {
            assert!(s.gap_sf() <= s.gap_rtt() + 1e-12);
        }
    }

    #[test]
    fn rk4_and_euler_agree() {
        let p = FluidParams::figure4();
        let euler = integrate(&p, 200_000.0, 1.0, 40);
        let rk4 = integrate_rk4(&p, 200_000.0, 50.0, 40);
        for (a, b) in euler.iter().zip(&rk4) {
            assert!((a.t_ns - b.t_ns).abs() < 100.0);
            assert!(
                (a.s1 - b.s1).abs() / a.s1.max(1e-9) < 2e-3,
                "t={} euler={} rk4={}",
                a.t_ns,
                a.s1,
                b.s1
            );
            assert!((a.r1 - b.r1).abs() / a.r1.max(1e-9) < 2e-3);
        }
    }

    #[test]
    fn rk4_matches_closed_forms_with_coarse_steps() {
        // RK4 at dt = 100 ns should match the exact solutions as well as
        // Euler at dt = 1 ns does.
        let p = FluidParams::figure4();
        let k = p.beta / (p.s * p.mtu);
        for s in integrate_rk4(&p, 90_000.0, 100.0, 30) {
            let exact_r = p.c1 * (-p.beta * s.t_ns / p.rtt_ns).exp();
            let exact_s = p.c1 / (1.0 + p.c1 * k * s.t_ns);
            assert!((s.r1 - exact_r).abs() / exact_r < 1e-3);
            assert!((s.s1 - exact_s).abs() / exact_s < 1e-3);
        }
    }

    /// The t=0 derivative condition from the paper: whenever
    /// `1/r < (C1+C0)/(s·MTU)`, the fairness difference must become
    /// positive immediately (and vice versa stay ~0/negative when the
    /// inequality flips the other way hard).
    #[test]
    fn prop_initial_derivative_sign() {
        for case in 0..256u64 {
            let mut rng = DetRng::new(0xf1d + case);
            let c1 = 2.0 + 18.0 * rng.f64();
            let ratio = 0.1 + 0.8 * rng.f64();
            let s = 5.0 + 95.0 * rng.f64();
            let rtt = 5_000.0 + 95_000.0 * rng.f64();
            let p = FluidParams {
                beta: 0.5,
                rtt_ns: rtt,
                s,
                mtu: 1000.0,
                c1,
                c0: c1 * ratio,
            };
            let samples = integrate(&p, rtt / 10.0, 1.0, 10);
            let early = samples[2].fairness_difference();
            if p.sf_converges_faster() {
                assert!(
                    early > 0.0,
                    "case {case}: expected SF to pull ahead, got {early}"
                );
            } else {
                assert!(
                    early <= 1e-12,
                    "case {case}: expected per-RTT to hold, got {early}"
                );
            }
        }
    }

    /// Rates stay positive and finite for any sane parameters.
    #[test]
    fn prop_rates_stay_positive() {
        for case in 0..256u64 {
            let mut rng = DetRng::new(0x905 + case);
            let c1 = 1.0 + 19.0 * rng.f64();
            let s = 1.0 + 199.0 * rng.f64();
            let p = FluidParams {
                beta: 0.5,
                rtt_ns: 30_000.0,
                s,
                mtu: 1000.0,
                c1,
                c0: c1 / 2.0,
            };
            let samples = integrate(&p, 1_000_000.0, 10.0, 100);
            for smp in samples {
                assert!(smp.r1 > 0.0 && smp.s1 > 0.0, "case {case}");
                assert!(smp.r1.is_finite() && smp.s1.is_finite(), "case {case}");
            }
        }
    }
}
