//! `cc-hpcc` — HPCC: High Precision Congestion Control (Li et al.,
//! SIGCOMM 2019), plus the variants evaluated in the fairness paper.
//!
//! HPCC drives a byte window `W` from per-hop INT telemetry. Every ACK
//! carries, for each egress port the data packet crossed: the queue length,
//! the cumulative transmitted bytes, a timestamp, and the link bandwidth.
//! From consecutive ACKs the sender computes each hop's *normalized
//! inflight* `u_i = min(q0,q1)/(B_i·T) + txRate_i/B_i` and controls the
//! window multiplicatively against the most loaded hop:
//!
//! ```text
//! W = W_ref / (U/η) + W_AI
//! ```
//!
//! with η = 0.95 target utilization. A *reference window* `W_ref` commits
//! once per RTT so that per-ACK reactions to the same congestion event do
//! not compound; an `incStage` counter (max 5) bounds how many consecutive
//! additive-only increases may run before a multiplicative resync.
//!
//! # Variants (paper Section III-D / VI)
//!
//! * **default** — `W_AI` from 50 Mbps, per-RTT reference updates.
//! * **high-AI** — `W_AI` from 1 Gbps ("HPCC 1Gbps").
//! * **probabilistic** — decrease-side reference updates are randomly
//!   ignored with probability `1 - W_ref/W_max` ("HPCC Probabilistic").
//! * **VAI** — `W_AI` scaled by the Variable-AI token bank
//!   ([`faircc::VariableAi`]), fed by INT queue depths.
//! * **SF** — decrease-side reference updates every `s` ACKs instead of
//!   per RTT ([`faircc::SamplingFrequency`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use dcsim::{BitRate, Bytes, DetRng, Nanos};
use faircc::{
    AckFeedback, CcMode, CcSnapshot, CongestionControl, IntHop, IntStack, MetricsRegistry,
    ProbabilisticGate, SamplingFrequency, SenderLimits, SfConfig, VaiConfig, VariableAi,
    MAX_INT_HOPS,
};

/// Tunables for one HPCC flow.
#[derive(Debug, Clone)]
pub struct HpccConfig {
    /// Base (uncongested) round-trip time `T`.
    pub base_rtt: Nanos,
    /// The sender NIC line rate (window cap = line-rate BDP).
    pub line_rate: BitRate,
    /// Target utilization η (paper: 0.95).
    pub eta: f64,
    /// Maximum consecutive additive-increase stages (paper: 5).
    pub max_stage: u32,
    /// Additive increase per update, in bytes (derived from an AI rate:
    /// `W_AI = ai_rate · T / 8`; the paper's default is 50 Mbps).
    pub wai: f64,
    /// Variable AI (None = stock HPCC).
    pub vai: Option<VaiConfig>,
    /// Sampling Frequency (None = per-RTT decreases).
    pub sf: Option<SfConfig>,
    /// Probabilistic-feedback baseline: ignore decrease commits with
    /// probability `1 - W_ref/W_max` (None = deterministic).
    pub probabilistic: bool,
    /// NEGATIVE CONTROL (off in every paper configuration): gate rate
    /// *increases* on the sampling-frequency schedule too. The paper
    /// explicitly rejects this — "flows with a higher rate [would]
    /// increase their rate more often and worsen fairness" — and the
    /// `ablation-sf-increases` bench demonstrates it.
    pub sf_on_increases: bool,
}

impl HpccConfig {
    /// The paper's default HPCC: AI = 50 Mbps, η = 0.95, maxStage = 5.
    pub fn paper_default(base_rtt: Nanos, line_rate: BitRate) -> Self {
        HpccConfig {
            base_rtt,
            line_rate,
            eta: 0.95,
            max_stage: 5,
            wai: wai_bytes(BitRate::from_mbps(50), base_rtt),
            vai: None,
            sf: None,
            probabilistic: false,
            sf_on_increases: false,
        }
    }

    /// The "HPCC 1Gbps" high-AI baseline.
    pub fn high_ai(base_rtt: Nanos, line_rate: BitRate) -> Self {
        HpccConfig {
            wai: wai_bytes(BitRate::from_gbps(1), base_rtt),
            ..Self::paper_default(base_rtt, line_rate)
        }
    }

    /// The "HPCC Probabilistic" baseline.
    pub fn probabilistic(base_rtt: Nanos, line_rate: BitRate) -> Self {
        HpccConfig {
            probabilistic: true,
            ..Self::paper_default(base_rtt, line_rate)
        }
    }

    /// The paper's "HPCC VAI SF" configuration: Variable AI with
    /// Token_Thresh = the network's minimum BDP, 1 token per KB of queue,
    /// and Sampling Frequency s = 30.
    pub fn vai_sf(base_rtt: Nanos, line_rate: BitRate, min_bdp: Bytes) -> Self {
        HpccConfig {
            vai: Some(VaiConfig::hpcc_default(min_bdp.as_f64())),
            sf: Some(SfConfig::paper_default()),
            ..Self::paper_default(base_rtt, line_rate)
        }
    }

    /// The line-rate window (BDP): both the starting and the maximum
    /// window.
    pub fn max_window(&self) -> f64 {
        self.line_rate.bdp(self.base_rtt).as_f64()
    }
}

/// `W_AI` in bytes for an additive-increase *rate*.
pub fn wai_bytes(ai_rate: BitRate, base_rtt: Nanos) -> f64 {
    ai_rate.as_f64() * base_rtt.as_secs_f64() / 8.0
}

/// One flow's HPCC state.
pub struct Hpcc {
    cfg: HpccConfig,
    name: String,
    /// Current (per-ACK) window, bytes.
    window: f64,
    /// Reference window, committed once per update period.
    w_ref: f64,
    /// EWMA of normalized inflight.
    u: f64,
    /// Consecutive additive-increase stages.
    inc_stage: u32,
    /// Last per-hop INT records (for differencing).
    last_int: Option<IntStack>,
    /// Cumulative bytes handed to the NIC (tracks `snd_nxt`).
    snd_nxt: u64,
    /// Cumulative bytes acknowledged.
    ack_total: u64,
    /// ACKs with `ack_total > last_update_seq` mark an RTT boundary.
    last_update_seq: u64,
    vai: Option<VariableAi>,
    sf: Option<SamplingFrequency>,
    prob: Option<ProbabilisticGate>,
    /// Max queue seen this RTT (instrumentation mirror of VAI's input).
    max_c_this_rtt: f64,
}

impl Hpcc {
    /// Create a flow starting at line rate (RDMA behaviour: first window =
    /// one BDP).
    pub fn new(cfg: HpccConfig, rng: DetRng) -> Self {
        let w0 = cfg.max_window();
        let vai = cfg.vai.map(VariableAi::new);
        let sf = cfg.sf.map(SamplingFrequency::new);
        let prob = cfg.probabilistic.then(|| ProbabilisticGate::new(w0, rng));
        let name = match (&vai, &sf, &prob) {
            (Some(_), Some(_), _) => "HPCC VAI SF",
            (Some(_), None, _) => "HPCC VAI",
            (None, Some(_), _) => "HPCC SF",
            (None, None, Some(_)) => "HPCC Probabilistic",
            (None, None, None) => "HPCC",
        }
        .to_string();
        Hpcc {
            cfg,
            name,
            window: w0,
            w_ref: w0,
            u: 1.0,
            inc_stage: 0,
            last_int: None,
            snd_nxt: 0,
            ack_total: 0,
            last_update_seq: 0,
            vai,
            sf,
            prob,
            max_c_this_rtt: 0.0,
        }
    }

    /// The current window in bytes (for tests/instrumentation).
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The reference window in bytes.
    pub fn w_ref(&self) -> f64 {
        self.w_ref
    }

    /// The current utilization estimate `U`.
    pub fn utilization(&self) -> f64 {
        self.u
    }

    /// HPCC's MeasureInflight: fold this ACK's per-hop telemetry into the
    /// EWMA utilization estimate. Returns the *instantaneous* max-hop
    /// `u` for VAI's congestion predicate.
    fn measure_inflight(&mut self, int: &IntStack) -> f64 {
        let t = self.cfg.base_rtt.as_secs_f64();
        let mut u_max = 0.0f64;
        let mut tau = self.cfg.base_rtt.as_secs_f64();
        if let Some(last) = &self.last_int {
            let n = last.len().min(int.len()).min(MAX_INT_HOPS);
            for i in 0..n {
                let (prev, cur): (&IntHop, &IntHop) = (&last.hops()[i], &int.hops()[i]);
                let dt = cur.ts.saturating_sub(prev.ts).as_secs_f64();
                if dt <= 0.0 || cur.rate.as_u64() == 0 {
                    continue;
                }
                let tx_rate = (cur.tx_bytes.saturating_sub(prev.tx_bytes)) as f64 / dt;
                let b = cur.rate.bytes_per_sec();
                let qlen = prev.qlen.as_f64().min(cur.qlen.as_f64());
                let u_i = qlen / (b * t) + tx_rate / b;
                if u_i > u_max {
                    u_max = u_i;
                    tau = dt;
                }
            }
            let tau = tau.min(t);
            self.u = (1.0 - tau / t) * self.u + (tau / t) * u_max;
        }
        self.last_int = Some(*int);
        u_max
    }

    /// The effective additive increase for this update (Variable AI aware).
    fn effective_wai(&mut self, spend: bool) -> f64 {
        match &mut self.vai {
            Some(vai) => self.cfg.wai * vai.ai_multiplier(spend),
            None => self.cfg.wai,
        }
    }
}

impl CongestionControl for Hpcc {
    fn on_ack(&mut self, fb: &AckFeedback) {
        self.ack_total += fb.acked.as_u64();
        let u_now = self.measure_inflight(&fb.int);

        // VAI bookkeeping: congestion measure = max queue across hops.
        let max_q = fb.int.max_qlen().as_f64();
        let congested_now = self.u >= self.cfg.eta;
        self.max_c_this_rtt = self.max_c_this_rtt.max(u_now / self.cfg.eta);
        if let Some(vai) = &mut self.vai {
            vai.observe(max_q, congested_now);
        }

        let rtt_boundary = self.ack_total > self.last_update_seq;
        let sf_boundary = self.sf.as_mut().map(|sf| sf.on_ack()).unwrap_or(false);

        let decrease_branch = self.u >= self.cfg.eta || self.inc_stage >= self.cfg.max_stage;

        // When does this update commit the reference window?
        let commit = if decrease_branch {
            // Decreases: per sampling period if SF is on, else per RTT.
            if self.sf.is_some() {
                sf_boundary
            } else {
                rtt_boundary
            }
        } else if self.cfg.sf_on_increases && self.sf.is_some() {
            // Negative control: increases per s ACKs (see config docs).
            sf_boundary
        } else {
            // Increases: always once per RTT.
            rtt_boundary
        };

        if decrease_branch {
            let wai = self.effective_wai(commit);
            let new_w = self.w_ref / (self.u / self.cfg.eta) + wai;
            if commit {
                // Probabilistic baseline: randomly ignore decrease commits
                // for low-window flows.
                let w_ref = self.w_ref;
                let use_it = match &mut self.prob {
                    Some(gate) if new_w < w_ref => gate.should_use(w_ref),
                    _ => true,
                };
                self.window = new_w;
                if use_it {
                    self.w_ref = self.window;
                }
                self.inc_stage = 0;
            } else {
                self.window = new_w;
            }
        } else {
            let wai = self.effective_wai(false);
            self.window = self.w_ref + wai;
            if commit {
                self.inc_stage += 1;
                self.w_ref = self.window;
            }
        }

        // Clamp to [one MTU-ish floor, line-rate BDP].
        let w_max = self.cfg.max_window();
        self.window = self.window.clamp(100.0, w_max);
        if commit {
            self.w_ref = self.w_ref.clamp(100.0, w_max);
        }

        if rtt_boundary {
            self.last_update_seq = self.snd_nxt;
            if let Some(vai) = &mut self.vai {
                vai.on_rtt_end();
            }
            self.max_c_this_rtt = 0.0;
        }
    }

    fn on_send(&mut self, _now: Nanos, bytes: Bytes) {
        self.snd_nxt += bytes.as_u64();
    }

    fn on_rto(&mut self, _now: Nanos) {
        // A retransmission timeout means the pipe collapsed (loss burst
        // or outage): halve the window, commit it as the new reference,
        // and restart the increase ladder.
        let w_max = self.cfg.max_window();
        self.window = (self.window * 0.5).clamp(100.0, w_max);
        self.w_ref = self.window;
        self.inc_stage = 0;
    }

    fn limits(&self) -> SenderLimits {
        SenderLimits::windowed(self.window, self.cfg.base_rtt)
    }

    fn mode(&self) -> CcMode {
        CcMode::Window
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn snapshot(&self) -> CcSnapshot {
        let l = self.limits();
        CcSnapshot {
            window_bytes: l.window_bytes,
            rate: l.pacing,
            vai_bank: self.vai.as_ref().map_or(0.0, VariableAi::bank),
        }
    }

    fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        reg.histogram_record_f64("cc.hpcc.window_bytes", self.window);
        reg.histogram_record("cc.hpcc.inc_stage", u64::from(self.inc_stage));
        if let Some(vai) = &self.vai {
            reg.histogram_record_f64("cc.hpcc.vai_bank", vai.bank());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTT: Nanos = Nanos(4_000);
    const LINE: BitRate = BitRate(100_000_000_000);

    fn mkint(qlen: u64, tx_bytes: u64, ts: Nanos) -> IntStack {
        let mut s = IntStack::new();
        s.push(IntHop {
            qlen: Bytes(qlen),
            tx_bytes,
            ts,
            rate: LINE,
        });
        s
    }

    fn ack(seq_total: &mut u64, qlen: u64, tx: u64, ts: Nanos) -> AckFeedback {
        *seq_total += 1000;
        AckFeedback {
            now: ts,
            rtt: RTT,
            ecn: false,
            int: mkint(qlen, tx, ts),
            acked: Bytes(1000),
            hops: 1,
        }
    }

    fn hpcc(cfg: HpccConfig) -> Hpcc {
        Hpcc::new(cfg, DetRng::new(1))
    }

    #[test]
    fn starts_at_line_rate_window() {
        let h = hpcc(HpccConfig::paper_default(RTT, LINE));
        // 100 Gbps * 4 us = 50 KB.
        assert_eq!(h.window(), 50_000.0);
        let lim = h.limits();
        assert_eq!(lim.pacing, LINE);
    }

    #[test]
    fn wai_conversion() {
        // 50 Mbps over 4 us = 25 bytes.
        assert!((wai_bytes(BitRate::from_mbps(50), RTT) - 25.0).abs() < 1e-9);
        // 1 Gbps over 4 us = 500 bytes.
        assert!((wai_bytes(BitRate::from_gbps(1), RTT) - 500.0).abs() < 1e-9);
    }

    /// On an underutilized link the window grows: additively by W_AI while
    /// `incStage < maxStage`, then via the multiplicative resync
    /// (`W_ref/(U/η)`), converging to the BDP cap.
    #[test]
    fn underutilized_link_growth() {
        let mut h = hpcc(HpccConfig::paper_default(RTT, LINE));
        h.w_ref = 10_000.0;
        h.window = 10_000.0;
        let mut seq = 0u64;
        let mut t = Nanos(0);
        for _ in 0..20 {
            h.on_send(t, Bytes(1000));
            t += Nanos(4_000);
            let tx = seq; // tx counter grows at ~2 Gbps equivalent
            let a = ack(&mut seq, 0, tx, t);
            h.on_ack(&a);
        }
        assert!(h.utilization() < 0.95, "u = {}", h.utilization());
        // After maxStage additive rounds plus the MIMD resync, the window
        // reached the line-rate cap.
        assert_eq!(h.w_ref(), h.cfg.max_window());

        // Isolate one pure additive stage: low utilization, fresh stage
        // counter, below the cap.
        h.inc_stage = 0;
        h.u = 0.5;
        h.w_ref = 20_000.0;
        h.window = 20_000.0;
        h.on_send(t, Bytes(1000));
        t += Nanos(4_000);
        let tx = seq;
        let a = ack(&mut seq, 0, tx, t);
        h.on_ack(&a);
        // u stays below eta (EWMA of 0.5 and ~0.02), so this was an
        // additive commit of exactly one W_AI.
        assert!(
            (h.w_ref() - 20_000.0 - h.cfg.wai).abs() < 1e-9,
            "w_ref {} expected {}",
            h.w_ref(),
            20_000.0 + h.cfg.wai
        );
    }

    /// An overloaded hop (U > η) must shrink the window multiplicatively.
    #[test]
    fn overload_decreases_window() {
        let mut h = hpcc(HpccConfig::paper_default(RTT, LINE));
        let mut t = Nanos(0);
        let mut tx = 0u64;
        let w0 = h.window();
        // Full-rate hop with a standing 100 KB queue: U ≈ 1 + q/(B·T) ≈ 3.
        for i in 0..40 {
            h.on_send(t, Bytes(1000));
            t += Nanos(400);
            tx += 5000; // 5000 B / 400 ns = 100 Gbps
            let a = AckFeedback {
                now: t,
                rtt: RTT + Nanos(8_000),
                ecn: false,
                int: mkint(100_000, tx, t),
                acked: Bytes(1000),
                hops: 1,
            };
            h.on_ack(&a);
            if i == 0 {
                continue;
            }
        }
        assert!(h.utilization() > 1.0);
        assert!(h.window() < w0 / 2.0, "w = {}", h.window());
    }

    #[test]
    fn window_never_exceeds_bdp_or_floor() {
        let mut h = hpcc(HpccConfig::high_ai(RTT, LINE));
        let mut t = Nanos(0);
        let mut tx = 0u64;
        for _ in 0..2000 {
            h.on_send(t, Bytes(1000));
            t += Nanos(80);
            tx += 1000;
            let a = AckFeedback {
                now: t,
                rtt: RTT,
                ecn: false,
                int: mkint(0, tx, t),
                acked: Bytes(1000),
                hops: 1,
            };
            h.on_ack(&a);
            assert!(h.window() <= h.cfg.max_window() + 1e-9);
            assert!(h.window() >= 100.0);
        }
    }

    #[test]
    fn sf_commits_decreases_every_s_acks() {
        let cfg = HpccConfig {
            sf: Some(SfConfig {
                acks_per_decrease: 5,
            }),
            ..HpccConfig::paper_default(RTT, LINE)
        };
        let mut h = hpcc(cfg);
        let mut t = Nanos(0);
        let mut tx = 0u64;
        let mut ref_updates = 0u32;
        let mut last_ref = h.w_ref();
        // Constant overload; no RTT boundary would fire for a long time if
        // we never advance snd_nxt, so SF must drive the decreases.
        for _ in 0..25 {
            t += Nanos(400);
            tx += 5000;
            let a = AckFeedback {
                now: t,
                rtt: RTT + Nanos(8000),
                ecn: false,
                int: mkint(100_000, tx, t),
                acked: Bytes(1000),
                hops: 1,
            };
            h.on_ack(&a);
            if (h.w_ref() - last_ref).abs() > 1e-12 {
                ref_updates += 1;
                last_ref = h.w_ref();
            }
        }
        // 25 ACKs, s=5 => exactly 5 reference commits.
        assert_eq!(ref_updates, 5);
    }

    #[test]
    fn vai_raises_ai_under_congestion() {
        let min_bdp = Bytes(50_000);
        let cfg = HpccConfig::vai_sf(RTT, LINE, min_bdp);
        let mut h = hpcc(cfg);
        let mut t = Nanos(0);
        let mut tx = 0u64;
        // Heavy congestion (q = 150 KB > Token_Thresh) across one RTT.
        for _ in 0..10 {
            h.on_send(t, Bytes(1000));
            t += Nanos(400);
            tx += 5000;
            let a = AckFeedback {
                now: t,
                rtt: RTT + Nanos(12_000),
                ecn: false,
                int: mkint(150_000, tx, t),
                acked: Bytes(1000),
                hops: 1,
            };
            h.on_ack(&a);
        }
        let vai = h
            .vai
            .as_ref()
            .expect("VaiSf variant carries a VAI instance");
        assert!(vai.bank() > 0.0, "VAI should have minted tokens");
    }

    #[test]
    fn probabilistic_low_window_ignores_decreases() {
        // Force the reference window small, then verify decrease commits
        // are frequently skipped.
        let cfg = HpccConfig::probabilistic(RTT, LINE);
        let mut h = hpcc(cfg);
        h.w_ref = 500.0; // 1% of max window
        h.window = 500.0;
        let mut skipped = 0;
        let mut t = Nanos(0);
        let mut tx = 0u64;
        for _ in 0..200 {
            // Force an RTT boundary each ACK.
            h.on_send(t, Bytes(1000));
            t += Nanos(4000);
            tx += 50_000;
            let before = h.w_ref();
            let a = AckFeedback {
                now: t,
                rtt: RTT + Nanos(8000),
                ecn: false,
                int: mkint(100_000, tx, t),
                acked: Bytes(1000),
                hops: 1,
            };
            h.on_ack(&a);
            if (h.w_ref() - before).abs() < 1e-9 {
                skipped += 1;
            }
        }
        // At ~1% of max window, ~99% of decrease commits are ignored.
        assert!(skipped > 150, "skipped only {skipped}/200");
    }

    mod properties {
        use super::*;

        /// Arbitrary (but physically plausible) ACK feedback:
        /// (qlen bytes, tx delta bytes, dt ns).
        fn arb_ack(rng: &mut DetRng) -> (u64, u64, u64) {
            (
                rng.below(500_000),
                rng.below(100_000),
                100 + rng.below(49_900),
            )
        }

        fn arb_acks(rng: &mut DetRng, max: u64) -> Vec<(u64, u64, u64)> {
            (0..1 + rng.below(max - 1)).map(|_| arb_ack(rng)).collect()
        }

        /// Under any feedback sequence the window stays in [floor, BDP]
        /// and never becomes NaN/inf; the reference window obeys the
        /// same bounds.
        #[test]
        fn prop_window_bounded() {
            for case in 0..64u64 {
                let mut rng = DetRng::new(0x4a11 + case);
                let acks = arb_acks(&mut rng, 300);
                let mut h = hpcc(HpccConfig::vai_sf(RTT, LINE, Bytes(50_000)));
                let mut t = Nanos(0);
                let mut tx = 0u64;
                for (qlen, dtx, dt) in acks {
                    h.on_send(t, Bytes(1000));
                    t += Nanos(dt);
                    tx += dtx;
                    let a = AckFeedback {
                        now: t,
                        rtt: RTT + Nanos(qlen / 12), // delay grows with queue
                        ecn: false,
                        int: mkint(qlen, tx, t),
                        acked: Bytes(1000),
                        hops: 1,
                    };
                    h.on_ack(&a);
                    assert!(h.window().is_finite(), "case {case}");
                    assert!(h.window() >= 100.0 - 1e-9, "case {case}");
                    assert!(h.window() <= h.cfg.max_window() + 1e-9, "case {case}");
                    assert!(h.w_ref().is_finite(), "case {case}");
                    assert!(h.utilization().is_finite(), "case {case}");
                    let lim = h.limits();
                    assert!(lim.pacing.as_u64() > 0, "case {case}");
                }
            }
        }

        /// Identical feedback sequences produce identical windows (full
        /// determinism, even for the probabilistic variant with a fixed
        /// seed).
        #[test]
        fn prop_deterministic() {
            for case in 0..64u64 {
                let mut rng = DetRng::new(0xde7e + case);
                let acks = arb_acks(&mut rng, 100);
                let run = |seed: u64| {
                    let mut h = Hpcc::new(HpccConfig::probabilistic(RTT, LINE), DetRng::new(seed));
                    let mut t = Nanos(0);
                    let mut tx = 0u64;
                    for (qlen, dtx, dt) in &acks {
                        h.on_send(t, Bytes(1000));
                        t += Nanos(*dt);
                        tx += dtx;
                        h.on_ack(&AckFeedback {
                            now: t,
                            rtt: RTT,
                            ecn: false,
                            int: mkint(*qlen, tx, t),
                            acked: Bytes(1000),
                            hops: 1,
                        });
                    }
                    h.window()
                };
                assert_eq!(run(5), run(5), "case {case}");
            }
        }
    }

    #[test]
    fn sf_on_increases_commits_increases_per_s_acks() {
        let cfg = HpccConfig {
            sf: Some(SfConfig {
                acks_per_decrease: 4,
            }),
            sf_on_increases: true,
            ..HpccConfig::paper_default(RTT, LINE)
        };
        let mut h = hpcc(cfg);
        h.w_ref = 10_000.0;
        h.window = 10_000.0;
        h.u = 0.1; // deeply underutilized: pure increase branch
        let mut t = Nanos(0);
        let mut tx = 0u64;
        let mut commits = 0;
        let mut last_ref = h.w_ref();
        // No on_send: RTT boundaries never fire; only SF can commit.
        for _ in 0..12 {
            t += Nanos(400);
            tx += 100; // trickle: keeps u low
            let a = AckFeedback {
                now: t,
                rtt: RTT,
                ecn: false,
                int: mkint(0, tx, t),
                acked: Bytes(1000),
                hops: 1,
            };
            h.on_ack(&a);
            if (h.w_ref() - last_ref).abs() > 1e-12 {
                commits += 1;
                last_ref = h.w_ref();
            }
        }
        assert_eq!(commits, 3, "12 ACKs at s=4 must commit 3 increases");
    }

    #[test]
    fn names_follow_variant() {
        assert_eq!(hpcc(HpccConfig::paper_default(RTT, LINE)).name(), "HPCC");
        assert_eq!(
            hpcc(HpccConfig::probabilistic(RTT, LINE)).name(),
            "HPCC Probabilistic"
        );
        assert_eq!(
            hpcc(HpccConfig::vai_sf(RTT, LINE, Bytes(50_000))).name(),
            "HPCC VAI SF"
        );
    }
}
