//! `cc-dcqcn` — DCQCN: Datacenter QCN congestion control (Zhu et al.,
//! SIGCOMM 2015).
//!
//! DCQCN is the paper's point of comparison for *probabilistic feedback*:
//! switches RED-mark packets with a probability that grows with queue
//! depth, receivers convert marks into rate-limited Congestion
//! Notification Packets (CNPs), and senders run a QCN-style rate machine.
//! Because flows with more packets in the queue are proportionally more
//! likely to be marked, DCQCN "does not suffer from unfairness like Swift
//! and HPCC" (paper Section II) — at the cost of slower, coarser reactions.
//!
//! # The rate machine
//!
//! Two rates: the *current* rate `Rc` actually paced, and the *target*
//! rate `Rt` it climbs back toward.
//!
//! * **CNP arrival** — `Rt ← Rc`, `Rc ← Rc·(1 − α/2)`, `α ← (1−g)·α + g`,
//!   and the increase state machine resets.
//! * **α decay timer** (55 µs without CNPs) — `α ← (1−g)·α`.
//! * **Rate increase events** fire on a timer (`T = 300 µs`) and on a byte
//!   counter (`B = 10 MB`), each maintaining an iteration count since the
//!   last CNP:
//!   * *fast recovery* (max(iters) ≤ F=5): `Rc ← (Rt + Rc)/2`;
//!   * *additive increase*: `Rt ← Rt + R_AI`, then `Rc ← (Rt + Rc)/2`;
//!   * *hyper increase* (min(iters) > F): `Rt ← Rt + R_HAI`, then halve
//!     toward `Rc` as above.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use dcsim::{BitRate, Bytes, Nanos};
use faircc::{AckFeedback, CcMode, CongestionControl, MetricsRegistry, SenderLimits};

/// Tunables for one DCQCN flow.
#[derive(Debug, Clone)]
pub struct DcqcnConfig {
    /// Line rate (initial and maximum rate).
    pub line_rate: BitRate,
    /// EWMA gain `g` for α (DCQCN default 1/256).
    pub g: f64,
    /// α decay timer interval (55 µs).
    pub alpha_timer: Nanos,
    /// Rate-increase timer interval (300 µs, the "fast" datacenter
    /// setting).
    pub rate_timer: Nanos,
    /// Rate-increase byte counter (10 MB).
    pub byte_counter: Bytes,
    /// Fast-recovery threshold F (5 iterations).
    pub f: u32,
    /// Additive increase step (40 Mbps).
    pub r_ai: BitRate,
    /// Hyper increase step (400 Mbps).
    pub r_hai: BitRate,
    /// Minimum rate floor (keeps flows alive; 10 Mbps).
    pub min_rate: BitRate,
}

impl DcqcnConfig {
    /// DCQCN defaults for 100 Gbps fabrics (DCQCN paper values with the
    /// faster rate timer used by the HPCC artifact's simulations).
    pub fn default_100g() -> Self {
        DcqcnConfig {
            line_rate: BitRate::from_gbps(100),
            g: 1.0 / 256.0,
            alpha_timer: Nanos::from_micros(55),
            rate_timer: Nanos::from_micros(300),
            byte_counter: Bytes::from_mb(10),
            f: 5,
            r_ai: BitRate::from_mbps(40),
            r_hai: BitRate::from_mbps(400),
            min_rate: BitRate::from_mbps(10),
        }
    }
}

/// One flow's DCQCN state.
pub struct Dcqcn {
    cfg: DcqcnConfig,
    /// Current (paced) rate, bits/s.
    rc: f64,
    /// Target rate, bits/s.
    rt: f64,
    /// Congestion extent estimate α.
    alpha: f64,
    /// Iterations of the rate timer since the last CNP.
    t_iters: u32,
    /// Iterations of the byte counter since the last CNP.
    b_iters: u32,
    /// Bytes sent since the last byte-counter event.
    bytes_since: u64,
    /// Next α-decay deadline.
    alpha_due: Nanos,
    /// Next rate-increase deadline.
    rate_due: Nanos,
    /// Whether a CNP was received since the last α timer tick.
    cnp_since_alpha_tick: bool,
}

impl Dcqcn {
    /// A flow starting at line rate with α = 1 (DCQCN convention).
    pub fn new(cfg: DcqcnConfig) -> Self {
        let r0 = cfg.line_rate.as_f64();
        Dcqcn {
            alpha_due: cfg.alpha_timer,
            rate_due: cfg.rate_timer,
            cfg,
            rc: r0,
            rt: r0,
            alpha: 1.0,
            t_iters: 0,
            b_iters: 0,
            bytes_since: 0,
            cnp_since_alpha_tick: false,
        }
    }

    /// Current rate in bits/s.
    pub fn rate(&self) -> f64 {
        self.rc
    }

    /// Target rate in bits/s.
    pub fn target_rate(&self) -> f64 {
        self.rt
    }

    /// Congestion parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn clamp(&mut self) {
        let max = self.cfg.line_rate.as_f64();
        let min = self.cfg.min_rate.as_f64();
        self.rc = self.rc.clamp(min, max);
        self.rt = self.rt.clamp(min, max);
    }

    /// One rate-increase event (timer- or byte-counter-triggered).
    fn increase(&mut self) {
        let fr = self.cfg.f;
        if self.t_iters.max(self.b_iters) <= fr {
            // Fast recovery: climb halfway back to the target.
        } else if self.t_iters.min(self.b_iters) > fr {
            // Hyper increase.
            self.rt += self.cfg.r_hai.as_f64();
        } else {
            // Additive increase.
            self.rt += self.cfg.r_ai.as_f64();
        }
        self.rc = (self.rt + self.rc) / 2.0;
        self.clamp();
    }
}

impl CongestionControl for Dcqcn {
    fn on_ack(&mut self, _fb: &AckFeedback) {
        // DCQCN reacts to CNPs, not ACKs.
    }

    fn on_cnp(&mut self, _now: Nanos) {
        self.rt = self.rc;
        self.rc *= 1.0 - self.alpha / 2.0;
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        self.t_iters = 0;
        self.b_iters = 0;
        self.bytes_since = 0;
        self.cnp_since_alpha_tick = true;
        self.clamp();
    }

    fn on_send(&mut self, _now: Nanos, bytes: Bytes) {
        self.bytes_since += bytes.as_u64();
        if self.bytes_since >= self.cfg.byte_counter.as_u64() {
            self.bytes_since -= self.cfg.byte_counter.as_u64();
            self.b_iters += 1;
            self.increase();
        }
    }

    fn next_timer(&self) -> Option<Nanos> {
        Some(self.alpha_due.min(self.rate_due))
    }

    fn on_timer(&mut self, now: Nanos) {
        if now >= self.alpha_due {
            if !self.cnp_since_alpha_tick {
                self.alpha *= 1.0 - self.cfg.g;
            }
            self.cnp_since_alpha_tick = false;
            self.alpha_due = now + self.cfg.alpha_timer;
        }
        if now >= self.rate_due {
            self.t_iters += 1;
            self.increase();
            self.rate_due = now + self.cfg.rate_timer;
        }
    }

    fn on_rto(&mut self, _now: Nanos) {
        // Timeout = sustained loss, far beyond what a CNP signals: treat
        // α as saturated, halve the rate, and restart both recovery
        // ladders from fast recovery.
        self.rt = self.rc;
        self.rc *= 0.5;
        self.alpha = 1.0;
        self.t_iters = 0;
        self.b_iters = 0;
        self.bytes_since = 0;
        self.clamp();
    }

    fn limits(&self) -> SenderLimits {
        SenderLimits::rate_based(BitRate::from_bps_f64(self.rc))
    }

    fn mode(&self) -> CcMode {
        CcMode::Rate
    }

    fn name(&self) -> &str {
        "DCQCN"
    }

    fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        reg.histogram_record_f64("cc.dcqcn.rate_bps", self.rc);
        reg.histogram_record_f64("cc.dcqcn.target_bps", self.rt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcqcn() -> Dcqcn {
        Dcqcn::new(DcqcnConfig::default_100g())
    }

    #[test]
    fn starts_at_line_rate_with_full_alpha() {
        let d = dcqcn();
        assert_eq!(d.rate(), 100e9);
        assert_eq!(d.alpha(), 1.0);
        assert!(d.limits().window_bytes.is_infinite());
    }

    #[test]
    fn first_cnp_halves_the_rate() {
        let mut d = dcqcn();
        d.on_cnp(Nanos(0));
        // α = 1 ⇒ Rc ← Rc/2; Rt keeps the old rate.
        assert_eq!(d.rate(), 50e9);
        assert_eq!(d.target_rate(), 100e9);
        // α moved toward 1 (stays 1 at the fixpoint of the EWMA with g).
        assert!((d.alpha() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut d = dcqcn();
        let mut now = Nanos(0);
        for _ in 0..100 {
            now = d.next_timer().expect("DCQCN always arms its rate timer");
            d.on_timer(now);
        }
        assert!(d.alpha() < 0.9, "alpha {}", d.alpha());
        // Decayed alpha means milder decreases.
        let before = d.rate();
        d.on_cnp(now);
        assert!(d.rate() > before * 0.55);
    }

    #[test]
    fn fast_recovery_climbs_halfway_back() {
        let mut d = dcqcn();
        d.on_cnp(Nanos(0)); // Rc=50G, Rt=100G
        d.on_timer(
            d.next_timer()
                .expect("DCQCN always arms its rate timer")
                .max(d.rate_due),
        );
        // After one fast-recovery event: Rc = (100+50)/2 = 75G.
        assert!((d.rate() - 75e9).abs() < 1e-3 * 75e9, "{}", d.rate());
    }

    #[test]
    fn additive_phase_raises_target() {
        let mut d = dcqcn();
        d.on_cnp(Nanos(0));
        // Drive rate-timer events past fast recovery (F = 5).
        let mut now = Nanos(0);
        for _ in 0..7 {
            now += d.cfg.rate_timer;
            d.rate_due = now; // force the rate timer only
            d.alpha_due = now + Nanos::SEC;
            d.on_timer(now);
        }
        // Past F iterations of the timer only: additive phase, target
        // crept above the pre-CNP rate by ~2 * R_AI.
        assert!(d.target_rate() >= 100e9 - 1.0, "rt {}", d.target_rate());
    }

    #[test]
    fn byte_counter_triggers_increases() {
        let mut d = dcqcn();
        d.on_cnp(Nanos(0));
        let before = d.rate();
        // 10 MB of sends = one byte-counter iteration.
        for _ in 0..10 {
            d.on_send(Nanos(0), Bytes::from_mb(1));
        }
        assert!(d.rate() > before, "byte counter should trigger recovery");
    }

    #[test]
    fn rate_never_exceeds_line_or_drops_below_floor() {
        let mut d = dcqcn();
        // Hammer with CNPs.
        for i in 0..200 {
            d.on_cnp(Nanos(i * 1000));
        }
        assert!(d.rate() >= d.cfg.min_rate.as_f64());
        // Then recover for a long time.
        let mut now = Nanos(1_000_000);
        for _ in 0..30_000 {
            now = d
                .next_timer()
                .expect("DCQCN always arms its rate timer")
                .max(now);
            d.on_timer(now);
        }
        assert!(d.rate() <= d.cfg.line_rate.as_f64());
        assert!(
            (d.rate() - 100e9).abs() < 1e9,
            "should recover to line rate"
        );
    }

    #[test]
    fn repeated_cnps_converge_rate_to_alpha_fixpoint() {
        let mut d = dcqcn();
        // With CNPs every tick, alpha stays 1 and rate hits the floor.
        for i in 0..100 {
            d.on_cnp(Nanos(i * 50_000));
        }
        assert_eq!(d.rate(), d.cfg.min_rate.as_f64());
    }

    #[test]
    fn increase_state_resets_on_cnp() {
        let mut d = dcqcn();
        d.on_cnp(Nanos(0));
        let mut now = Nanos(0);
        for _ in 0..7 {
            now += d.cfg.rate_timer;
            d.rate_due = now;
            d.alpha_due = now + Nanos::SEC;
            d.on_timer(now);
        }
        assert!(d.t_iters > d.cfg.f);
        d.on_cnp(now);
        assert_eq!(d.t_iters, 0);
        assert_eq!(d.b_iters, 0);
    }
}
