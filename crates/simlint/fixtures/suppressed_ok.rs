// Fixture: every violation here carries a suppression — zero findings.
use std::collections::HashMap; // simlint: allow(D1) — fixture demonstrating suppression

fn sample_count(window_us: f64, interval_us: f64) -> usize {
    // simlint: allow(D4) — bounded sample count, not a unit quantity
    (window_us / interval_us).ceil() as usize
}

fn head(q: &std::collections::VecDeque<u32>) -> u32 {
    *q.front().unwrap() // simlint: allow(D5) — fixture demonstrating suppression
}
