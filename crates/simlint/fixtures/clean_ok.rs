// Fixture: idiomatic sim code — the scanner must stay silent, including on
// rule-like tokens inside strings and comments (HashMap, Instant::now,
// thread_rng, .unwrap()).
use std::collections::BTreeMap;

fn routes() -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    m.insert(1, 2);
    m
}

fn label() -> &'static str {
    "HashMap Instant::now thread_rng .unwrap() — strings do not trip rules"
}

fn delay(total_ps: u64) -> u64 {
    // Integer-only casts carry no float evidence and are fine.
    let ns = (total_ps / 1_000) as u32;
    ns as u64
}

fn head(q: &std::collections::VecDeque<u32>) -> u32 {
    *q.front().expect("caller checked backlog")
}
