// Known-bad fixture: D5 must fire on undocumented panics.
fn head(q: &std::collections::VecDeque<u32>) -> u32 {
    let a = q.front().unwrap();
    let b = q.back().expect("");
    *a + *b
}
