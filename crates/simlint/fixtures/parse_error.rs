//! Fixture with an unbalanced delimiter: the v2 parser must report a
//! parse failure (CLI exit code 2) while the v1 line rules still run.

pub fn broken() {
    let x = (1, 2;
}
