//! Known-bad fixture for O1: unchecked `+` / `*` / `+=` on u64
//! time/byte quantities inside a hot-path crate (this file lives under
//! a `dcsim/` path segment, which is what puts it in O1's scope).

use crate::units::Nanos;

pub fn deadline(now: Nanos, step: Nanos) -> u64 {
    now.as_u64() + step.as_u64() // O1: saturating_add
}

pub fn scaled(t: Nanos, n: u64) -> u64 {
    t.as_u64() * n // O1: saturating_mul
}

pub fn accumulate(t: Nanos) -> u64 {
    let mut total = 0u64;
    total += t.as_u64(); // O1: compound assign
    total
}
