//! Local unit definitions for the v2 fixture set.
//!
//! This file is named `units.rs` deliberately: unit-definition files are
//! exempt from the U rules (they are where raw construction and `.0`
//! access legitimately live), mirroring the real `dcsim` layout. The
//! other fixtures reference these types through the workspace symbol
//! table the analyzer builds over the whole fixture tree.

pub struct Nanos(pub u64);
pub struct Bytes(pub u64);
pub struct BitRate(pub u64);

impl Nanos {
    pub const ZERO: Nanos = Nanos(0);

    pub const fn from_ns(ns: u64) -> Nanos {
        Nanos(ns)
    }

    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    pub const fn new(b: u64) -> Bytes {
        Bytes(b)
    }

    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl BitRate {
    pub const fn from_bps(bps: u64) -> BitRate {
        BitRate(bps)
    }

    pub const fn as_u64(self) -> u64 {
        self.0
    }
}
