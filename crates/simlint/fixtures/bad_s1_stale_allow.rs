//! Known-bad fixture for S1: a suppression comment whose rule no longer
//! fires on the lines it covers. The directive itself is the finding,
//! and the autofix deletes the whole comment line.

pub fn quiet() -> u64 {
    // simlint: allow(D5) — legacy justification that no longer applies
    40 + 2
}
