// Known-bad fixture: D4 must fire on float→integer unit casts.
fn to_nanos(secs: f64) -> u64 {
    (secs * 1e9) as u64
}

fn to_rate(bps: f64) -> u64 {
    bps.round() as u64
}
