//! A1 fixture: heap allocation on the engine hot path. `step` reaches
//! `deliver` (per-event box + label) and `drain` (per-iteration growth
//! of an unreserved buffer, fixable from the loop head's length).

pub fn step(xs: &[u64]) {
    deliver(7);
    drain(xs);
}

fn deliver(x: u64) {
    let _b = Box::new(x);
    let _label = format!("pkt-{x}");
}

fn drain(xs: &[u64]) {
    let mut out = Vec::new();
    for x in xs.iter() {
        out.push(*x + 1);
    }
    let _ = out;
}
