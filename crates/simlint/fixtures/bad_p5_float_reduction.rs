//! P5 fixture: order-sensitive float accumulation. `fairness_index` sums
//! directly over a HashMap (local finding); `mean_sample` reduces over
//! `gather_samples`, whose element order comes from a hash iteration two
//! hops away (interprocedural finding).

use std::collections::HashMap;

fn fairness_index(shares: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_, s) in shares {
        total += *s;
    }
    total
}

fn gather_samples(m: &HashMap<u64, u64>) -> Vec<f64> {
    let mut v = Vec::new();
    for (_, x) in m {
        v.push(*x as f64);
    }
    v
}

fn mean_sample(m: &HashMap<u64, u64>) -> f64 {
    let mut sum = 0.0;
    for s in gather_samples(m) {
        sum += s;
    }
    sum
}
