//! Clean fixture: unit arithmetic done the sanctioned way. Must produce
//! zero findings under the full v1+v2 rule set.

use crate::units::{Bytes, Nanos};

pub fn same_unit_add(a: Nanos, b: Nanos) -> Nanos {
    a + b // same unit on both sides: fine (and not in O1 scope here)
}

pub fn named_constructors() -> (Nanos, Bytes) {
    (Nanos::from_ns(80), Bytes::new(1000))
}

pub fn sanctioned_escape(t: Nanos) -> u64 {
    t.as_u64() // the named escape hatch, not `.0`
}

pub fn exhaustive(kind: Option<u64>) -> u64 {
    // Option is std, not a workspace protocol enum: `_` is fine here.
    match kind {
        Some(v) => v,
        _ => 0,
    }
}
