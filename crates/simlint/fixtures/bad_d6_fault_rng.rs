//! D6 fixture: fault-injection code sourcing randomness outside the
//! dedicated FAULT_STREAM. Seeding a private generator (line 7) or
//! borrowing another subsystem's stream by raw number (line 8) couples
//! fault draws to the workload/ECMP/RED sequences.

fn build_fault_channel(seed: u64, root: &mut DetRng) -> (DetRng, DetRng, DetRng) {
    let private = DetRng::new(seed);
    let borrowed = root.stream(2);
    let sanctioned = root.stream(FAULT_STREAM); // the one right way
    (private, borrowed, sanctioned)
}
