// Known-bad fixture: D2 must fire on wall-clock reads in sim code.
use std::time::Instant;

fn measure() -> u128 {
    let t0 = Instant::now();
    let epoch = std::time::SystemTime::now();
    let _ = epoch;
    t0.elapsed().as_nanos()
}
