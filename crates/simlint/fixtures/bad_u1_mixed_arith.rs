//! Known-bad fixture for U1: arithmetic that mixes units, or mixes a
//! unit with a raw integer, in every direction the rule distinguishes.

use crate::units::{Bytes, Nanos};

pub fn unit_plus_other_unit(t: Nanos, b: Bytes) -> Nanos {
    t + b // U1: Nanos + Bytes
}

pub fn unit_plus_raw(t: Nanos) -> Nanos {
    t + 5 // U1: no Add<u64> impl for the fixture Nanos
}

pub fn raw_plus_unit(t: Nanos) -> Nanos {
    5 + t // U1: unit on the wrong side
}

pub fn escaped_cross_unit(t: Nanos, b: Bytes) -> u64 {
    t.as_u64() + b.as_u64() // U1: Nanos-escaped + Bytes-escaped
}
