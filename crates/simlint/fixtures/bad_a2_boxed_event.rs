//! A2 fixture: the boxed `Arrive` payload is ~12 bytes — it fits the
//! enum inline; boxing it costs one allocation plus a pointer chase on
//! every event the scheduler moves.

pub struct Packet {
    pub flow: u64,
    pub bytes: u32,
}

pub enum Event {
    Tick,
    Arrive { pkt: Box<Packet> },
}
