// Known-bad fixture: D3 must fire on ambient randomness.
fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}

fn hasher() -> std::collections::hash_map::RandomState {
    Default::default()
}
