//! Known-bad fixture for U2: `.0` field access that silently escapes a
//! unit newtype into an untyped integer. Both sites are fixable because
//! the fixture units define `as_u64`.

use crate::units::{BitRate, Nanos};

pub fn leak_time(t: Nanos) -> u64 {
    t.0 // U2: use `.as_u64()`
}

pub fn leak_rate(r: BitRate) -> bool {
    r.0 > 0 // U2
}
