//! P4 fixture: event heaps keyed by bare time. The bare-`Nanos` heap and
//! the push sites fire without a fix; the `(Nanos, FlowId)` declaration
//! gets the mechanical `u64` tiebreak-slot insertion.

use std::collections::BinaryHeap;

fn pending_deadlines() -> BinaryHeap<Nanos> {
    let heap: BinaryHeap<Nanos> = BinaryHeap::new();
    heap
}

fn enqueue(heap: &mut BinaryHeap<(Nanos, FlowId)>, at: Nanos, flow: FlowId) {
    heap.push((at, flow));
}

fn build_queue(at: Nanos, flow: FlowId) -> BinaryHeap<(Nanos, FlowId)> {
    let mut q: BinaryHeap<(Nanos, FlowId)> = BinaryHeap::new();
    q.push((at, flow));
    q
}
