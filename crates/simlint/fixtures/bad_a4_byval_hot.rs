//! A4 fixture: `Telemetry` is ~80 bytes; passing it by value down the
//! per-event path memcpys the whole struct on every call.

pub struct Telemetry {
    pub t0: u64,
    pub t1: u64,
    pub t2: u64,
    pub t3: u64,
    pub t4: u64,
    pub t5: u64,
    pub t6: u64,
    pub t7: u64,
    pub t8: u64,
    pub t9: u64,
}

pub fn step(t: Telemetry) {
    sink(t);
}

fn sink(t: Telemetry) {
    let _ = t.t0;
}
