//! P1 fixture: shared mutable globals in sim code. `EVENT_COUNT` and
//! `DROPS` must fire at their declarations; `DROPS` is additionally
//! referenced from the `run` hot path, so its finding carries a witness
//! chain. The `thread_local!` block is caught by the lexical prong.

use std::sync::atomic::AtomicU64;

static mut EVENT_COUNT: u64 = 0;

static DROPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SCRATCH: RefCell<Vec<u64>> = RefCell::new(Vec::new());
}

pub fn run(steps: u64) -> u64 {
    let mut done = 0;
    while done < steps {
        done += bump();
    }
    done
}

fn bump() -> u64 {
    DROPS.fetch_add(1, Ordering::Relaxed);
    1
}
