//! Known-bad fixture for U3: constructing unit newtypes from raw
//! integer literals outside the unit-definition file.

use crate::units::{BitRate, Bytes, Nanos};

pub fn zero_time() -> Nanos {
    Nanos(0) // U3: write `Nanos::ZERO`
}

pub fn mtu() -> Bytes {
    Bytes(1000) // U3: write `Bytes::new(1000)`
}

pub fn line_rate() -> BitRate {
    BitRate(100_000_000_000) // U3: write `BitRate::from_bps(..)`
}
