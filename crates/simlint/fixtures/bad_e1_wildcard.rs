//! Known-bad fixture for E1: a wildcard arm in a match over a workspace
//! enum, which would silently swallow any variant added later.

pub enum Mode {
    Stock,
    Vai,
    VaiSf,
}

pub fn weight(m: Mode) -> u64 {
    match m {
        Mode::VaiSf => 2,
        _ => 1, // E1: enumerate Stock and Vai explicitly
    }
}

pub fn guarded_is_fine(m: Mode, hot: bool) -> u64 {
    match m {
        Mode::VaiSf => 2,
        Mode::Vai => 1,
        _ if hot => 3, // guarded wildcard does not fire
        Mode::Stock => 0,
    }
}
