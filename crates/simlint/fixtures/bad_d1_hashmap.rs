// Known-bad fixture: D1 must fire on default-hasher hash collections.
use std::collections::HashMap;
use std::collections::HashSet;

fn flow_table() -> HashMap<u32, u64> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(1);
    m
}
