//! P3 fixture: DetRng stream discipline, interprocedurally. `helper_draw`
//! has no subsystem in its own name, but it is only called from RED code,
//! so seeding a private generator there is caught through the chain.
//! `ecmp_select` borrows RED's stream by number, `pick_path` uses a raw
//! number where the named constant exists, and `feedback_probe` names the
//! wrong constant.

fn red_mark(rng: &mut DetRng) -> bool {
    helper_draw()
}

fn helper_draw() -> bool {
    let mut private = DetRng::new(7);
    private.chance(0.5)
}

fn ecmp_select(root: &DetRng) -> DetRng {
    root.stream(2)
}

fn pick_path(root: &DetRng) -> DetRng {
    root.stream(1)
}

fn feedback_probe(root: &DetRng) -> DetRng {
    root.stream(RED_STREAM)
}
