//! P2 fixture: hash-container iteration feeding event scheduling and
//! metrics. `report` iterates its own HashMap (local finding, with the
//! BTreeMap swap fix on the declaration); `schedule_ready` consumes
//! `gather_ready`, whose results are collected in RandomState order
//! (interprocedural finding at the call site).

use std::collections::HashMap;

fn gather_ready() -> Vec<u64> {
    let pending: HashMap<u64, u64> = HashMap::new();
    let mut out = Vec::new();
    for (id, _) in &pending {
        out.push(*id);
    }
    out
}

fn schedule_ready(q: &mut EventQueue) {
    for id in gather_ready() {
        q.schedule_at(id);
    }
}

fn report(reg: &mut MetricsRegistry) {
    let mut seen: HashMap<u64, u64> = HashMap::new();
    seen.insert(1, 2);
    for (_, v) in &seen {
        reg.counter_add("seen", *v);
    }
}
