//! A3 fixture: `.collect()` materializes an intermediate `Vec` that is
//! immediately re-iterated — once on a method chain and once as a
//! for-loop head. Both are deletable, fusing the iterator chain.

pub fn step(xs: &[u64]) -> u64 {
    let mut total = relay(xs);
    for x in xs.iter().map(|v| v + 1).collect::<Vec<u64>>() {
        total += x;
    }
    total
}

fn relay(xs: &[u64]) -> u64 {
    xs.iter().map(|v| v * 2).collect::<Vec<u64>>().into_iter().sum()
}
