//! Spanned token lexer for the semantic (v2) pass.
//!
//! Unlike the v1 line-stripper in `lib.rs` — which only needs to blank out
//! strings and collect comment text — the parser needs a real token stream
//! with byte spans and line numbers, plus the comments as first-class
//! records (suppression directives live in them, and the stale-allow fixer
//! needs their exact spans to delete them).
//!
//! Punctuation is emitted one character at a time with a `joint` flag
//! (true when the next byte continues a multi-character operator), in the
//! style of `proc_macro2`: the parser composes `::`, `->`, `>>=` itself and
//! can equally split `>>` into two closing angle brackets inside generics.

use std::fmt;

/// Half-open byte range into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub lo: usize,
    /// End byte offset (exclusive).
    pub hi: usize,
}

impl Span {
    /// A span covering both inputs.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Token kind. Literal payloads keep their raw source text (numeric
/// suffixes included); string/char literals drop their contents — no rule
/// looks inside them, and dropping them keeps the stream cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Nanos`, `r#type`).
    Ident(String),
    /// Lifetime or loop label, without the leading `'`.
    Lifetime(String),
    /// Integer literal, raw text (`1_000u64`, `0x3F`).
    Int(String),
    /// Float literal, raw text (`8.0`, `1e9`, `2.5f32`).
    Float(String),
    /// String / raw string / byte-string literal; `true` when non-empty.
    Str(bool),
    /// Char or byte literal.
    Char,
    /// Single punctuation character; `joint` is true when the following
    /// byte is punctuation that may continue the operator.
    Punct(char, bool),
    /// `(`, `[`, `{`.
    Open(char),
    /// `)`, `]`, `}`.
    Close(char),
}

/// One lexed token with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// Byte range in the source.
    pub span: Span,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// One comment (line or block), kept verbatim for directive scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Raw text including the `//` / `/*` markers.
    pub text: String,
    /// Byte range in the source.
    pub span: Span,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: usize,
    /// Doc comment (`///`, `//!`, `/**`, `/*!`): documentation, not a
    /// place for suppression directives.
    pub doc: bool,
}

/// Lexer failure: the file cannot be tokenized at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// The lexed file: tokens, comments, and per-line token presence (line k,
/// 1-based, has code iff `line_has_code[k]`; used to decide whether an
/// `allow` comment sits on a code line or on a line of its own).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Indexed by 1-based line number; `[0]` is unused padding.
    pub line_has_code: Vec<bool>,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. The only hard failures are unterminated strings, chars,
/// and block comments — everything else lexes to *some* token.
pub fn lex(src: &str) -> Result<Lexed, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    // Shebang line.
    if src.starts_with("#!") && !src.starts_with("#![") {
        while lx.peek().is_some_and(|b| b != b'\n') {
            lx.bump();
        }
    }

    while let Some(b) = lx.peek() {
        let lo = lx.pos;
        let line = lx.line;

        // Whitespace.
        if b.is_ascii_whitespace() {
            lx.bump();
            continue;
        }

        // Comments.
        if b == b'/' && lx.peek2() == Some(b'/') {
            while lx.peek().is_some_and(|x| x != b'\n') {
                lx.bump();
            }
            let text = &src[lo..lx.pos];
            let doc = text.starts_with("///") || text.starts_with("//!");
            out.comments.push(Comment {
                text: text.to_string(),
                span: Span { lo, hi: lx.pos },
                line,
                end_line: line,
                doc,
            });
            continue;
        }
        if b == b'/' && lx.peek2() == Some(b'*') {
            lx.bump();
            lx.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (lx.peek(), lx.peek2()) {
                    (Some(b'/'), Some(b'*')) => {
                        lx.bump();
                        lx.bump();
                        depth += 1;
                    }
                    (Some(b'*'), Some(b'/')) => {
                        lx.bump();
                        lx.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        lx.bump();
                    }
                    (None, _) => return Err(lx.err("unterminated block comment")),
                }
            }
            let text = &src[lo..lx.pos];
            let doc = text.starts_with("/**") || text.starts_with("/*!");
            out.comments.push(Comment {
                text: text.to_string(),
                span: Span { lo, hi: lx.pos },
                line,
                end_line: lx.line,
                doc,
            });
            continue;
        }

        // Raw identifiers and raw/byte string literal prefixes.
        if b == b'r' || b == b'b' {
            if let Some(tok) = lex_prefixed(&mut lx, src, lo, line)? {
                out.tokens.push(tok);
                continue;
            }
        }

        // Identifiers / keywords.
        if is_ident_start(b) {
            while lx.peek().is_some_and(is_ident_cont) {
                lx.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Ident(src[lo..lx.pos].to_string()),
                span: Span { lo, hi: lx.pos },
                line,
            });
            continue;
        }

        // Numbers.
        if b.is_ascii_digit() {
            let kind = lex_number(&mut lx, src, lo);
            out.tokens.push(Token {
                kind,
                span: Span { lo, hi: lx.pos },
                line,
            });
            continue;
        }

        // Strings.
        if b == b'"' {
            lx.bump();
            let nonempty = lex_str_body(&mut lx, false, 0)?;
            out.tokens.push(Token {
                kind: TokKind::Str(nonempty),
                span: Span { lo, hi: lx.pos },
                line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            let next = lx.peek2();
            let is_char = match next {
                Some(b'\\') => true,
                Some(c) if is_ident_start(c) => {
                    // 'a' is a char, 'a is a lifetime: decide by the byte
                    // after the single identifier-ish character.
                    lx.src.get(lx.pos + 2) == Some(&b'\'')
                }
                Some(_) => true, // '(' etc. can only open a char literal
                None => return Err(lx.err("dangling single quote")),
            };
            if is_char {
                lx.bump(); // opening '
                if lx.peek() == Some(b'\\') {
                    lx.bump();
                    lx.bump(); // escape head: n, u, x, ...
                    while lx.peek().is_some_and(|x| x != b'\'') {
                        lx.bump(); // \u{...} tail
                    }
                } else {
                    // One (possibly multi-byte) character.
                    while lx.peek().is_some_and(|x| x != b'\'') {
                        lx.bump();
                    }
                }
                if lx.bump() != Some(b'\'') {
                    return Err(lx.err("unterminated char literal"));
                }
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    span: Span { lo, hi: lx.pos },
                    line,
                });
            } else {
                lx.bump(); // '
                while lx.peek().is_some_and(is_ident_cont) {
                    lx.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime(src[lo + 1..lx.pos].to_string()),
                    span: Span { lo, hi: lx.pos },
                    line,
                });
            }
            continue;
        }

        // Delimiters.
        if matches!(b, b'(' | b'[' | b'{') {
            lx.bump();
            out.tokens.push(Token {
                kind: TokKind::Open(b as char),
                span: Span { lo, hi: lx.pos },
                line,
            });
            continue;
        }
        if matches!(b, b')' | b']' | b'}') {
            lx.bump();
            out.tokens.push(Token {
                kind: TokKind::Close(b as char),
                span: Span { lo, hi: lx.pos },
                line,
            });
            continue;
        }

        // Punctuation.
        lx.bump();
        const OP_CHARS: &[u8] = b"+-*/%^!&|<>=.:;,#?@~$";
        if OP_CHARS.contains(&b) {
            let joint = lx.peek().is_some_and(|n| OP_CHARS.contains(&n));
            out.tokens.push(Token {
                kind: TokKind::Punct(b as char, joint),
                span: Span { lo, hi: lx.pos },
                line,
            });
            continue;
        }
        return Err(LexError {
            line,
            message: format!("unexpected byte 0x{b:02x}"),
        });
    }

    // Per-line code presence.
    let total_lines = lx.line + 1;
    out.line_has_code = vec![false; total_lines + 1];
    for t in &out.tokens {
        if t.line < out.line_has_code.len() {
            out.line_has_code[t.line] = true;
        }
    }
    Ok(out)
}

/// Handle tokens that start with `r` or `b`: raw identifiers (`r#type`),
/// raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`), and
/// byte char literals (`b'x'`). Returns `None` when it is just a plain
/// identifier starting with that letter.
fn lex_prefixed(
    lx: &mut Lexer<'_>,
    src: &str,
    lo: usize,
    line: usize,
) -> Result<Option<Token>, LexError> {
    let b = lx.peek().expect("caller saw a byte");
    let mut j = lx.pos + 1;
    if b == b'b' && lx.src.get(j) == Some(&b'r') {
        j += 1;
    }
    let is_raw = b == b'r' || (b == b'b' && lx.src.get(lx.pos + 1) == Some(&b'r'));
    let mut hashes = 0usize;
    while lx.src.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }

    // r#ident — a raw identifier, not a string.
    if b == b'r' && hashes == 1 && lx.src.get(j).copied().is_some_and(is_ident_start) {
        lx.bump(); // r
        lx.bump(); // #
        let istart = lx.pos;
        while lx.peek().is_some_and(is_ident_cont) {
            lx.bump();
        }
        return Ok(Some(Token {
            kind: TokKind::Ident(src[istart..lx.pos].to_string()),
            span: Span { lo, hi: lx.pos },
            line,
        }));
    }

    // b'x' byte char.
    if b == b'b' && !is_raw && lx.src.get(lx.pos + 1) == Some(&b'\'') {
        lx.bump(); // b
        lx.bump(); // '
        if lx.peek() == Some(b'\\') {
            lx.bump();
            lx.bump();
            while lx.peek().is_some_and(|x| x != b'\'') {
                lx.bump();
            }
        } else {
            while lx.peek().is_some_and(|x| x != b'\'') {
                lx.bump();
            }
        }
        if lx.bump() != Some(b'\'') {
            return Err(lx.err("unterminated byte literal"));
        }
        return Ok(Some(Token {
            kind: TokKind::Char,
            span: Span { lo, hi: lx.pos },
            line,
        }));
    }

    // String forms: the quote must follow the prefix/hashes directly, and
    // bare `b#`/`r` followed by non-quote is an identifier.
    if lx.src.get(j) == Some(&b'"') && (is_raw || hashes == 0) {
        // Consume prefix, hashes, and quote.
        while lx.pos < j + 1 {
            lx.bump();
        }
        let nonempty = lex_str_body(lx, is_raw, hashes)?;
        return Ok(Some(Token {
            kind: TokKind::Str(nonempty),
            span: Span { lo, hi: lx.pos },
            line,
        }));
    }
    Ok(None)
}

/// Consume a string body up to and including its closing quote (plus
/// `hashes` trailing `#` for raw strings). The opening quote has already
/// been consumed. Returns whether the body was non-empty.
fn lex_str_body(lx: &mut Lexer<'_>, raw: bool, hashes: usize) -> Result<bool, LexError> {
    let body_start = lx.pos;
    loop {
        match lx.peek() {
            None => return Err(lx.err("unterminated string literal")),
            Some(b'\\') if !raw => {
                lx.bump();
                lx.bump();
            }
            Some(b'"') => {
                let all = (1..=hashes).all(|h| lx.src.get(lx.pos + h) == Some(&b'#'));
                if all {
                    let nonempty = lx.pos > body_start;
                    lx.bump();
                    for _ in 0..hashes {
                        lx.bump();
                    }
                    return Ok(nonempty);
                }
                lx.bump();
            }
            Some(_) => {
                lx.bump();
            }
        }
    }
}

/// Lex a numeric literal starting at a digit; classifies int vs float.
fn lex_number(lx: &mut Lexer<'_>, src: &str, lo: usize) -> TokKind {
    // Radix prefixes.
    if lx.peek() == Some(b'0')
        && matches!(lx.peek2(), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
    {
        lx.bump();
        lx.bump();
        while lx.peek().is_some_and(is_ident_cont) {
            lx.bump();
        }
        return TokKind::Int(src[lo..lx.pos].to_string());
    }

    let mut float = false;
    while lx.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        lx.bump();
    }
    // Fraction: a dot followed by a digit (`1.max()` and `1..2` stay ints).
    if lx.peek() == Some(b'.') && lx.peek2().is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        lx.bump();
        while lx.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            lx.bump();
        }
    } else if lx.peek() == Some(b'.')
        && lx.peek2() != Some(b'.')
        && !lx.peek2().is_some_and(is_ident_start)
    {
        // Trailing-dot float `1.`.
        float = true;
        lx.bump();
    }
    // Exponent.
    if matches!(lx.peek(), Some(b'e' | b'E')) {
        let mut k = lx.pos + 1;
        if matches!(lx.src.get(k), Some(b'+' | b'-')) {
            k += 1;
        }
        if lx.src.get(k).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            while lx.pos < k {
                lx.bump();
            }
            while lx.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                lx.bump();
            }
        }
    }
    // Suffix (u64, f32, usize…). An `f` suffix makes it a float.
    if lx.peek().is_some_and(is_ident_start) {
        let sstart = lx.pos;
        while lx.peek().is_some_and(is_ident_cont) {
            lx.bump();
        }
        if src[sstart..lx.pos].starts_with('f') {
            float = true;
        }
    }
    let text = src[lo..lx.pos].to_string();
    if float {
        TokKind::Float(text)
    } else {
        TokKind::Int(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src)
            .expect("lexes")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_numbers_ops() {
        let ks = kinds("let x = 1_000u64 + 2.5;");
        assert_eq!(ks[0], TokKind::Ident("let".into()));
        assert_eq!(ks[2], TokKind::Punct('=', false));
        assert_eq!(ks[3], TokKind::Int("1_000u64".into()));
        assert_eq!(ks[5], TokKind::Float("2.5".into()));
    }

    #[test]
    fn float_vs_method_vs_range() {
        assert!(matches!(kinds("1.0")[0], TokKind::Float(_)));
        assert!(matches!(kinds("1.max(2)")[0], TokKind::Int(_)));
        assert!(matches!(kinds("1..2")[0], TokKind::Int(_)));
        assert!(matches!(kinds("1e9")[0], TokKind::Float(_)));
        assert!(matches!(kinds("0x1F")[0], TokKind::Int(_)));
        assert!(matches!(kinds("3f64")[0], TokKind::Float(_)));
    }

    #[test]
    fn lifetimes_and_chars() {
        let ks = kinds("fn f<'a>(x: &'a u32) { let c = 'z'; let n = '\\n'; }");
        assert!(ks.contains(&TokKind::Lifetime("a".into())));
        assert_eq!(ks.iter().filter(|k| **k == TokKind::Char).count(), 2);
    }

    #[test]
    fn strings_raw_and_byte() {
        let ks = kinds(r##"let a = "hi"; let b = r#"raw"#; let c = b"x"; let d = "";"##);
        let strs: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokKind::Str(ne) => Some(*ne),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![true, true, true, false]);
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("let r#type = 1;");
        assert_eq!(ks[1], TokKind::Ident("type".into()));
    }

    #[test]
    fn comments_recorded_with_doc_flag() {
        let lexed = lex("/// doc\n// plain\nlet x = 1; /* block */\n").expect("lexes");
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].doc);
        assert!(!lexed.comments[1].doc);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(!lexed.comments[2].doc);
        assert!(!lexed.line_has_code[2]);
        assert!(lexed.line_has_code[3]);
    }

    #[test]
    fn joint_puncts() {
        let lexed = lex("a::b -> c >>= d").expect("lexes");
        let puncts: Vec<(char, bool)> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(c, j) => Some((c, j)),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts,
            vec![
                (':', true),
                (':', false),
                ('-', true),
                ('>', false),
                ('>', true),
                ('>', true),
                ('=', false),
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let lexed = lex("let s = \"a\nb\";\nlet t = 1;\n").expect("lexes");
        let t_tok = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("t"))
            .expect("t token present");
        assert_eq!(t_tok.line, 3);
    }
}
