//! `cargo run -p simlint [-- <root>]` — walk a source tree and report
//! determinism/invariant rule violations. Exits nonzero when any survive.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{scan_tree, Rule};

fn usage() -> ! {
    eprintln!("usage: simlint [--explain] [ROOT]");
    eprintln!("  ROOT       directory to scan (default: the workspace root / cwd)");
    eprintln!("  --explain  print the rule table and exit");
    std::process::exit(2);
}

/// Default scan root: the workspace root when invoked via `cargo run -p
/// simlint` (two levels up from this crate), else the cwd.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|crates| crates.parent())
        .filter(|ws| ws.join("Cargo.toml").is_file())
        .map(|ws| ws.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--explain" => {
                for r in Rule::ALL {
                    println!("{}: {}", r.id(), r.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => usage(),
        }
    }
    let root = root.unwrap_or_else(default_root);

    let (findings, scanned) = match scan_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!(
            "simlint: clean — {scanned} files scanned under {}",
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "simlint: {} finding(s) in {scanned} files scanned under {} \
             (suppress with `// simlint: allow(Dn) — reason`)",
            findings.len(),
            root.display()
        );
        ExitCode::FAILURE
    }
}
