//! `cargo run -p simlint [-- <flags>] [ROOT]` — walk a source tree and
//! report determinism, unit-safety, overflow, and exhaustiveness rule
//! violations.
//!
//! Exit codes:
//!   0  clean (no findings after suppression/filtering)
//!   1  one or more findings reported
//!   2  a file could not be parsed, or the invocation itself was invalid

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{analyze_tree, emit, fix_tree, Rule};

const HELP: &str = "\
simlint — static analysis for the simulator workspace

usage: simlint [OPTIONS] [ROOT]

  ROOT             directory to scan (default: the workspace root / cwd)

options:
  --rules LIST     comma-separated rule ids or family letters to report
                   (e.g. `--rules U,O` or `--rules D3,E1`; default: all)
  --emit FORMAT    output format: text (default), json, or sarif
  --fix            apply mechanical fixes in place, then report what remains
  --baseline FILE  ratchet mode: findings listed in FILE are tolerated,
                   anything new still fails; entries no finding matches
                   any more are stale and also fail (the file may only
                   shrink — remove the swept lines)
  --write-baseline FILE
                   write the current findings to FILE in baseline format
                   and exit (the only sanctioned way to grow the file)
  --explain [RULE] print the rule table and exit; with a rule id (e.g.
                   `--explain P2`), print that rule's full rationale
  -h, --help       print this help and exit

exit codes:
  0  clean — no findings
  1  findings reported
  2  parse error (a scanned file could not be parsed) or bad usage

Suppress a finding with `// simlint: allow(RULE) — reason` on (or above)
the offending line. Unused allows are themselves reported (rule S1).
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}");
    eprintln!("run `simlint --help` for usage");
    ExitCode::from(2)
}

/// Default scan root: the workspace root when invoked via `cargo run -p
/// simlint` (two levels up from this crate), else the cwd.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|crates| crates.parent())
        .filter(|ws| ws.join("Cargo.toml").is_file())
        .map(|ws| ws.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Emit {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut rules: Option<Vec<Rule>> = None;
    let mut emit_fmt = Emit::Text;
    let mut do_fix = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--explain" => {
                // Optional rule-id operand: `--explain P2` prints the full
                // rationale for one rule; bare `--explain` prints the table.
                if let Some(next) = args.next() {
                    let Some(r) = Rule::parse(&next) else {
                        return usage_error(&format!(
                            "unknown rule `{next}` for --explain (try `--explain` \
                             for the full table)"
                        ));
                    };
                    println!("{}", r.doc());
                    return ExitCode::SUCCESS;
                }
                for r in Rule::ALL {
                    println!("{}: {}", r.id(), r.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--fix" => do_fix = true,
            "--baseline" => {
                let Some(file) = args.next() else {
                    return usage_error("--baseline needs a file path");
                };
                baseline_path = Some(PathBuf::from(file));
            }
            "--write-baseline" => {
                let Some(file) = args.next() else {
                    return usage_error("--write-baseline needs a file path");
                };
                write_baseline = Some(PathBuf::from(file));
            }
            "--rules" => {
                let Some(list) = args.next() else {
                    return usage_error("--rules needs a value (e.g. `--rules U,O`)");
                };
                let mut selected = Vec::new();
                for entry in list.split(',').filter(|e| !e.trim().is_empty()) {
                    match Rule::parse_filter(entry) {
                        Some(mut rs) => selected.append(&mut rs),
                        None => {
                            return usage_error(&format!(
                                "unknown rule or family `{}` in --rules",
                                entry.trim()
                            ));
                        }
                    }
                }
                if selected.is_empty() {
                    return usage_error("--rules selected no rules");
                }
                selected.sort();
                selected.dedup();
                rules = Some(selected);
            }
            "--emit" => {
                let Some(fmt) = args.next() else {
                    return usage_error("--emit needs a value: text, json, or sarif");
                };
                emit_fmt = match fmt.as_str() {
                    "text" => Emit::Text,
                    "json" => Emit::Json,
                    "sarif" => Emit::Sarif,
                    other => {
                        return usage_error(&format!(
                            "unknown --emit format `{other}` (expected text, json, or sarif)"
                        ));
                    }
                };
            }
            _ if arg.starts_with('-') => {
                return usage_error(&format!("unknown option `{arg}`"));
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => return usage_error("more than one ROOT given"),
        }
    }
    let root = root.unwrap_or_else(default_root);

    if do_fix {
        match fix_tree(&root) {
            Ok(report) => {
                if report.applied > 0 {
                    eprintln!(
                        "simlint: applied {} fix(es) across {} file(s)",
                        report.applied,
                        report.files.len()
                    );
                    for f in &report.files {
                        eprintln!("  fixed {f}");
                    }
                } else {
                    eprintln!("simlint: nothing to fix");
                }
            }
            Err(e) => {
                eprintln!("simlint: cannot fix {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut analysis = match analyze_tree(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(selected) = &rules {
        analysis.findings.retain(|f| selected.contains(&f.rule));
    }

    if let Some(path) = &write_baseline {
        let text = simlint::Baseline::render(&analysis.findings);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("simlint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "simlint: wrote {} baseline entr{} to {}",
            analysis.findings.len(),
            if analysis.findings.len() == 1 {
                "y"
            } else {
                "ies"
            },
            path.display()
        );
        return if analysis.parse_failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }

    let mut stale_entries = Vec::new();
    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("simlint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match simlint::Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("simlint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        stale_entries = baseline.stale(&analysis.findings);
        let before = analysis.findings.len();
        analysis.findings.retain(|f| !baseline.contains(f));
        let tolerated = before - analysis.findings.len();
        if tolerated > 0 {
            eprintln!(
                "simlint: {tolerated} baselined finding(s) tolerated per {}",
                path.display()
            );
        }
        for (rule, fpath, line) in &stale_entries {
            eprintln!(
                "simlint: stale baseline entry {rule}\t{fpath}\t{line} — no finding \
                 matches it any more; remove the line (the ratchet only shrinks)"
            );
        }
    }

    match emit_fmt {
        Emit::Json => print!(
            "{}",
            emit::to_json(
                &analysis.findings,
                &analysis.parse_failures,
                analysis.scanned
            )
        ),
        Emit::Sarif => print!(
            "{}",
            emit::to_sarif(&analysis.findings, &analysis.parse_failures)
        ),
        Emit::Text => {
            for f in &analysis.findings {
                println!("{f}");
            }
            for e in &analysis.parse_failures {
                eprintln!("{}:{}: parse error: {}", e.path, e.line, e.message);
            }
            if analysis.findings.is_empty() && analysis.parse_failures.is_empty() {
                println!(
                    "simlint: clean — {} files scanned under {}",
                    analysis.scanned,
                    root.display()
                );
            } else {
                println!(
                    "simlint: {} finding(s), {} parse error(s) in {} files scanned under {} \
                     (suppress with `// simlint: allow(RULE) — reason`)",
                    analysis.findings.len(),
                    analysis.parse_failures.len(),
                    analysis.scanned,
                    root.display()
                );
            }
        }
    }

    if !analysis.parse_failures.is_empty() {
        ExitCode::from(2)
    } else if analysis.findings.is_empty() && stale_entries.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
