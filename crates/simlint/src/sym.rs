//! Workspace symbol table.
//!
//! One pass over every parsed file collects what the semantic rules need
//! to resolve names without a real module system:
//!
//! - the **unit newtypes** (`Nanos`, `Bytes`, `BitRate`) and where they
//!   are defined;
//! - struct field types (so `pkt.size` resolves to `Bytes`);
//! - enum variant lists (so a wildcard arm over `SchedulerKind` is
//!   detectable, and `Variant::Sf` resolves to the `Variant` enum);
//! - inherent methods and associated constants per type name, with
//!   return types (so `rate.serialization_delay(b)` infers `Nanos`);
//! - operator-trait impls (so `Nanos * 3` is known-legal because
//!   `impl Mul<u64> for Nanos` exists, while `Nanos + 3` is not).
//!
//! Resolution is by *bare type name*, which is unambiguous in this
//! workspace (and checked: colliding method signatures degrade to
//! unknown rather than guessing).

use std::collections::BTreeMap;

use crate::ast::{Fields, File, Item, Stmt, TypeRef};

/// The unit newtypes policed by the U/O rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitKind {
    /// `dcsim::Nanos` — simulation time.
    Nanos,
    /// `dcsim::Bytes` — byte counts.
    Bytes,
    /// `dcsim::BitRate` — link/injection rates.
    BitRate,
}

impl UnitKind {
    /// All unit kinds.
    pub const ALL: [UnitKind; 3] = [UnitKind::Nanos, UnitKind::Bytes, UnitKind::BitRate];

    /// The type name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            UnitKind::Nanos => "Nanos",
            UnitKind::Bytes => "Bytes",
            UnitKind::BitRate => "BitRate",
        }
    }

    /// Parse a type name.
    pub fn from_name(s: &str) -> Option<UnitKind> {
        match s {
            "Nanos" => Some(UnitKind::Nanos),
            "Bytes" => Some(UnitKind::Bytes),
            "BitRate" => Some(UnitKind::BitRate),
            _ => None,
        }
    }
}

/// A struct's recorded shape.
#[derive(Debug, Default, Clone)]
pub struct StructInfo {
    /// Named field types.
    pub fields: BTreeMap<String, TypeRef>,
    /// Tuple field types (`.0`, `.1`, …).
    pub tuple_fields: Vec<TypeRef>,
}

/// An enum's recorded shape.
#[derive(Debug, Clone)]
pub struct EnumInfo {
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Per-variant payload types, aligned with `variants`.
    pub payloads: Vec<Vec<TypeRef>>,
    /// File the enum is defined in (display path).
    pub file: String,
    /// Defined inside `#[cfg(test)]` code.
    pub cfg_test: bool,
    /// 1-based declaration line.
    pub line: usize,
}

/// One method or associated function's signature summary.
#[derive(Debug, Clone)]
pub struct MethodInfo {
    /// Return type as declared (with `Self` already substituted).
    pub ret: TypeRef,
    /// Whether the method takes a receiver (method vs associated fn).
    pub has_self: bool,
}

/// The workspace-wide symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Struct name → shape. Name collisions keep the first definition
    /// seen outside `#[cfg(test)]` code, which is sufficient here.
    pub structs: BTreeMap<String, StructInfo>,
    /// Enum name → shape.
    pub enums: BTreeMap<String, EnumInfo>,
    /// `(type name, method name)` → signature summary.
    pub methods: BTreeMap<(String, String), MethodInfo>,
    /// `(type name, const name)` → declared type.
    pub assoc_consts: BTreeMap<(String, String), TypeRef>,
    /// Operator impls: `(trait name, self type, rhs type)` present?
    /// Rhs is the trait's first generic argument, defaulting to self.
    pub op_impls: BTreeMap<(String, String), Vec<TypeRef>>,
    /// Free fn name → return type (`None` recorded for collisions).
    pub free_fns: BTreeMap<String, Option<TypeRef>>,
    /// Per-file use-paths: display path → (local alias → full path).
    pub uses: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl Symbols {
    /// Build the table from every parsed file.
    pub fn build<'a, I>(files: I) -> Symbols
    where
        I: IntoIterator<Item = &'a File>,
    {
        let mut sym = Symbols::default();
        for file in files {
            collect_items(&mut sym, &file.path, &file.items, false);
        }
        sym
    }

    /// Resolve a single-segment name through a file's use-paths.
    pub fn resolve_use<'a>(&'a self, file: &str, alias: &'a str) -> &'a [String] {
        static EMPTY: [String; 0] = [];
        self.uses
            .get(file)
            .and_then(|m| m.get(alias))
            .map(|v| v.as_slice())
            .unwrap_or(&EMPTY)
    }

    /// Whether `Trait<rhs> for self_ty` exists (operator legality).
    pub fn has_op_impl(&self, trait_name: &str, self_ty: &str, rhs_is_int: bool) -> bool {
        let Some(rhss) = self
            .op_impls
            .get(&(trait_name.to_string(), self_ty.to_string()))
        else {
            return false;
        };
        rhss.iter().any(|r| {
            let Some(seg) = r.last_seg() else {
                return false;
            };
            if rhs_is_int {
                matches!(
                    seg,
                    "u64" | "u32" | "u16" | "u8" | "usize" | "i64" | "i32" | "i16" | "i8" | "isize"
                )
            } else {
                seg == self_ty
            }
        })
    }

    /// The enum owning variant `name`, when exactly one workspace enum
    /// declares it.
    pub fn enum_of_variant(&self, variant: &str) -> Option<&str> {
        let mut found = None;
        for (ename, info) in &self.enums {
            if info.variants.iter().any(|v| v == variant) {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(ename.as_str());
            }
        }
        found
    }

    /// Rough size estimate of a type in bytes, from the recorded field
    /// shapes. Primitives use their real widths, pointers and unknowns
    /// count 8, owning containers their 3-word headers, structs the sum
    /// of their fields, enums a tag plus their widest payload. `depth`
    /// caps recursion (pass 0); precision past one cache line does not
    /// matter to the A-family consumers.
    pub fn est_size(&self, ty: &TypeRef, depth: usize) -> usize {
        if depth > 6 {
            return 8;
        }
        match ty {
            TypeRef::Ref(_) => 8,
            TypeRef::Unit => 0,
            TypeRef::Other => 8,
            TypeRef::Tuple(ts) => ts.iter().map(|t| self.est_size(t, depth + 1)).sum(),
            TypeRef::Path { segs, args } => {
                let last = segs.last().map(String::as_str).unwrap_or("");
                match last {
                    "u8" | "i8" | "bool" => 1,
                    "u16" | "i16" => 2,
                    "u32" | "i32" | "f32" | "char" => 4,
                    "u64" | "i64" | "f64" | "usize" | "isize" => 8,
                    "u128" | "i128" => 16,
                    "Box" | "Rc" | "Arc" => 8,
                    "Vec" | "String" | "VecDeque" | "BTreeMap" | "BTreeSet" | "HashMap"
                    | "HashSet" | "BinaryHeap" => 24,
                    "Option" | "Result" => {
                        8 + args
                            .first()
                            .map(|a| self.est_size(a, depth + 1))
                            .unwrap_or(0)
                    }
                    _ => {
                        if let Some(info) = self.structs.get(last) {
                            info.fields
                                .values()
                                .chain(info.tuple_fields.iter())
                                .map(|t| self.est_size(t, depth + 1))
                                .sum::<usize>()
                                .max(1)
                        } else if let Some(info) = self.enums.get(last) {
                            8 + info
                                .payloads
                                .iter()
                                .map(|p| {
                                    p.iter().map(|t| self.est_size(t, depth + 1)).sum::<usize>()
                                })
                                .max()
                                .unwrap_or(0)
                        } else {
                            8
                        }
                    }
                }
            }
        }
    }

    /// Whether a workspace struct (transitively) owns heap storage —
    /// cloning it allocates. Drives the A1 `.clone()` check.
    pub fn owns_heap(&self, name: &str) -> bool {
        self.owns_heap_depth(name, 0)
    }

    fn owns_heap_depth(&self, name: &str, depth: usize) -> bool {
        if depth > 4 {
            return false;
        }
        let Some(info) = self.structs.get(name) else {
            return false;
        };
        info.fields
            .values()
            .chain(info.tuple_fields.iter())
            .any(|t| self.ty_owns_heap(t, depth))
    }

    fn ty_owns_heap(&self, ty: &TypeRef, depth: usize) -> bool {
        match ty {
            TypeRef::Path { segs, args } => {
                let last = segs.last().map(String::as_str).unwrap_or("");
                matches!(
                    last,
                    "Vec"
                        | "String"
                        | "VecDeque"
                        | "BTreeMap"
                        | "BTreeSet"
                        | "HashMap"
                        | "HashSet"
                        | "BinaryHeap"
                        | "Box"
                        | "Rc"
                        | "Arc"
                ) || args.iter().any(|a| self.ty_owns_heap(a, depth + 1))
                    || self.owns_heap_depth(last, depth + 1)
            }
            TypeRef::Tuple(ts) => ts.iter().any(|t| self.ty_owns_heap(t, depth + 1)),
            TypeRef::Ref(_) | TypeRef::Unit | TypeRef::Other => false,
        }
    }
}

fn collect_items(sym: &mut Symbols, path: &str, items: &[Item], in_test: bool) {
    for item in items {
        match item {
            Item::Use { path: upath, alias } => {
                sym.uses
                    .entry(path.to_string())
                    .or_default()
                    .insert(alias.clone(), upath.clone());
            }
            Item::Struct { name, fields } => {
                let entry = sym.structs.entry(name.clone()).or_default();
                match fields {
                    Fields::Named(fs) => {
                        if entry.fields.is_empty() {
                            for (f, t) in fs {
                                entry.fields.insert(f.clone(), t.clone());
                            }
                        }
                    }
                    Fields::Tuple(ts) => {
                        if entry.tuple_fields.is_empty() {
                            entry.tuple_fields = ts.clone();
                        }
                    }
                    Fields::Unit => {}
                }
            }
            Item::Enum {
                name,
                variants,
                payloads,
                cfg_test,
                line,
            } => {
                let is_test = in_test || *cfg_test;
                // Prefer non-test definitions on collision.
                let replace = match sym.enums.get(name) {
                    None => true,
                    Some(old) => old.cfg_test && !is_test,
                };
                if replace {
                    sym.enums.insert(
                        name.clone(),
                        EnumInfo {
                            variants: variants.clone(),
                            payloads: payloads.clone(),
                            file: path.to_string(),
                            cfg_test: is_test,
                            line: *line,
                        },
                    );
                }
            }
            Item::Fn(f) => {
                if f.self_param.is_none() {
                    sym.free_fns
                        .entry(f.name.clone())
                        .and_modify(|old| {
                            if old.as_ref() != Some(&f.ret) {
                                *old = None;
                            }
                        })
                        .or_insert_with(|| Some(f.ret.clone()));
                }
                if let Some(body) = &f.body {
                    collect_block(sym, path, body, in_test || f.cfg_test);
                }
            }
            Item::Impl {
                trait_,
                self_ty,
                items,
                cfg_test,
            } => {
                let tname = self_ty.last_seg().unwrap_or("").to_string();
                if let Some(tr) = trait_ {
                    if let (Some(trait_name), TypeRef::Path { args, .. }) = (tr.last_seg(), tr) {
                        if matches!(trait_name, "Add" | "Sub" | "Mul" | "Div" | "Rem")
                            || trait_name.starts_with("Add")
                            || trait_name.starts_with("Sub")
                            || trait_name.starts_with("Mul")
                            || trait_name.starts_with("Div")
                            || trait_name.starts_with("Rem")
                        {
                            let rhs = args
                                .first()
                                .cloned()
                                .unwrap_or_else(|| TypeRef::name(&tname));
                            sym.op_impls
                                .entry((trait_name.to_string(), tname.clone()))
                                .or_default()
                                .push(rhs);
                        }
                    }
                }
                for sub in items {
                    match sub {
                        Item::Fn(m) => {
                            let ret = substitute_self(&m.ret, &tname);
                            sym.methods.insert(
                                (tname.clone(), m.name.clone()),
                                MethodInfo {
                                    ret,
                                    has_self: m.self_param.is_some(),
                                },
                            );
                            if let Some(body) = &m.body {
                                collect_block(sym, path, body, in_test || *cfg_test || m.cfg_test);
                            }
                        }
                        Item::Const { name, ty, .. } => {
                            let ty = substitute_self(ty, &tname);
                            sym.assoc_consts.insert((tname.clone(), name.clone()), ty);
                        }
                        _ => {}
                    }
                }
            }
            Item::Mod {
                cfg_test, items, ..
            } => {
                collect_items(sym, path, items, in_test || *cfg_test);
            }
            Item::Trait { items, .. } => {
                // Default method bodies may define local items.
                for sub in items {
                    if let Item::Fn(m) = sub {
                        if let Some(body) = &m.body {
                            collect_block(sym, path, body, in_test);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Recurse into blocks for fn-local items (`enum Rx { … }` inside a fn).
fn collect_block(sym: &mut Symbols, path: &str, block: &crate::ast::Block, in_test: bool) {
    for stmt in &block.stmts {
        if let Stmt::Item(item) = stmt {
            collect_items(sym, path, std::slice::from_ref(item), in_test);
        }
    }
}

/// Replace a bare `Self` return type with the impl's type name.
fn substitute_self(ty: &TypeRef, self_name: &str) -> TypeRef {
    match ty {
        TypeRef::Path { segs, args } if segs.len() == 1 && segs[0] == "Self" => TypeRef::Path {
            segs: vec![self_name.to_string()],
            args: args.clone(),
        },
        TypeRef::Ref(inner) => TypeRef::Ref(Box::new(substitute_self(inner, self_name))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn build(src: &str) -> Symbols {
        let (file, _) = parse_file("crates/dcsim/src/x.rs", src).expect("parses");
        Symbols::build(std::slice::from_ref(&file))
    }

    #[test]
    fn collects_structs_enums_methods() {
        let sym = build(
            "pub struct Nanos(pub u64);\n\
             pub struct Pkt { pub size: Bytes, pub at: Nanos }\n\
             pub enum SchedulerKind { Heap, Wheel }\n\
             impl Nanos {\n\
                 pub const ZERO: Nanos = Nanos(0);\n\
                 pub fn as_u64(self) -> u64 { self.0 }\n\
                 pub fn max(self, rhs: Nanos) -> Nanos { self }\n\
             }\n\
             impl Mul<u64> for Nanos { fn mul(self, rhs: u64) -> Nanos { self } }\n\
             impl Add for Nanos { fn add(self, rhs: Nanos) -> Nanos { self } }\n",
        );
        assert_eq!(sym.structs["Nanos"].tuple_fields.len(), 1);
        assert_eq!(sym.structs["Pkt"].fields["size"].last_seg(), Some("Bytes"));
        assert_eq!(sym.enums["SchedulerKind"].variants, vec!["Heap", "Wheel"]);
        assert_eq!(
            sym.methods[&("Nanos".into(), "max".into())].ret.last_seg(),
            Some("Nanos")
        );
        assert_eq!(
            sym.assoc_consts[&("Nanos".into(), "ZERO".into())].last_seg(),
            Some("Nanos")
        );
        assert!(sym.has_op_impl("Mul", "Nanos", true));
        assert!(!sym.has_op_impl("Add", "Nanos", true));
        assert!(sym.has_op_impl("Add", "Nanos", false));
    }

    #[test]
    fn variant_resolution() {
        let sym = build("enum A { X, Y }\nenum B { Y, Z }\n");
        assert_eq!(sym.enum_of_variant("X"), Some("A"));
        assert_eq!(sym.enum_of_variant("Y"), None); // ambiguous
        assert_eq!(sym.enum_of_variant("Z"), Some("B"));
    }

    #[test]
    fn fn_local_enums_are_collected() {
        let sym = build("fn f() { enum Rx { Keep, Drop } }\n");
        assert_eq!(sym.enums["Rx"].variants, vec!["Keep", "Drop"]);
    }
}
