//! Autofix application: splice [`Fix`] replacements back into source text.
//!
//! Fixes are applied **back to front** so earlier spans stay valid, and
//! overlapping fixes are resolved by keeping the one applied first
//! (rightmost) and skipping any fix whose span intersects an
//! already-applied edit. Nested findings (`a + b + c` produces an O1 on
//! the outer *and* the inner `+`) therefore converge over repeated
//! passes; [`crate::fix_tree`] iterates analysis + application until no
//! applicable fix remains, which is what makes `--fix` idempotent.

use crate::{Finding, Fix};

/// Apply the given fixes to `src`, rightmost first, skipping overlaps.
/// Returns the new text and how many fixes were applied.
pub fn apply_fixes(src: &str, fixes: &[&Fix]) -> (String, usize) {
    let mut sorted: Vec<&Fix> = fixes
        .iter()
        .copied()
        .filter(|f| f.span.lo <= f.span.hi && f.span.hi <= src.len())
        .collect();
    // Rightmost first; for equal starts, the wider span wins.
    sorted.sort_by(|a, b| b.span.lo.cmp(&a.span.lo).then(b.span.hi.cmp(&a.span.hi)));

    let mut out = src.to_string();
    let mut applied = 0usize;
    let mut last_lo = usize::MAX; // lowest start already edited
    for f in sorted {
        if f.span.hi > last_lo {
            continue; // overlaps an edit already applied to its right
        }
        out.replace_range(f.span.lo..f.span.hi, &f.replacement);
        last_lo = f.span.lo;
        applied += 1;
    }
    (out, applied)
}

/// Convenience: apply every fix attached to `findings` for one file.
pub fn apply_finding_fixes(src: &str, findings: &[Finding]) -> (String, usize) {
    let fixes: Vec<&Fix> = findings.iter().filter_map(|f| f.fix.as_ref()).collect();
    apply_fixes(src, &fixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::Span;

    fn fix(lo: usize, hi: usize, rep: &str) -> Fix {
        Fix {
            span: Span { lo, hi },
            replacement: rep.to_string(),
        }
    }

    #[test]
    fn applies_back_to_front() {
        let src = "a + b; c + d;";
        let f1 = fix(0, 5, "a.saturating_add(b)");
        let f2 = fix(7, 12, "c.saturating_add(d)");
        let (out, n) = apply_fixes(src, &[&f1, &f2]);
        assert_eq!(n, 2);
        assert_eq!(out, "a.saturating_add(b); c.saturating_add(d);");
    }

    #[test]
    fn skips_overlapping_inner_fix() {
        // Outer span covers the whole expr, inner covers a prefix: only
        // one of the two applies in a single pass.
        let src = "a + b + c";
        let outer = fix(0, 9, "(a + b).saturating_add(c)");
        let inner = fix(0, 5, "a.saturating_add(b)");
        let (out, n) = apply_fixes(src, &[&outer, &inner]);
        assert_eq!(n, 1);
        assert_eq!(out, "(a + b).saturating_add(c)");
    }

    #[test]
    fn ignores_out_of_bounds_spans() {
        let (out, n) = apply_fixes("abc", &[&fix(10, 20, "x")]);
        assert_eq!(n, 0);
        assert_eq!(out, "abc");
    }
}
