//! Workspace call graph for the interprocedural P-family rules.
//!
//! The semantic walker ([`crate::sem`]) already infers a receiver type at
//! every call site; this module records those observations as per-function
//! [`FnFacts`], links them into a [`CallGraph`], and offers the reachability
//! primitives the dataflow pass ([`crate::flow`]) builds on.
//!
//! Resolution is deliberately an over-approximation in the same spirit as
//! the rest of simlint:
//!
//! - a qualified call (`Nanos::from_ns`, or a method whose receiver type
//!   was positively inferred) resolves to the unique `(type, name)` target;
//! - a method call whose receiver type is unknown resolves to *every*
//!   workspace method of that name — this is how dispatch through trait
//!   impls is covered (`s.push(..)` on a `&mut dyn Scheduler` reaches both
//!   `EventQueue::push` and `TimingWheel::push`) — capped at
//!   [`DISPATCH_FANOUT_CAP`] candidates so ubiquitous names (`new`, `len`)
//!   do not glue the whole graph together;
//! - recursion is handled by ordinary visited-set BFS, so cycles are safe.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::Span;
use crate::{scope_of, Fix, Scope};

/// Above this many candidates an unresolved method name is considered too
/// ambiguous to produce edges (it would connect everything to everything).
pub const DISPATCH_FANOUT_CAP: usize = 8;

/// Identity of a function: the owning type (impl/trait) and its name.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnKey {
    /// `Some(type or trait name)` for methods/associated fns, `None` for
    /// free functions.
    pub owner: Option<String>,
    /// Function name as written.
    pub name: String,
}

impl FnKey {
    /// Render for diagnostics: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One outgoing call observed inside a function body.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Resolved owner type when the receiver/path was identified.
    pub owner: Option<String>,
    /// Callee name.
    pub name: String,
    /// True for `recv.name(..)` method syntax (enables the trait-dispatch
    /// over-approximation when `owner` is `None`).
    pub via_method: bool,
    /// 1-based line of the call site.
    pub line: usize,
    /// Byte span of the call expression.
    pub span: Span,
}

/// How the argument of a `.stream(..)` call was written.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum StreamArg {
    /// A numeric literal: `rng.stream(2)`.
    Num(u64),
    /// A named constant: `rng.stream(FAULT_STREAM)`.
    Named(String),
    /// Anything else (derived labels, variables).
    Other,
}

/// An order-unstable iteration site (hash-container iteration).
#[derive(Debug, Clone)]
pub struct UnstableIter {
    /// 1-based line.
    pub line: usize,
    /// Span of the iteration expression.
    pub span: Span,
    /// `"HashMap"` or `"HashSet"`.
    pub container: &'static str,
    /// Mechanical container swap (`HashMap` → `BTreeMap` on the local
    /// declaration line) when the receiver is a local with a visible
    /// annotated `let`.
    pub fix: Option<Fix>,
}

/// The shape of a heap allocation the A1 cost rule reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// `Box::new(..)`.
    BoxNew,
    /// `Vec::new()` / `vec![..]` without a reachable capacity reservation.
    VecGrowth,
    /// `.push(..)` on a positively-inferred `Vec` receiver.
    VecPush,
    /// `String::new`/`String::from`/`format!`/`.to_string()`/`.to_owned()`.
    StringAlloc,
    /// `.clone()` of a workspace type that owns heap storage.
    CloneHeap,
}

impl AllocKind {
    /// Short label used in diagnostics.
    pub fn describe(&self) -> &'static str {
        match self {
            AllocKind::BoxNew => "`Box::new` heap allocation",
            AllocKind::VecGrowth => "`Vec` construction without a capacity reservation",
            AllocKind::VecPush => "growth-reallocating `Vec::push`",
            AllocKind::StringAlloc => "`String` allocation",
            AllocKind::CloneHeap => "`.clone()` of a heap-owning type",
        }
    }
}

/// A heap-allocation site observed in a function body (A1 raw material).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based line.
    pub line: usize,
    /// Span of the allocating expression.
    pub span: Span,
    /// What allocates.
    pub kind: AllocKind,
    /// Source rendering / type detail for the message (`Box::new`,
    /// `.clone()` of `Packet`, …).
    pub what: String,
    /// The site sits inside a loop body — per-iteration allocation.
    pub in_loop: bool,
    /// Mechanical reserve-insertion fix (`Vec::new()` →
    /// `Vec::with_capacity(n)`) when the loop bound is knowable.
    pub fix: Option<Fix>,
}

/// A collect-then-iterate materialization site (A3 raw material).
#[derive(Debug, Clone)]
pub struct CollectIter {
    /// 1-based line.
    pub line: usize,
    /// Span of the whole chain expression.
    pub span: Span,
    /// The re-iteration method (`into_iter`, `iter`, or a `for` head).
    pub method: &'static str,
    /// Whether the chain sits inside a loop body (escalates severity).
    pub in_loop: bool,
    /// Iterator-fusion fix (delete `.collect::<Vec<_>>().into_iter()`)
    /// when type-sound.
    pub fix: Option<Fix>,
}

/// A large struct parameter passed by value (A4 raw material).
#[derive(Debug, Clone)]
pub struct ByvalParam {
    /// Parameter binding name.
    pub name: String,
    /// Parameter type name.
    pub ty: String,
    /// Estimated size in bytes from the symbol table's field shapes.
    pub est_bytes: usize,
}

/// A float accumulation whose operand order may be unstable.
#[derive(Debug, Clone)]
pub struct FloatAccum {
    /// 1-based line of the accumulation.
    pub line: usize,
    /// Span of the accumulating expression.
    pub span: Span,
    /// The iteration driving the accumulation is itself a hash-container
    /// iteration in this function.
    pub head_unstable: bool,
    /// Indices into [`FnFacts::calls`] made by the iteration head — the
    /// interprocedural escape hatch (the head may call an unstable
    /// producer elsewhere).
    pub head_calls: Vec<usize>,
}

/// Everything the flow pass needs to know about one function body.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Owner + name.
    pub key: FnKey,
    /// Display path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// `#[cfg(test)]` / `#[test]` code, or a tests/examples/benches path.
    pub is_test: bool,
    /// Outgoing calls in body order.
    pub calls: Vec<CallRef>,
    /// `DetRng::new(..)` sites.
    pub rng_news: Vec<(usize, Span)>,
    /// `.stream(..)` sites with their argument shape.
    pub stream_calls: Vec<(StreamArg, usize, Span)>,
    /// Hash-container iteration sites.
    pub unstable_iters: Vec<UnstableIter>,
    /// The function sorts or otherwise canonicalizes an ordering
    /// (`sort*` call or a `collect` into a BTree container) — clears the
    /// order-instability taint it would otherwise propagate.
    pub sorts: bool,
    /// Event-scheduling sink sites (`schedule*`, scheduler `push`).
    pub sched_sinks: Vec<(usize, Span)>,
    /// Metrics-aggregation sink sites (`counter_add`, `histogram_record`…).
    pub metric_sinks: Vec<(usize, Span)>,
    /// Float accumulations in reduction positions.
    pub float_accums: Vec<FloatAccum>,
    /// SCREAMING_CASE path references (candidate static/const reads),
    /// with their lines.
    pub caps_refs: Vec<(String, usize)>,
    /// Heap-allocation sites (A1 raw material).
    pub alloc_sites: Vec<AllocSite>,
    /// The body calls `with_capacity`/`reserve`/`reserve_exact` somewhere —
    /// growth-allocation findings in this function are then presumed
    /// amortized and suppressed.
    pub reserves: bool,
    /// Collect-then-iterate sites (A3 raw material).
    pub collect_iters: Vec<CollectIter>,
    /// Large struct parameters taken by value (A4 raw material).
    pub byval_params: Vec<ByvalParam>,
}

/// A `static` item declaration.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Name as declared.
    pub name: String,
    /// Display path of the defining file.
    pub path: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Declared `static mut`.
    pub is_mut: bool,
    /// The declared type mentions an interior-mutability cell
    /// (`Cell`/`RefCell`/`Mutex`/`Atomic*`/…).
    pub interior: bool,
    /// Declared inside `#[cfg(test)]` code or a test path.
    pub is_test: bool,
}

/// Facts collected from one file: its functions and statics.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Per-function facts, in declaration order.
    pub fns: Vec<FnFacts>,
    /// Static items.
    pub statics: Vec<StaticItem>,
}

/// The linked workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function, flattened across files.
    pub fns: Vec<FnFacts>,
    /// Every static, flattened across files.
    pub statics: Vec<StaticItem>,
    /// Forward edges: `edges[i]` are the fn indices `fns[i]` may call.
    pub edges: Vec<Vec<usize>>,
    /// Reverse edges: `redges[i]` are the fns that may call `fns[i]`.
    pub redges: Vec<Vec<usize>>,
    /// Per-call resolution: `call_targets[i][j]` are the fn indices call
    /// `fns[i].calls[j]` resolved to.
    pub call_targets: Vec<Vec<Vec<usize>>>,
    /// Edges that only exist because of name-only method dispatch (the
    /// receiver type was unknown). Low confidence: the cost pass refuses
    /// to extend hot-path reachability through them, because one false
    /// `.get()`/`.expect()` match would poison an entire subtree.
    pub name_only: BTreeSet<(usize, usize)>,
}

impl CallGraph {
    /// Link per-file facts into a graph.
    pub fn build(files: Vec<FileFacts>) -> CallGraph {
        let mut fns = Vec::new();
        let mut statics = Vec::new();
        for f in files {
            fns.extend(f.fns);
            statics.extend(f.statics);
        }

        // Name indices for resolution.
        let mut by_exact: BTreeMap<(Option<&str>, &str), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_exact
                .entry((f.key.owner.as_deref(), f.key.name.as_str()))
                .or_default()
                .push(i);
            if f.key.owner.is_some() {
                methods_by_name.entry(&f.key.name).or_default().push(i);
            } else {
                free_by_name.entry(&f.key.name).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut call_targets: Vec<Vec<Vec<usize>>> = vec![Vec::new(); fns.len()];
        let mut name_only: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut confident: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, f) in fns.iter().enumerate() {
            let mut per_call = Vec::with_capacity(f.calls.len());
            for c in &f.calls {
                let mut low_confidence = false;
                let targets: Vec<usize> = match (&c.owner, c.via_method) {
                    (Some(owner), _) => by_exact
                        .get(&(Some(owner.as_str()), c.name.as_str()))
                        .cloned()
                        .unwrap_or_default(),
                    (None, true) => {
                        low_confidence = true;
                        let cands = methods_by_name
                            .get(c.name.as_str())
                            .cloned()
                            .unwrap_or_default();
                        if cands.len() > DISPATCH_FANOUT_CAP {
                            Vec::new()
                        } else {
                            cands
                        }
                    }
                    (None, false) => free_by_name
                        .get(c.name.as_str())
                        .cloned()
                        .unwrap_or_default(),
                };
                for &t in &targets {
                    if t != i {
                        edges[i].push(t);
                        if low_confidence {
                            name_only.insert((i, t));
                        } else {
                            // A typed resolution of the same edge outranks
                            // any name-only match recorded earlier.
                            confident.insert((i, t));
                        }
                    }
                }
                per_call.push(targets);
            }
            edges[i].sort_unstable();
            edges[i].dedup();
            call_targets[i] = per_call;
        }

        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, outs) in edges.iter().enumerate() {
            for &t in outs {
                redges[t].push(i);
            }
        }
        for r in &mut redges {
            r.sort_unstable();
            r.dedup();
        }

        name_only.retain(|e| !confident.contains(e));

        CallGraph {
            fns,
            statics,
            edges,
            redges,
            call_targets,
            name_only,
        }
    }

    /// The scope of the file a function lives in.
    pub fn scope(&self, i: usize) -> Scope {
        scope_of(&self.fns[i].path)
    }

    /// Forward-reachable set from `roots` (inclusive), with BFS parents
    /// for witness-chain reconstruction.
    pub fn reach_forward(&self, roots: &[usize]) -> Reach {
        self.reach(roots, &self.edges)
    }

    /// Reverse-reachable set (every fn that can reach one of `roots`),
    /// with parents pointing one hop closer to a root.
    pub fn reach_backward(&self, roots: &[usize]) -> Reach {
        self.reach(roots, &self.redges)
    }

    fn reach(&self, roots: &[usize], edges: &[Vec<usize>]) -> Reach {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(None);
                queue.push(r);
            }
        }
        let mut at = 0;
        while at < queue.len() {
            let cur = queue[at];
            at += 1;
            for &next in &edges[cur] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some(cur));
                    queue.push(next);
                }
            }
        }
        Reach { parent }
    }

    /// Render a witness chain from `from` back to whichever root reached
    /// it, as `a → b → c` with file:line anchors.
    pub fn witness(&self, reach: &Reach, from: usize) -> String {
        let mut hops = Vec::new();
        let mut cur = Some(from);
        let mut guard = 0;
        while let Some(i) = cur {
            hops.push(i);
            cur = reach.parent.get(&i).copied().flatten();
            guard += 1;
            if guard > self.fns.len() + 1 {
                break;
            }
        }
        hops.reverse();
        hops.iter()
            .map(|&i| {
                let f = &self.fns[i];
                format!("{} ({}:{})", f.key.display(), f.path, f.line)
            })
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Indices of functions whose name is one of `names`, filtered to
    /// non-test sim-scope functions.
    pub fn sim_fns_named(&self, names: &[&str]) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                !f.is_test && self.scope(*i) == Scope::Sim && names.contains(&f.key.name.as_str())
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// A reachability closure with BFS parents.
#[derive(Debug, Default)]
pub struct Reach {
    /// fn index → the BFS parent it was discovered from (`None` at roots).
    pub parent: BTreeMap<usize, Option<usize>>,
}

impl Reach {
    /// Whether `i` is in the closure.
    pub fn contains(&self, i: usize) -> bool {
        self.parent.contains_key(&i)
    }

    /// Every reached index, ascending.
    pub fn members(&self) -> BTreeSet<usize> {
        self.parent.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, sem, sym};

    /// Parse a set of `(path, src)` files through the full fact-collection
    /// pipeline and link the graph.
    fn graph_of(srcs: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(crate::ast::File, crate::lex::Lexed)> = srcs
            .iter()
            .map(|(p, s)| parse::parse_file(p, s).expect("test source parses"))
            .collect();
        let symbols = sym::Symbols::build(parsed.iter().map(|(f, _)| f));
        let facts = srcs
            .iter()
            .zip(&parsed)
            .map(|((_, s), (file, _))| sem::check_file_collect(file, s, &symbols).1)
            .collect();
        CallGraph::build(facts)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.key.name == name)
            .unwrap_or_else(|| panic!("fn {name} in graph"))
    }

    #[test]
    fn free_and_qualified_calls_resolve_to_edges() {
        let g = graph_of(&[(
            "crates/dcsim/src/engine.rs",
            "fn outer() { helper(); Widget::assemble(); }\n\
             fn helper() {}\n\
             struct Widget;\n\
             impl Widget { fn assemble() {} }\n",
        )]);
        let outer = idx(&g, "outer");
        let helper = idx(&g, "helper");
        let assemble = idx(&g, "assemble");
        assert!(g.edges[outer].contains(&helper), "free call resolved");
        assert!(
            g.edges[outer].contains(&assemble),
            "qualified call resolved"
        );
        assert!(g.redges[helper].contains(&outer), "reverse edge present");
        assert_eq!(g.fns[assemble].key.owner.as_deref(), Some("Widget"));
    }

    #[test]
    fn unresolved_method_calls_dispatch_to_every_trait_impl() {
        let g = graph_of(&[(
            "crates/dcsim/src/engine.rs",
            "trait Sched { fn push_event(&mut self); }\n\
             struct Heap;\n\
             impl Sched for Heap { fn push_event(&mut self) { heap_work(); } }\n\
             struct Wheel;\n\
             impl Sched for Wheel { fn push_event(&mut self) {} }\n\
             fn drive() { let s = mystery(); s.push_event(); }\n\
             fn mystery() {}\n\
             fn heap_work() {}\n",
        )]);
        let drive = idx(&g, "drive");
        // The receiver's type is unknown, so the call over-approximates to
        // every same-name method: both impls plus the trait's own
        // declaration (kept so trait *default* bodies resolve too).
        let call = g.fns[drive]
            .calls
            .iter()
            .position(|c| c.name == "push_event")
            .expect("method call recorded");
        assert_eq!(
            g.call_targets[drive][call].len(),
            3,
            "impls + trait decl targeted"
        );
        let owners: Vec<&str> = g.call_targets[drive][call]
            .iter()
            .filter_map(|&t| g.fns[t].key.owner.as_deref())
            .collect();
        assert!(
            owners.contains(&"Heap") && owners.contains(&"Wheel"),
            "{owners:?}"
        );
        // And reachability flows through the dispatch into impl bodies.
        let reach = g.reach_forward(&[drive]);
        assert!(reach.contains(idx(&g, "heap_work")));
    }

    #[test]
    fn recursive_and_mutually_recursive_graphs_terminate() {
        let g = graph_of(&[(
            "crates/dcsim/src/engine.rs",
            "fn ping() { pong(); }\n\
             fn pong() { ping(); }\n\
             fn looper() { looper(); helper(); }\n\
             fn helper() {}\n",
        )]);
        let ping = idx(&g, "ping");
        let reach = g.reach_forward(&[ping]);
        assert!(reach.contains(idx(&g, "pong")));
        assert!(reach.contains(ping));
        // Self-edges are dropped at build time; the cycle still terminates
        // and reaches past itself.
        let looper = idx(&g, "looper");
        assert!(!g.edges[looper].contains(&looper), "self-edge skipped");
        let r2 = g.reach_forward(&[looper]);
        assert!(r2.contains(idx(&g, "helper")));
    }

    #[test]
    fn witness_renders_the_hot_chain() {
        let g = graph_of(&[(
            "crates/dcsim/src/engine.rs",
            "pub fn run() { middle(); }\n\
             fn middle() { leaf(); }\n\
             fn leaf() {}\n",
        )]);
        let roots = g.sim_fns_named(&["run"]);
        let reach = g.reach_forward(&roots);
        let w = g.witness(&reach, idx(&g, "leaf"));
        assert!(
            w.contains("run") && w.contains("middle") && w.contains("leaf"),
            "{w}"
        );
        assert!(w.contains("engine.rs:1"), "hop sites carry file:line — {w}");
    }
}
