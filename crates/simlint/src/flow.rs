//! Interprocedural dataflow: the P (parallel-readiness) rule family.
//!
//! ROADMAP item 1 shards the engine across threads while keeping runs
//! bit-reproducible. These rules flag, ahead of that PR, the patterns that
//! survive single-threaded review but break determinism under concurrency:
//!
//! - **P1** — shared mutable statics / interior-mutability cells: racy or
//!   ordering-dependent once two shards touch them.
//! - **P2** — hash-container iteration whose results feed event scheduling
//!   or metrics aggregation, found *through call chains*, not only at the
//!   iteration site.
//! - **P3** — DetRng stream discipline, generalized from D6's lexical
//!   check: subsystem context propagates down the call graph, so a helper
//!   that seeds a private `DetRng::new` three calls below fault code is
//!   still caught.
//! - **P4** — detected locally in [`crate::sem`] (heap ordering keyed by a
//!   bare timestamp without a `(time, seq)` tiebreak).
//! - **P5** — float accumulation whose operand order depends on hash
//!   iteration, directly or via a call to an order-unstable producer.
//!
//! Everything here consumes the [`CallGraph`](crate::callgraph::CallGraph)
//! built from the semantic walker's per-function facts; suppression and
//! S1 staleness are applied later by the pipeline, which sees these
//! findings alongside the per-file ones.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, StreamArg};
use crate::{scope_of, Finding, Rule, Scope};

/// Function names treated as engine hot-path roots for P1 reachability.
const HOT_ROOTS: [&str; 4] = ["run", "run_with", "run_watched", "step"];

/// Type names that carry interior mutability when they appear anywhere in
/// a static's declared type.
pub(crate) const INTERIOR_CELLS: [&str; 10] = [
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "Mutex",
    "RwLock",
    "OnceLock",
    "LazyLock",
    "SyncUnsafeCell",
];

/// The RNG stream assignments documented on `DetRng::stream`.
const STREAMS: [(u64, &str, &str); 5] = [
    (0, "workload", "WORKLOAD_STREAM"),
    (1, "ECMP", "ECMP_STREAM"),
    (2, "RED", "RED_STREAM"),
    (3, "feedback", "FEEDBACK_STREAM"),
    (4, "fault", "FAULT_STREAM"),
];

fn stream_desc(n: u64) -> String {
    match STREAMS.iter().find(|(v, ..)| *v == n) {
        Some((_, what, name)) => format!("stream {n} ({what}, `{name}`)"),
        None => format!("stream {n}"),
    }
}

fn stream_const(n: u64) -> &'static str {
    STREAMS
        .iter()
        .find(|(v, ..)| *v == n)
        .map(|(_, _, name)| *name)
        .unwrap_or("a named *_STREAM constant")
}

fn named_stream_value(name: &str) -> Option<u64> {
    STREAMS
        .iter()
        .find(|(_, _, c)| *c == name)
        .map(|(v, ..)| *v)
}

/// The subsystem a function name claims, from its `_`-separated segments.
fn fn_marker(name: &str) -> Option<u64> {
    for seg in name.split('_') {
        let seg = seg.to_ascii_lowercase();
        let hit = match seg.as_str() {
            "fault" | "faults" => Some(4),
            "ecmp" => Some(1),
            "red" => Some(2),
            "workload" | "arrival" | "arrivals" => Some(0),
            "feedback" => Some(3),
            _ => None,
        };
        if hit.is_some() {
            return hit;
        }
    }
    None
}

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Run every interprocedural P rule over the linked graph.
pub fn check(g: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    check_p1(g, &mut out);
    let taint = unstable_taint(g);
    check_p2(g, &taint, &mut out);
    check_p3(g, &mut out);
    check_p5(g, &taint, &mut out);
    out
}

fn sim_nontest(g: &CallGraph, i: usize) -> bool {
    !g.fns[i].is_test && g.scope(i) == Scope::Sim
}

fn push(out: &mut Vec<Finding>, path: &str, line: usize, rule: Rule, message: String) {
    out.push(Finding {
        path: path.to_string(),
        line,
        col: 1,
        rule,
        message,
        fix: None,
    });
}

// ----- P1: shared mutable global state -----------------------------------

fn check_p1(g: &CallGraph, out: &mut Vec<Finding>) {
    let roots = g.sim_fns_named(&HOT_ROOTS);
    let hot = g.reach_forward(&roots);

    for s in &g.statics {
        if s.is_test || !(s.is_mut || s.interior) {
            continue;
        }
        // Who reads/writes it from a hot path?
        let mut hot_ref: Option<(usize, usize)> = None; // (fn, ref line)
        for (i, f) in g.fns.iter().enumerate() {
            if f.is_test || !hot.contains(i) {
                continue;
            }
            if let Some((_, line)) = f.caps_refs.iter().find(|(n, _)| n == &s.name) {
                hot_ref = Some((i, *line));
                break;
            }
        }
        let what = if s.is_mut {
            "a `static mut`"
        } else {
            "a static with interior mutability"
        };
        let in_sim = scope_of(&s.path) == Scope::Sim;
        if in_sim {
            let reach_note = match hot_ref {
                Some((i, line)) => format!(
                    " It is reachable from an engine hot path: {} touches it at line {line}.",
                    g.witness(&hot, i)
                ),
                None => String::new(),
            };
            push(
                out,
                &s.path,
                s.line,
                Rule::P1,
                format!(
                    "`{}` is {what}: shared mutable global state becomes racy or \
                     merge-order-dependent once the engine is sharded across threads; \
                     thread the state through the simulation context instead.{reach_note}",
                    s.name
                ),
            );
        } else if let Some((i, line)) = hot_ref {
            push(
                out,
                &s.path,
                s.line,
                Rule::P1,
                format!(
                    "`{}` is {what} and is referenced from an engine hot path \
                     ({} at line {line}); shared mutable global state breaks \
                     determinism under the parallel engine — thread it through \
                     the simulation context instead.",
                    s.name,
                    g.witness(&hot, i)
                ),
            );
        }
    }
}

// ----- order-instability taint (shared by P2/P5) --------------------------

/// BFS up the reverse edges from every order-unstable producer. A caller
/// that sorts (or collects into a BTree container) clears the taint and is
/// not entered. `parent[i]` points one hop closer to a producer.
struct Taint {
    parent: BTreeMap<usize, Option<usize>>,
    producers: BTreeSet<usize>,
}

impl Taint {
    fn tainted(&self, i: usize) -> bool {
        self.parent.contains_key(&i)
    }

    /// Render the chain from `i` down to the producer that taints it.
    fn chain(&self, g: &CallGraph, i: usize) -> String {
        let mut hops = vec![i];
        let mut cur = self.parent.get(&i).copied().flatten();
        let mut guard = 0;
        while let Some(n) = cur {
            hops.push(n);
            cur = self.parent.get(&n).copied().flatten();
            guard += 1;
            if guard > g.fns.len() + 1 {
                break;
            }
        }
        hops.iter()
            .map(|&h| {
                let f = &g.fns[h];
                format!("{} ({}:{})", f.key.display(), f.path, f.line)
            })
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

fn unstable_taint(g: &CallGraph) -> Taint {
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut producers = BTreeSet::new();
    let mut queue = Vec::new();
    for (i, f) in g.fns.iter().enumerate() {
        if !f.unstable_iters.is_empty() && !f.sorts {
            parent.insert(i, None);
            producers.insert(i);
            queue.push(i);
        }
    }
    let mut at = 0;
    while at < queue.len() {
        let cur = queue[at];
        at += 1;
        for &caller in &g.redges[cur] {
            if g.fns[caller].sorts {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(caller) {
                e.insert(Some(cur));
                queue.push(caller);
            }
        }
    }
    Taint { parent, producers }
}

// ----- P2: unstable iteration feeding scheduling/metrics ------------------

fn check_p2(g: &CallGraph, taint: &Taint, out: &mut Vec<Finding>) {
    for (h, f) in g.fns.iter().enumerate() {
        if !sim_nontest(g, h) || f.sorts {
            continue;
        }
        let sched = !f.sched_sinks.is_empty();
        let metric = !f.metric_sinks.is_empty();
        if !sched && !metric {
            continue;
        }
        let feeds = match (sched, metric) {
            (true, true) => "event scheduling and metrics aggregation",
            (true, false) => "event scheduling",
            _ => "metrics aggregation",
        };

        // Local: this function iterates the hash container itself.
        for u in &f.unstable_iters {
            out.push(Finding {
                path: f.path.clone(),
                line: u.line,
                col: 1,
                rule: Rule::P2,
                message: format!(
                    "`{}` iterates a {} (RandomState order) and feeds {feeds}; \
                     under the parallel engine the visit order is not reproducible — \
                     use a BTree container or sort before consuming",
                    f.key.display(),
                    u.container
                ),
                fix: u.fix.clone(),
            });
        }

        // Interprocedural: a call chain reaches an unstable producer.
        let mut seen_lines = BTreeSet::new();
        for (j, c) in f.calls.iter().enumerate() {
            let Some(t) = g.call_targets[h][j]
                .iter()
                .copied()
                .find(|&t| taint.tainted(t))
            else {
                continue;
            };
            if taint.producers.contains(&h) {
                // Already reported at the local iteration site.
                continue;
            }
            if !seen_lines.insert(c.line) {
                continue;
            }
            let producer = &g.fns[chain_producer(taint, t)];
            let iter_line = producer
                .unstable_iters
                .first()
                .map(|u| u.line)
                .unwrap_or(producer.line);
            push(
                out,
                &f.path,
                c.line,
                Rule::P2,
                format!(
                    "`{}` feeds {feeds} with results of `{}`, which iterates a \
                     hash container in RandomState order ({}:{iter_line}; chain: {}); \
                     use a BTree container or sort before consuming",
                    f.key.display(),
                    g.fns[t].key.display(),
                    producer.path,
                    taint.chain(g, t)
                ),
            );
        }
    }
}

/// Follow taint parents from `i` to the producer at the end of the chain.
fn chain_producer(taint: &Taint, i: usize) -> usize {
    let mut cur = i;
    let mut guard = 0;
    while let Some(Some(next)) = taint.parent.get(&cur) {
        cur = *next;
        guard += 1;
        if guard > taint.parent.len() + 1 {
            break;
        }
    }
    cur
}

// ----- P3: interprocedural DetRng stream discipline -----------------------

fn check_p3(g: &CallGraph, out: &mut Vec<Finding>) {
    // A distributor derives several streams from a root RNG (or names a
    // *_STREAM constant); it legitimately touches many subsystems and
    // neither receives nor propagates a single-subsystem context.
    let is_distributor = |i: usize| -> bool {
        let f = &g.fns[i];
        let caps: BTreeSet<&str> = f
            .caps_refs
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.ends_with("_STREAM"))
            .collect();
        if caps.len() >= 2 {
            return true;
        }
        let distinct: BTreeSet<&StreamArg> = f.stream_calls.iter().map(|(a, ..)| a).collect();
        distinct.len() >= 2
    };

    // Seed contexts from function-name markers, then flow them down call
    // edges; a function claimed by two different subsystems is shared
    // infrastructure and gets no context.
    let mut ctx: BTreeMap<usize, (u64, Option<usize>)> = BTreeMap::new(); // i -> (stream, caller)
    let mut mixed: BTreeSet<usize> = BTreeSet::new();
    let mut queue = Vec::new();
    for (i, f) in g.fns.iter().enumerate() {
        if !sim_nontest(g, i) || is_distributor(i) {
            continue;
        }
        if let Some(s) = fn_marker(&f.key.name) {
            ctx.insert(i, (s, None));
            queue.push(i);
        }
    }
    let mut at = 0;
    while at < queue.len() {
        let cur = queue[at];
        at += 1;
        // A queued function may have lost its context since (second,
        // conflicting subsystem reached it → `mixed`).
        let Some(&(stream, _)) = ctx.get(&cur) else {
            continue;
        };
        for &callee in &g.edges[cur] {
            if !sim_nontest(g, callee) || is_distributor(callee) || mixed.contains(&callee) {
                continue;
            }
            if fn_marker(&g.fns[callee].key.name).is_some() {
                continue; // its own marker wins
            }
            match ctx.get(&callee) {
                Some((s, _)) if *s == stream => {}
                Some(_) => {
                    ctx.remove(&callee);
                    mixed.insert(callee);
                }
                None => {
                    ctx.insert(callee, (stream, Some(cur)));
                    queue.push(callee);
                }
            }
        }
    }

    let chain = |i: usize| -> String {
        let mut hops = vec![i];
        let mut cur = ctx.get(&i).and_then(|(_, p)| *p);
        while let Some(n) = cur {
            hops.push(n);
            cur = ctx.get(&n).and_then(|(_, p)| *p);
        }
        hops.reverse();
        hops.iter()
            .map(|&h| {
                let f = &g.fns[h];
                format!("{} ({}:{})", f.key.display(), f.path, f.line)
            })
            .collect::<Vec<_>>()
            .join(" → ")
    };

    for (i, f) in g.fns.iter().enumerate() {
        if !sim_nontest(g, i) {
            continue;
        }
        // Lexically-fault files are D6's jurisdiction; re-flagging every
        // line there would only duplicate findings.
        if file_name(&f.path).contains("fault") {
            continue;
        }
        let fctx = ctx.get(&i).map(|(s, _)| *s);

        if let Some(s) = fctx {
            for (line, _) in &f.rng_news {
                push(
                    out,
                    &f.path,
                    *line,
                    Rule::P3,
                    format!(
                        "`{}` is {} subsystem code (chain: {}) but seeds a private \
                         `DetRng::new`; derive the generator from the root RNG with \
                         `.stream({})` so subsystem draws stay decoupled",
                        f.key.display(),
                        stream_desc(s),
                        chain(i),
                        stream_const(s)
                    ),
                );
            }
        }

        for (arg, line, _) in &f.stream_calls {
            match arg {
                StreamArg::Num(n) => {
                    if fn_marker(&f.key.name) == Some(4) {
                        continue; // D6 already polices fault-marked fns
                    }
                    if let Some(s) = fctx {
                        if *n != s {
                            push(
                                out,
                                &f.path,
                                *line,
                                Rule::P3,
                                format!(
                                    "`{}` is {} subsystem code (chain: {}) but draws \
                                     {}; each subsystem must stay on its assigned stream",
                                    f.key.display(),
                                    stream_desc(s),
                                    chain(i),
                                    stream_desc(*n),
                                ),
                            );
                            continue;
                        }
                    }
                    push(
                        out,
                        &f.path,
                        *line,
                        Rule::P3,
                        format!(
                            "raw stream number in `.stream({n})`; use the named \
                             constant ({}) so the stream assignment is auditable",
                            stream_const(*n)
                        ),
                    );
                }
                StreamArg::Named(name) => {
                    if let (Some(s), Some(v)) = (fctx, named_stream_value(name)) {
                        if v != s {
                            push(
                                out,
                                &f.path,
                                *line,
                                Rule::P3,
                                format!(
                                    "`{}` is {} subsystem code (chain: {}) but draws \
                                     from `{name}` ({}); each subsystem must stay on \
                                     its assigned stream",
                                    f.key.display(),
                                    stream_desc(s),
                                    chain(i),
                                    stream_desc(v),
                                ),
                            );
                        }
                    }
                }
                StreamArg::Other => {}
            }
        }
    }
}

// ----- P5: order-unstable float reduction ---------------------------------

fn check_p5(g: &CallGraph, taint: &Taint, out: &mut Vec<Finding>) {
    for (h, f) in g.fns.iter().enumerate() {
        if !sim_nontest(g, h) || f.sorts {
            continue;
        }
        for a in &f.float_accums {
            if a.head_unstable {
                push(
                    out,
                    &f.path,
                    a.line,
                    Rule::P5,
                    format!(
                        "float accumulation in `{}` iterates a hash container: \
                         float addition is not associative, so the sum depends on \
                         RandomState visit order; iterate a BTree container or \
                         sort the operands first",
                        f.key.display()
                    ),
                );
                continue;
            }
            let hit = a.head_calls.iter().find_map(|&j| {
                g.call_targets[h]
                    .get(j)
                    .into_iter()
                    .flatten()
                    .copied()
                    .find(|&t| taint.tainted(t))
            });
            if let Some(t) = hit {
                let producer = &g.fns[chain_producer(taint, t)];
                let iter_line = producer
                    .unstable_iters
                    .first()
                    .map(|u| u.line)
                    .unwrap_or(producer.line);
                push(
                    out,
                    &f.path,
                    a.line,
                    Rule::P5,
                    format!(
                        "float accumulation in `{}` reduces over `{}`, whose order \
                         comes from a hash-container iteration ({}:{iter_line}; \
                         chain: {}); float addition is not associative — sort the \
                         operands or use an order-stable source",
                        f.key.display(),
                        g.fns[t].key.display(),
                        producer.path,
                        taint.chain(g, t)
                    ),
                );
            }
        }
    }
}
