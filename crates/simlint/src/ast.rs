//! AST for the Rust subset the workspace uses.
//!
//! This is deliberately *much* smaller than a real Rust AST: it keeps
//! exactly what the semantic rules consume — item shells with signatures,
//! struct/enum definitions, use-paths, and expression trees with spans so
//! the autofixer can splice replacements back into the original text.
//! Anything the parser cannot confidently shape degrades to
//! [`ExprKind::Opaque`] / [`Item::Other`] rather than failing the file.

use crate::lex::Span;

/// A parsed source file.
#[derive(Debug, Default)]
pub struct File {
    /// Display path (workspace-relative) the file was parsed under.
    pub path: String,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Simplified type reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRef {
    /// Path type with optional generic arguments: `Vec<Entry>`, `u64`.
    Path {
        /// Path segments (`["std", "time", "Instant"]` or `["u64"]`).
        segs: Vec<String>,
        /// Generic arguments, types only (lifetimes/consts dropped).
        args: Vec<TypeRef>,
    },
    /// `&T` / `&mut T` — the reference is transparent to every rule.
    Ref(Box<TypeRef>),
    /// Tuple type.
    Tuple(Vec<TypeRef>),
    /// `()`.
    Unit,
    /// `_`, `impl Trait`, `dyn Trait`, fn pointers, or anything else the
    /// rules never need to distinguish.
    Other,
}

impl TypeRef {
    /// Convenience constructor for a bare single-segment path type.
    pub fn name(s: &str) -> TypeRef {
        TypeRef::Path {
            segs: vec![s.to_string()],
            args: Vec::new(),
        }
    }

    /// The terminal segment of a path type, seen through references.
    pub fn last_seg(&self) -> Option<&str> {
        match self {
            TypeRef::Path { segs, .. } => segs.last().map(|s| s.as_str()),
            TypeRef::Ref(inner) => inner.last_seg(),
            _ => None,
        }
    }
}

/// Struct field shapes.
#[derive(Debug, Clone)]
pub enum Fields {
    /// `struct S { a: T, … }`
    Named(Vec<(String, TypeRef)>),
    /// `struct S(T, …);`
    Tuple(Vec<TypeRef>),
    /// `struct S;`
    Unit,
}

/// Receiver form of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfKind {
    /// `self` / `mut self`.
    Value,
    /// `&self` / `&mut self`.
    Reference,
}

/// A function or method, with body when present.
#[derive(Debug)]
pub struct FnItem {
    /// Name as written.
    pub name: String,
    /// Receiver, when this is a method.
    pub self_param: Option<SelfKind>,
    /// Non-self parameters: pattern and declared type.
    pub params: Vec<(Pat, TypeRef)>,
    /// Return type; [`TypeRef::Unit`] when omitted.
    pub ret: TypeRef,
    /// Body block (absent for trait method declarations).
    pub body: Option<Block>,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub cfg_test: bool,
    /// 1-based source line of the function name.
    pub line: usize,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// One expanded `use` binding: `alias` names `path` in this file.
    Use {
        /// Full path segments, `*` kept literally for globs.
        path: Vec<String>,
        /// The name this import binds locally.
        alias: String,
    },
    /// Struct definition.
    Struct {
        /// Type name.
        name: String,
        /// Field shapes.
        fields: Fields,
    },
    /// Enum definition.
    Enum {
        /// Type name.
        name: String,
        /// Variant names in declaration order.
        variants: Vec<String>,
        /// Per-variant payload types, aligned with `variants`: tuple
        /// payload types, named-field payload types, or empty for unit
        /// variants. The A2 cost rule sizes these.
        payloads: Vec<Vec<TypeRef>>,
        /// Declared inside `#[cfg(test)]` code.
        cfg_test: bool,
        /// 1-based declaration line.
        line: usize,
    },
    /// Free function or method.
    Fn(FnItem),
    /// Impl block.
    Impl {
        /// Trait being implemented, with its generic args, when any.
        trait_: Option<TypeRef>,
        /// The implementing type.
        self_ty: TypeRef,
        /// Items inside (functions and consts matter).
        items: Vec<Item>,
        /// Inside `#[cfg(test)]`.
        cfg_test: bool,
    },
    /// Inline module.
    Mod {
        /// Module name.
        name: String,
        /// `#[cfg(test)]` on the module (scopes every nested item).
        cfg_test: bool,
        /// Nested items.
        items: Vec<Item>,
    },
    /// Trait definition (default method bodies are analyzed).
    Trait {
        /// Trait name.
        name: String,
        /// Nested items.
        items: Vec<Item>,
    },
    /// `const NAME: Ty = …;` (also used for statics).
    Const {
        /// Constant name.
        name: String,
        /// Declared type.
        ty: TypeRef,
        /// Initializer, when parsed.
        init: Option<Expr>,
        /// Declared with `static` rather than `const`.
        is_static: bool,
        /// `static mut` (always a P1 finding when it is).
        is_mut: bool,
        /// 1-based source line of the declaration keyword.
        line: usize,
    },
    /// Anything else (type aliases, extern blocks, macro_rules, …).
    Other,
}

/// A block: statements plus an optional tail expression.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order; a trailing expression statement without `;`
    /// is simply the last [`Stmt::Expr`].
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let pat: ty = init;` (with optional `else` block dropped).
    Let {
        /// Binding pattern.
        pat: Pat,
        /// Declared type, when annotated.
        ty: Option<TypeRef>,
        /// Initializer.
        init: Option<Expr>,
    },
    /// Expression statement (with or without `;`).
    Expr(Expr),
    /// Nested item.
    Item(Box<Item>),
}

/// Literal kinds (payload only where a rule consumes it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lit {
    /// Integer, raw text including `_` separators and suffix.
    Int(String),
    /// Float.
    Float,
    /// String; `true` when non-empty.
    Str(bool),
    /// Char/byte.
    Char,
    /// `true` / `false`.
    Bool(bool),
}

impl Lit {
    /// Parse an integer literal's value, ignoring `_` and any suffix.
    pub fn int_value(&self) -> Option<u64> {
        let Lit::Int(text) = self else { return None };
        let t: String = text.chars().filter(|c| *c != '_').collect();
        if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            return u64::from_str_radix(hex.trim_end_matches(|c: char| !c.is_ascii_hexdigit()), 16)
                .ok();
        }
        let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }

    /// The type suffix on an integer literal, if any (`u64` in `8u64`).
    pub fn int_suffix(&self) -> Option<&str> {
        let Lit::Int(text) = self else { return None };
        let at = text.find(|c: char| c.is_ascii_alphabetic() && c != 'x' && c != 'X')?;
        Some(&text[at..])
    }
}

/// Binary operators the rules care to distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<< >> & | ^`
    Bit,
    /// `== != < <= > >=`
    Cmp,
    /// `&& ||`
    Logic,
    /// `.. ..=`
    Range,
}

impl BinOp {
    /// Whether this is `+ - * / %` (the operators unit rules police).
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// The `std::ops` trait name implementing this operator.
    pub fn trait_name(self) -> Option<&'static str> {
        Some(match self {
            BinOp::Add => "Add",
            BinOp::Sub => "Sub",
            BinOp::Mul => "Mul",
            BinOp::Div => "Div",
            BinOp::Rem => "Rem",
            _ => return None,
        })
    }

    /// Spelled-out name for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Bit => "bitwise op",
            BinOp::Cmp => "comparison",
            BinOp::Logic => "logical op",
            BinOp::Range => "range",
        }
    }
}

/// An expression with its source span.
#[derive(Debug)]
pub struct Expr {
    /// Shape.
    pub kind: ExprKind,
    /// Byte range in the original source.
    pub span: Span,
    /// 1-based source line of the expression's first token.
    pub line: usize,
}

/// Expression shapes.
#[derive(Debug)]
pub enum ExprKind {
    /// Literal.
    Lit(Lit),
    /// Path: `x`, `Nanos::ZERO`, `SchedulerKind::Heap`.
    Path(Vec<String>),
    /// Unary `- ! * &`.
    Unary(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs = rhs` or `lhs op= rhs`.
    Assign {
        /// The compound operator, `None` for plain `=`.
        op: Option<BinOp>,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// Function or tuple-struct call.
    Call {
        /// Callee (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Method call.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments (excluding the receiver).
        args: Vec<Expr>,
    },
    /// Field or tuple-index access; `name` is `"0"` for `.0`.
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name or tuple index.
        name: String,
        /// Span of `.name` (dot through field token), for autofixes.
        access_span: Span,
    },
    /// `expr as Ty`.
    Cast {
        /// The value being cast.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeRef,
    },
    /// Parenthesized expression.
    Paren(Box<Expr>),
    /// Tuple literal.
    Tuple(Vec<Expr>),
    /// Array literal (`[a, b]` or `[x; n]`).
    Array(Vec<Expr>),
    /// Indexing.
    Index {
        /// Receiver.
        recv: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
    },
    /// Block expression.
    Block(Block),
    /// `if cond { .. } else { .. }` (`if let` folds its scrutinee into
    /// `cond` as an opaque).
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then block.
        then: Block,
        /// Else branch (block or nested if).
        else_: Option<Box<Expr>>,
    },
    /// Match expression.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
    },
    /// Loops (`while`/`for`/`loop`), bodies analyzed, shape collapsed.
    Loop {
        /// `for` loop binding pattern, when any.
        pat: Option<Pat>,
        /// Condition / iterator expression, when any.
        head: Option<Box<Expr>>,
        /// Loop body.
        body: Block,
    },
    /// Closure.
    Closure {
        /// Parameters (type annotations usually absent).
        params: Vec<(Pat, Option<TypeRef>)>,
        /// Body.
        body: Box<Expr>,
    },
    /// Struct literal `Path { field: expr, ..rest }`.
    StructLit {
        /// Struct path.
        path: Vec<String>,
        /// Explicit fields (shorthand fields carry `None`).
        fields: Vec<(String, Option<Expr>)>,
        /// `..base` functional-update expression.
        rest: Option<Box<Expr>>,
    },
    /// Macro invocation; arguments parsed as expressions when they are.
    MacroCall {
        /// Macro name (last path segment, without `!`).
        name: String,
        /// Inner expressions the parser could shape.
        args: Vec<Expr>,
    },
    /// `return` / `break` with optional value.
    Jump(Option<Box<Expr>>),
    /// `expr?`.
    Try(Box<Expr>),
    /// `lo..hi` range with optional endpoints.
    RangeLit {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// Tokens the parser could not shape into anything above.
    Opaque,
}

/// A match arm.
#[derive(Debug)]
pub struct Arm {
    /// Arm pattern.
    pub pat: Pat,
    /// `if` guard.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// 1-based line of the pattern.
    pub line: usize,
}

/// Patterns, shaped only as far as the rules read them.
#[derive(Debug, Clone)]
pub enum Pat {
    /// `_`
    Wild,
    /// Path pattern: a bare binding (`x`), a unit variant (`Heap`), or a
    /// qualified variant (`SchedulerKind::Heap`) — resolution happens in
    /// the checker, which knows the enums.
    Path(Vec<String>),
    /// Tuple-struct pattern `Path(p, …)`.
    TupleStruct {
        /// Constructor path.
        path: Vec<String>,
        /// Element patterns.
        elems: Vec<Pat>,
    },
    /// Struct pattern `Path { … }` (fields not tracked).
    Struct {
        /// Struct path.
        path: Vec<String>,
    },
    /// Tuple pattern.
    Tuple(Vec<Pat>),
    /// Literal pattern (incl. negative numbers and ranges).
    Lit,
    /// `p1 | p2 | …`
    Or(Vec<Pat>),
    /// `ident @ pat`, `ref`/`mut` bindings, slices, rests, and anything
    /// else — never wildcard-like for rule purposes.
    Other,
}

impl Pat {
    /// The binding name, when this pattern is a simple one-segment path.
    pub fn as_binding(&self) -> Option<&str> {
        match self {
            Pat::Path(segs) if segs.len() == 1 => Some(&segs[0]),
            _ => None,
        }
    }
}
