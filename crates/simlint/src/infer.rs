//! Local type inference with unit taint.
//!
//! The semantic rules need just enough typing to answer three questions:
//! is this operand a unit newtype, is it a raw integer that *escaped*
//! from a unit (via `.0` / `as_u64()` / a cast), or is it something the
//! rules must leave alone? [`Ty`] models exactly that, and everything
//! the walker cannot prove degrades to [`Ty::Unknown`] — the checkers
//! only fire on positively identified types, so unknown is always safe.

use std::collections::BTreeMap;

use crate::ast::TypeRef;
use crate::sym::{Symbols, UnitKind};

/// Inferred type of an expression or binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// A unit newtype value (`Nanos`, `Bytes`, `BitRate`).
    Unit(UnitKind),
    /// An integer; `from` records the unit it escaped from, if any.
    Int {
        /// Taint: the unit this integer was extracted from.
        from: Option<UnitKind>,
    },
    /// A float (`f32`/`f64`); taint is not tracked through floats.
    Float,
    /// `bool`.
    Bool,
    /// Some other named type, with inferred generic arguments
    /// (`Option<Nanos>` → `Named {{ name: "Option", args: [Unit(Nanos)] }}`).
    Named {
        /// Bare type name.
        name: String,
        /// Generic arguments, when knowable.
        args: Vec<Ty>,
    },
    /// Tuple.
    Tuple(Vec<Ty>),
    /// Could not be determined — the checkers never fire on this.
    Unknown,
}

impl Ty {
    /// A plain untainted integer.
    pub const RAW_INT: Ty = Ty::Int { from: None };

    /// Whether this is an integer (tainted or not).
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::Int { .. })
    }

    /// The unit taint carried by this value, if any.
    pub fn taint(&self) -> Option<UnitKind> {
        match self {
            Ty::Unit(k) => Some(*k),
            Ty::Int { from } => *from,
            _ => None,
        }
    }

    /// Human-readable name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Ty::Unit(k) => k.name().to_string(),
            Ty::Int { from: Some(k) } => format!("u64 (from {})", k.name()),
            Ty::Int { from: None } => "u64".to_string(),
            Ty::Float => "f64".to_string(),
            Ty::Bool => "bool".to_string(),
            Ty::Named { name, .. } => name.clone(),
            Ty::Tuple(_) => "tuple".to_string(),
            Ty::Unknown => "_".to_string(),
        }
    }

    /// Map a declared [`TypeRef`] to a [`Ty`] (references transparent).
    pub fn from_typeref(ty: &TypeRef) -> Ty {
        match ty {
            TypeRef::Ref(inner) => Ty::from_typeref(inner),
            TypeRef::Tuple(elems) => Ty::Tuple(elems.iter().map(Ty::from_typeref).collect()),
            TypeRef::Unit => Ty::Unknown,
            TypeRef::Other => Ty::Unknown,
            TypeRef::Path { segs, args } => {
                let Some(last) = segs.last() else {
                    return Ty::Unknown;
                };
                if let Some(k) = UnitKind::from_name(last) {
                    return Ty::Unit(k);
                }
                match last.as_str() {
                    "u8" | "u16" | "u32" | "u64" | "u128" | "usize" | "i8" | "i16" | "i32"
                    | "i64" | "i128" | "isize" => Ty::RAW_INT,
                    "f32" | "f64" => Ty::Float,
                    "bool" => Ty::Bool,
                    _ => Ty::Named {
                        name: last.clone(),
                        args: args.iter().map(Ty::from_typeref).collect(),
                    },
                }
            }
        }
    }
}

/// Lexically scoped binding environment.
#[derive(Debug, Default)]
pub struct Env {
    scopes: Vec<BTreeMap<String, Ty>>,
}

impl Env {
    /// New environment with one root scope.
    pub fn new() -> Env {
        Env {
            scopes: vec![BTreeMap::new()],
        }
    }

    /// Enter a nested scope.
    pub fn push(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    /// Leave the innermost scope.
    pub fn pop(&mut self) {
        self.scopes.pop();
        debug_assert!(!self.scopes.is_empty(), "popped the root scope");
        if self.scopes.is_empty() {
            self.scopes.push(BTreeMap::new());
        }
    }

    /// Bind a name in the innermost scope.
    pub fn bind(&mut self, name: &str, ty: Ty) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), ty);
        }
    }

    /// Look a name up, innermost scope first.
    pub fn lookup(&self, name: &str) -> Ty {
        for scope in self.scopes.iter().rev() {
            if let Some(ty) = scope.get(name) {
                return ty.clone();
            }
        }
        Ty::Unknown
    }
}

/// Result type of a method call on `recv_ty`, consulting the workspace
/// symbol table first and falling back to a table of well-known std
/// methods. Returns [`Ty::Unknown`] rather than guessing.
pub fn method_ret(sym: &Symbols, recv_ty: &Ty, method: &str, args: &[Ty]) -> Ty {
    // Workspace inherent methods, with escape tainting: a workspace
    // method on a unit that returns a raw integer is an escape hatch.
    if let Some(tyname) = named_of(recv_ty) {
        if let Some(info) = sym.methods.get(&(tyname.to_string(), method.to_string())) {
            if info.has_self {
                let ret = Ty::from_typeref(&info.ret);
                return taint_escape(recv_ty, ret);
            }
        }
    }
    match recv_ty {
        Ty::Int { from } => match method {
            "saturating_add" | "saturating_sub" | "saturating_mul" | "wrapping_add"
            | "wrapping_sub" | "wrapping_mul" | "pow" | "saturating_pow" | "div_ceil"
            | "next_multiple_of" | "abs_diff" | "rotate_left" | "rotate_right"
            | "leading_zeros" | "trailing_zeros" | "count_ones" | "isqrt" => {
                Ty::Int { from: *from }
            }
            "min" | "max" | "clamp" => Ty::Int {
                from: from.or_else(|| args.iter().find_map(Ty::taint)),
            },
            "checked_add" | "checked_sub" | "checked_mul" | "checked_div" | "checked_rem" => {
                Ty::Named {
                    name: "Option".to_string(),
                    args: vec![Ty::Int { from: *from }],
                }
            }
            _ => Ty::Unknown,
        },
        Ty::Unit(k) => match method {
            // Std-derived comparisons/orderings on units keep the unit.
            "min" | "max" | "clamp" => Ty::Unit(*k),
            _ => Ty::Unknown,
        },
        Ty::Float => match method {
            "round" | "floor" | "ceil" | "trunc" | "abs" | "sqrt" | "powi" | "powf" | "min"
            | "max" | "clamp" | "mul_add" | "ln" | "log2" | "log10" | "exp" => Ty::Float,
            _ => Ty::Unknown,
        },
        Ty::Named { name, args: targs } if name == "Option" || name == "Result" => match method {
            "unwrap" | "expect" | "unwrap_or_default" => {
                targs.first().cloned().unwrap_or(Ty::Unknown)
            }
            "unwrap_or" => args
                .first()
                .cloned()
                .or_else(|| targs.first().cloned())
                .unwrap_or(Ty::Unknown),
            "unwrap_or_else" => targs.first().cloned().unwrap_or(Ty::Unknown),
            _ => Ty::Unknown,
        },
        _ => Ty::Unknown,
    }
}

/// When a workspace method on a unit returns a raw integer, mark the
/// result as escaped from that unit (`t.as_u64()` → tainted u64).
fn taint_escape(recv_ty: &Ty, ret: Ty) -> Ty {
    match (recv_ty, &ret) {
        (Ty::Unit(k), Ty::Int { from: None }) => Ty::Int { from: Some(*k) },
        _ => ret,
    }
}

/// The bare type name behind a [`Ty`], when it has one.
pub fn named_of(ty: &Ty) -> Option<&str> {
    match ty {
        Ty::Unit(k) => Some(k.name()),
        Ty::Named { name, .. } => Some(name),
        _ => None,
    }
}

/// Element type yielded by iterating a container type.
pub fn elem_of(ty: &Ty) -> Ty {
    match ty {
        Ty::Named { name, args }
            if matches!(
                name.as_str(),
                "Vec" | "VecDeque" | "BinaryHeap" | "Option" | "BTreeSet" | "HashSet" | "Box"
            ) =>
        {
            args.first().cloned().unwrap_or(Ty::Unknown)
        }
        _ => Ty::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typeref_mapping() {
        assert_eq!(
            Ty::from_typeref(&TypeRef::name("Nanos")),
            Ty::Unit(UnitKind::Nanos)
        );
        assert_eq!(Ty::from_typeref(&TypeRef::name("u64")), Ty::RAW_INT);
        assert_eq!(Ty::from_typeref(&TypeRef::name("f64")), Ty::Float);
        assert_eq!(
            Ty::from_typeref(&TypeRef::Ref(Box::new(TypeRef::name("Bytes")))),
            Ty::Unit(UnitKind::Bytes)
        );
        let vec_nanos = TypeRef::Path {
            segs: vec!["Vec".into()],
            args: vec![TypeRef::name("Nanos")],
        };
        assert_eq!(
            elem_of(&Ty::from_typeref(&vec_nanos)),
            Ty::Unit(UnitKind::Nanos)
        );
    }

    #[test]
    fn env_scoping() {
        let mut env = Env::new();
        env.bind("t", Ty::Unit(UnitKind::Nanos));
        env.push();
        env.bind("t", Ty::RAW_INT);
        assert_eq!(env.lookup("t"), Ty::RAW_INT);
        env.pop();
        assert_eq!(env.lookup("t"), Ty::Unit(UnitKind::Nanos));
        assert_eq!(env.lookup("missing"), Ty::Unknown);
    }

    #[test]
    fn std_method_table() {
        let sym = Symbols::default();
        assert_eq!(
            method_ret(
                &sym,
                &Ty::Int {
                    from: Some(UnitKind::Nanos)
                },
                "saturating_add",
                &[]
            ),
            Ty::Int {
                from: Some(UnitKind::Nanos)
            }
        );
        let opt = Ty::Named {
            name: "Option".into(),
            args: vec![Ty::Unit(UnitKind::Bytes)],
        };
        assert_eq!(
            method_ret(&sym, &opt, "unwrap", &[]),
            Ty::Unit(UnitKind::Bytes)
        );
    }
}
