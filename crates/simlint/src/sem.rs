//! Semantic rule checkers: the U (unit safety), O (overflow policy) and
//! E (exhaustiveness) families.
//!
//! [`check_file`] walks one parsed file with a scoped type environment
//! (see [`crate::infer`]) and the workspace symbol table, emitting raw
//! findings — suppression and the S-family staleness pass are applied by
//! the pipeline in `lib.rs`, which sees all files.
//!
//! Every check fires only on a *positively identified* type: anything
//! the walker cannot prove degrades to `Ty::Unknown`, which no rule
//! matches, so incomplete inference produces silence, never noise.

use crate::ast::{Arm, BinOp, Block, Expr, ExprKind, File, FnItem, Item, Lit, Pat, Stmt, TypeRef};
use crate::callgraph::{
    AllocKind, AllocSite, ByvalParam, CallRef, CollectIter, FileFacts, FloatAccum, FnFacts, FnKey,
    StaticItem, StreamArg, UnstableIter,
};
use crate::infer::{elem_of, method_ret, named_of, Env, Ty};
use crate::lex::Span;
use crate::sym::{Symbols, UnitKind};
use crate::{find_ident, scope_of, Finding, Fix, Rule, Scope};

/// Iteration methods whose visit order follows the container's.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Methods that canonicalize an ordering and clear instability taint.
const SORT_METHODS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Method names that schedule events regardless of receiver type.
const SCHED_METHODS: [&str; 4] = ["schedule", "schedule_at", "schedule_in", "push_at"];

/// Metrics-registry sink methods.
const METRIC_METHODS: [&str; 5] = [
    "counter_add",
    "counter_set",
    "histogram_record",
    "histogram_record_f64",
    "absorb",
];

/// Byte-offset → (line, col) mapping for one source file.
#[derive(Debug)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Build the index from source text.
    pub fn new(src: &str) -> LineIndex {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, pos: usize) -> (usize, usize) {
        let line = match self.starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, pos - self.starts[line] + 1)
    }
}

/// Run the U/O/E checkers over one parsed file.
pub fn check_file(file: &File, src: &str, sym: &Symbols) -> Vec<Finding> {
    check_file_collect(file, src, sym).0
}

/// Run the semantic checkers and, in the same walk, collect the
/// per-function facts the interprocedural pass consumes.
pub fn check_file_collect(file: &File, src: &str, sym: &Symbols) -> (Vec<Finding>, FileFacts) {
    let norm = file.path.replace('\\', "/");
    let file_name = norm.rsplit('/').next().unwrap_or("").to_string();
    let mut chk = Checker {
        path: file.path.clone(),
        src,
        sym,
        index: LineIndex::new(src),
        env: Env::new(),
        findings: Vec::new(),
        in_test: false,
        sim: scope_of(&file.path) == Scope::Sim,
        unit_def_file: matches!(file_name.as_str(), "units.rs" | "time.rs"),
        test_path: norm.contains("/tests/")
            || norm.starts_with("tests/")
            || norm.contains("/examples/")
            || norm.starts_with("examples/")
            || norm.contains("/benches/"),
        o1_zone: norm.contains("dcsim/") || norm.contains("netsim/"),
        facts: FileFacts::default(),
        fn_stack: Vec::new(),
        loop_stack: Vec::new(),
        hash_decls: Vec::new(),
        vec_decls: Vec::new(),
    };
    chk.bind_consts(&file.items);
    chk.walk_items(&file.items, None, false);
    (chk.findings, chk.facts)
}

/// Loop context for P5: is the iteration head order-unstable, and which
/// calls does it make? For the A1 reserve fix, `head_binding` records the
/// sized local the loop iterates (looking through `&` and iter methods).
struct LoopFrame {
    head_unstable: bool,
    head_calls: Vec<usize>,
    head_binding: Option<String>,
}

struct Checker<'a> {
    path: String,
    src: &'a str,
    sym: &'a Symbols,
    index: LineIndex,
    env: Env,
    findings: Vec<Finding>,
    in_test: bool,
    sim: bool,
    unit_def_file: bool,
    test_path: bool,
    o1_zone: bool,
    facts: FileFacts,
    /// Indices into `facts.fns` of the enclosing (possibly nested) fns.
    fn_stack: Vec<usize>,
    loop_stack: Vec<LoopFrame>,
    /// Local `let` declarations with hash-container annotations:
    /// `(binding, decl line, container name)` — the P2 fix target.
    hash_decls: Vec<(String, usize, &'static str)>,
    /// Local `let xs = Vec::new()` declarations: `(binding, fn fact
    /// index, alloc-site index)` — the A1 reserve-insertion fix target.
    vec_decls: Vec<(String, usize, usize)>,
}

impl<'a> Checker<'a> {
    // ----- rule scoping ---------------------------------------------------

    /// U1/U2 apply: sim code outside the unit-definition files.
    fn u_on(&self) -> bool {
        self.sim && !self.unit_def_file
    }

    /// U3 additionally exempts tests/examples and `#[cfg(test)]` code.
    fn u3_on(&self) -> bool {
        self.u_on() && !self.test_path && !self.in_test
    }

    /// O1 applies in the dcsim/netsim hot paths, non-test only.
    fn o1_on(&self) -> bool {
        self.o1_zone && !self.test_path && !self.in_test
    }

    /// Inside `units.rs`/`time.rs` *all* integer `+`/`*` counts for O1
    /// (that is where the unit impls themselves live).
    fn o1_all(&self) -> bool {
        self.unit_def_file
    }

    /// E1 applies in sim code outside tests.
    fn e1_on(&self) -> bool {
        self.sim && !self.in_test
    }

    /// The local P-rule (P4) applies in sim code outside tests/examples.
    fn p_on(&self) -> bool {
        self.sim && !self.in_test && !self.test_path
    }

    // ----- helpers --------------------------------------------------------

    fn src_of(&self, span: Span) -> &str {
        self.src.get(span.lo..span.hi).unwrap_or("")
    }

    fn push(&mut self, rule: Rule, span: Span, message: String, fix: Option<Fix>) {
        let (line, col) = self.index.line_col(span.lo);
        self.findings.push(Finding {
            path: self.path.clone(),
            line,
            col,
            rule,
            message,
            fix,
        });
    }

    /// Whether `e` can take a postfix `.method(..)` without parentheses.
    fn postfix_safe(e: &Expr) -> bool {
        matches!(
            e.kind,
            ExprKind::Path(_)
                | ExprKind::Lit(_)
                | ExprKind::Field { .. }
                | ExprKind::MethodCall { .. }
                | ExprKind::Call { .. }
                | ExprKind::Paren(_)
                | ExprKind::Index { .. }
                | ExprKind::Try(_)
                | ExprKind::MacroCall { .. }
        )
    }

    fn wrapped(&self, e: &Expr) -> String {
        let text = self.src_of(e.span);
        if Self::postfix_safe(e) {
            text.to_string()
        } else {
            format!("({text})")
        }
    }

    // ----- declaration walk -----------------------------------------------

    /// Pre-bind module-level consts so expressions can resolve them.
    fn bind_consts(&mut self, items: &[Item]) {
        for item in items {
            match item {
                Item::Const { name, ty, .. } => {
                    self.env.bind(name, Ty::from_typeref(ty));
                }
                Item::Mod { items, .. } => self.bind_consts(items),
                _ => {}
            }
        }
    }

    fn walk_items(&mut self, items: &[Item], self_ty: Option<&Ty>, in_test: bool) {
        for item in items {
            match item {
                Item::Fn(f) => self.walk_fn(f, self_ty, in_test),
                Item::Impl {
                    self_ty: st,
                    items,
                    cfg_test,
                    ..
                } => {
                    let ty = Ty::from_typeref(st);
                    self.walk_items(items, Some(&ty), in_test || *cfg_test);
                }
                Item::Mod {
                    cfg_test, items, ..
                } => self.walk_items(items, None, in_test || *cfg_test),
                Item::Trait { name, items } => {
                    // Default trait methods are owned by the trait, so
                    // dispatch through the trait name resolves to them.
                    let ty = Ty::Named {
                        name: name.clone(),
                        args: Vec::new(),
                    };
                    self.walk_items(items, Some(&ty), in_test);
                }
                Item::Const {
                    name,
                    ty,
                    init,
                    is_static,
                    is_mut,
                    line,
                } => {
                    if *is_static {
                        self.facts.statics.push(StaticItem {
                            name: name.clone(),
                            path: self.path.clone(),
                            line: *line,
                            is_mut: *is_mut,
                            interior: type_has_interior_mutability(ty),
                            is_test: in_test || self.test_path,
                        });
                    }
                    if let Some(e) = init {
                        let saved = self.in_test;
                        self.in_test = in_test;
                        self.expr_ty(e);
                        self.in_test = saved;
                    }
                }
                _ => {}
            }
        }
    }

    fn walk_fn(&mut self, f: &FnItem, self_ty: Option<&Ty>, in_test: bool) {
        let owner = self_ty.and_then(named_of).map(|s| s.to_string());
        let fact_idx = self.facts.fns.len();
        // A4 raw material: workspace-struct/enum parameters taken by
        // value whose estimated size exceeds a cache line.
        let mut byval_params = Vec::new();
        for (pat, ty) in &f.params {
            let TypeRef::Path { segs, .. } = ty else {
                continue;
            };
            let Some(tn) = segs.last() else { continue };
            if !self.sym.structs.contains_key(tn) && !self.sym.enums.contains_key(tn) {
                continue;
            }
            let est = self.sym.est_size(ty, 0);
            if est <= crate::cost::BYVAL_LIMIT {
                continue;
            }
            if let Some(name) = pat.as_binding() {
                byval_params.push(ByvalParam {
                    name: name.to_string(),
                    ty: tn.clone(),
                    est_bytes: est,
                });
            }
        }
        self.facts.fns.push(FnFacts {
            key: FnKey {
                owner,
                name: f.name.clone(),
            },
            path: self.path.clone(),
            line: f.line,
            is_test: in_test || f.cfg_test || self.test_path,
            byval_params,
            ..FnFacts::default()
        });
        let Some(body) = &f.body else { return };
        self.fn_stack.push(fact_idx);
        let decl_mark = self.hash_decls.len();
        let vec_mark = self.vec_decls.len();
        let saved = self.in_test;
        self.in_test = in_test || f.cfg_test;
        self.env.push();
        if f.self_param.is_some() {
            if let Some(ty) = self_ty {
                self.env.bind("self", ty.clone());
            }
        }
        for (pat, ty) in &f.params {
            let t = Ty::from_typeref(ty);
            self.bind_pat(pat, &t);
        }
        self.block_ty(body);
        self.env.pop();
        self.in_test = saved;
        self.hash_decls.truncate(decl_mark);
        self.vec_decls.truncate(vec_mark);
        self.fn_stack.pop();
    }

    // ----- interprocedural fact recording ---------------------------------

    /// The facts record of the innermost enclosing function, if any.
    fn fact(&mut self) -> Option<&mut FnFacts> {
        let &i = self.fn_stack.last()?;
        self.facts.fns.get_mut(i)
    }

    /// Current lengths of the fact vectors the loop/fold hooks diff.
    fn fact_marks(&mut self) -> (usize, usize) {
        match self.fact() {
            Some(f) => (f.unstable_iters.len(), f.calls.len()),
            None => (0, 0),
        }
    }

    /// The simple binding name an iteration receiver refers to, looking
    /// through `&`/parens.
    fn binding_of(e: &Expr) -> Option<&str> {
        match &e.kind {
            ExprKind::Path(segs) if segs.len() == 1 => Some(&segs[0]),
            ExprKind::Unary(inner) | ExprKind::Paren(inner) => Self::binding_of(inner),
            _ => None,
        }
    }

    /// Build the mechanical container-swap fix for an iteration over a
    /// local whose annotated `let` declares a hash container.
    fn hash_swap_fix(&self, binding: Option<&str>) -> Option<Fix> {
        let name = binding?;
        let &(_, line, container) = self.hash_decls.iter().rev().find(|(n, _, _)| n == name)?;
        let lo = *self.index.starts.get(line.saturating_sub(1))?;
        let hi = self
            .index
            .starts
            .get(line)
            .map(|n| n.saturating_sub(1))
            .unwrap_or(self.src.len());
        let text = self.src.get(lo..hi)?;
        let replacement_for = |c: &str| match c {
            "HashMap" => "BTreeMap",
            _ => "BTreeSet",
        };
        let mut out = String::with_capacity(text.len() + 8);
        let mut rest = text;
        let mut changed = false;
        while let Some(at) = find_ident(rest, container) {
            out.push_str(&rest[..at]);
            out.push_str(replacement_for(container));
            rest = &rest[at + container.len()..];
            changed = true;
        }
        out.push_str(rest);
        changed.then_some(Fix {
            span: Span { lo, hi },
            replacement: out,
        })
    }

    /// Record an order-unstable iteration site.
    fn note_unstable_iter(&mut self, container: &'static str, recv: Option<&Expr>, e: &Expr) {
        let fix = self.hash_swap_fix(recv.and_then(Self::binding_of));
        let site = UnstableIter {
            line: e.line,
            span: e.span,
            container,
            fix,
        };
        if let Some(f) = self.fact() {
            f.unstable_iters.push(site);
        }
    }

    /// Record a heap-allocation site for the A1 hot-path pass. Loop
    /// context is captured here because only the local walk knows it.
    fn note_alloc(&mut self, kind: AllocKind, what: String, e: &Expr) {
        let site = AllocSite {
            line: e.line,
            span: e.span,
            kind,
            what,
            in_loop: !self.loop_stack.is_empty(),
            fix: None,
        };
        if let Some(f) = self.fact() {
            f.alloc_sites.push(site);
        }
    }

    /// Record everything the interprocedural pass wants to know about a
    /// method call, and run the local P4 check.
    fn note_method_call(
        &mut self,
        recv: &Expr,
        name: &str,
        args: &[Expr],
        rt: &Ty,
        ats: &[Ty],
        e: &Expr,
    ) {
        let owner = named_of(rt).map(|s| s.to_string());
        let call = CallRef {
            owner,
            name: name.to_string(),
            via_method: true,
            line: e.line,
            span: e.span,
        };
        if let Some(f) = self.fact() {
            f.calls.push(call);
        }

        if name == "stream" && args.len() == 1 {
            let arg = match &args[0].kind {
                ExprKind::Lit(l @ Lit::Int(_)) => l
                    .int_value()
                    .map(StreamArg::Num)
                    .unwrap_or(StreamArg::Other),
                ExprKind::Path(segs) => match segs.last() {
                    Some(last) if is_screaming_case(last) => StreamArg::Named(last.clone()),
                    _ => StreamArg::Other,
                },
                _ => StreamArg::Other,
            };
            let line = e.line;
            let span = e.span;
            if let Some(f) = self.fact() {
                f.stream_calls.push((arg, line, span));
            }
        }

        let recv_name = named_of(rt);
        if ITER_METHODS.contains(&name) {
            if let Some(container @ ("HashMap" | "HashSet")) = recv_name {
                let container: &'static str = if container == "HashMap" {
                    "HashMap"
                } else {
                    "HashSet"
                };
                self.note_unstable_iter(container, Some(recv), e);
            }
        }

        if SORT_METHODS.contains(&name) {
            if let Some(f) = self.fact() {
                f.sorts = true;
            }
        }

        let is_sched = SCHED_METHODS.contains(&name)
            || (name == "push"
                && (matches!(recv_name, Some("EventQueue" | "TimingWheel"))
                    || matches!(ats.first(), Some(Ty::Unit(UnitKind::Nanos)))));
        if is_sched {
            let line = e.line;
            let span = e.span;
            if let Some(f) = self.fact() {
                f.sched_sinks.push((line, span));
            }
        }

        let is_metric = METRIC_METHODS.contains(&name)
            || (name == "record" && matches!(recv_name, Some("LogHistogram" | "MetricsRegistry")));
        if is_metric {
            let line = e.line;
            let span = e.span;
            if let Some(f) = self.fact() {
                f.metric_sinks.push((line, span));
            }
        }

        // A-family raw material: reserve knowledge, allocation sites, and
        // collect-then-iterate chains. Loop context is captured in the site.
        if matches!(name, "reserve" | "reserve_exact") {
            if let Some(f) = self.fact() {
                f.reserves = true;
            }
        }
        let recv_binding = Self::binding_of(recv).map(|s| s.to_string());
        let is_growth_push = matches!(name, "push" | "push_back" | "push_front")
            && !is_sched
            && recv_name != Some("BinaryHeap")
            && (matches!(recv_name, Some("Vec" | "VecDeque"))
                || recv_binding
                    .as_deref()
                    .is_some_and(|b| self.vec_decls.iter().any(|(n, _, _)| n == b)));
        if is_growth_push {
            self.note_alloc(
                AllocKind::VecPush,
                format!("`.{name}` growing an unreserved buffer"),
                e,
            );
            // Mechanical fix: when the loop head iterates a *different*
            // sized local, rewrite the buffer's `Vec::new()` declaration to
            // `Vec::with_capacity(head.len())`. Attached to the decl-site
            // alloc record so the finding that owns the span carries it.
            let head = self
                .loop_stack
                .last()
                .and_then(|l| l.head_binding.clone())
                .filter(|h| Some(h.as_str()) != recv_binding.as_deref());
            if let (Some(h), Some(b)) = (head, recv_binding.as_deref()) {
                if let Some(&(_, fn_idx, site_idx)) =
                    self.vec_decls.iter().rev().find(|(n, _, _)| n == b)
                {
                    if let Some(site) = self
                        .facts
                        .fns
                        .get_mut(fn_idx)
                        .and_then(|f| f.alloc_sites.get_mut(site_idx))
                    {
                        if site.fix.is_none() {
                            site.fix = Some(Fix {
                                span: site.span,
                                replacement: format!("Vec::with_capacity({h}.len())"),
                            });
                        }
                    }
                }
            }
        }
        if matches!(name, "to_string" | "to_owned") {
            self.note_alloc(
                AllocKind::StringAlloc,
                format!("`.{name}()` string allocation"),
                e,
            );
        }
        if name == "clone" && args.is_empty() {
            let heapy = match recv_name {
                Some(
                    n @ ("Vec" | "VecDeque" | "String" | "Box" | "Rc" | "Arc" | "BTreeMap"
                    | "BTreeSet" | "HashMap" | "HashSet" | "BinaryHeap"),
                ) => Some(n),
                Some(n) if self.sym.owns_heap(n) => Some(n),
                _ => None,
            };
            if let Some(n) = heapy {
                self.note_alloc(
                    AllocKind::CloneHeap,
                    format!("`.clone()` of heap-owning `{n}`"),
                    e,
                );
            }
        }
        if matches!(name, "into_iter" | "iter" | "iter_mut") {
            if let ExprKind::MethodCall {
                recv: inner,
                name: rn,
                ..
            } = &recv.kind
            {
                if rn == "collect" {
                    // Only `.collect::<Vec<_>>().into_iter()` can be deleted
                    // type-soundly (`.iter()` would change the element type).
                    let fix = (name == "into_iter").then(|| Fix {
                        span: Span {
                            lo: inner.span.hi,
                            hi: e.span.hi,
                        },
                        replacement: String::new(),
                    });
                    let method: &'static str = match name {
                        "into_iter" => "into_iter",
                        "iter" => "iter",
                        _ => "iter_mut",
                    };
                    let site = CollectIter {
                        line: e.line,
                        span: e.span,
                        method,
                        in_loop: !self.loop_stack.is_empty(),
                        fix,
                    };
                    if let Some(f) = self.fact() {
                        f.collect_iters.push(site);
                    }
                }
            }
        }

        // P4: pushing a bare-time key (or a `(time, payload)` pair with no
        // integer tiebreak) into a BinaryHeap — equal timestamps then pop
        // in arbitrary order.
        if self.p_on() && name == "push" && recv_name == Some("BinaryHeap") {
            if let Some(first) = ats.first() {
                if let Some(msg) = p4_key_problem(first) {
                    self.push(
                        Rule::P4,
                        e.span,
                        format!(
                            "{msg}; equal timestamps then pop in arbitrary order — key \
                             the heap by `(time, seq)` with a monotonic sequence number \
                             (see dcsim::EventQueue)"
                        ),
                        None,
                    );
                }
            }
        }
    }

    /// Record free / qualified-path calls (`helper(..)`, `DetRng::new(..)`)
    /// as call edges and RNG-construction sites.
    fn note_path_call(&mut self, callee: &Expr, e: &Expr) {
        let ExprKind::Path(segs) = &callee.kind else {
            return;
        };
        let Some(last) = segs.last() else { return };
        // Uppercase heads are constructors / enum variants, not functions.
        if !last
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
        {
            return;
        }
        let owner = (segs.len() >= 2).then(|| segs[segs.len() - 2].clone());
        match (owner.as_deref(), last.as_str()) {
            (Some("Box"), "new") => {
                self.note_alloc(AllocKind::BoxNew, "`Box::new` heap allocation".into(), e)
            }
            (Some("Vec" | "VecDeque"), "new") => self.note_alloc(
                AllocKind::VecGrowth,
                format!("`{}::new` unreserved buffer", segs[segs.len() - 2]),
                e,
            ),
            (Some("String"), "new" | "from") => self.note_alloc(
                AllocKind::StringAlloc,
                format!("`String::{last}` allocation"),
                e,
            ),
            (_, "with_capacity") => {
                if let Some(f) = self.fact() {
                    f.reserves = true;
                }
            }
            _ => {}
        }
        let is_rng_new = owner.as_deref() == Some("DetRng") && last == "new";
        let call = CallRef {
            owner,
            name: last.clone(),
            via_method: false,
            line: e.line,
            span: e.span,
        };
        if let Some(f) = self.fact() {
            if is_rng_new {
                f.rng_news.push((call.line, call.span));
            }
            f.calls.push(call);
        }
    }

    /// P4 on the declaration side (`let q: BinaryHeap<Nanos> = ..`) plus
    /// bookkeeping of hash-container `let`s for the P2 container-swap fix.
    fn check_let_annotation(&mut self, pat: &Pat, ann: &TypeRef, init: Option<&Expr>) {
        let TypeRef::Path { segs, args } = ann else {
            return;
        };
        let Some(last) = segs.last().map(|s| s.as_str()) else {
            return;
        };

        if matches!(last, "HashMap" | "HashSet") {
            if let (Pat::Path(psegs), Some(init)) = (pat, init) {
                if psegs.len() == 1 {
                    let container: &'static str = if last == "HashMap" {
                        "HashMap"
                    } else {
                        "HashSet"
                    };
                    self.hash_decls
                        .push((psegs[0].clone(), init.line, container));
                }
            }
        }

        if !self.p_on() || last != "BinaryHeap" {
            return;
        }
        let Some(key) = args.first().map(Ty::from_typeref) else {
            return;
        };
        let (msg, fixable) = match &key {
            Ty::Unit(UnitKind::Nanos) => (
                "BinaryHeap keyed by bare Nanos has no pop order for equal timestamps",
                false,
            ),
            Ty::Tuple(ts)
                if matches!(ts.first(), Some(Ty::Unit(UnitKind::Nanos)))
                    && ts.len() >= 2
                    && !matches!(ts.get(1), Some(Ty::Int { .. })) =>
            {
                (
                    "BinaryHeap keyed by `(Nanos, payload)` breaks ties by comparing \
                     payloads, not by arrival order",
                    true,
                )
            }
            _ => return,
        };
        // Mechanical fix: widen the key to `(Nanos, u64, ..)` so callers get
        // a slot for a monotonic sequence number.
        let fix = fixable
            .then(|| {
                let line = init.map(|i| i.line)?;
                let lo = *self.index.starts.get(line.saturating_sub(1))?;
                let hi = self
                    .index
                    .starts
                    .get(line)
                    .map(|n| n.saturating_sub(1))
                    .unwrap_or(self.src.len());
                let text = self.src.get(lo..hi)?;
                let at = text.find("(Nanos,")?;
                let insert_at = lo + at + "(Nanos,".len();
                Some(Fix {
                    span: Span {
                        lo: insert_at,
                        hi: insert_at,
                    },
                    replacement: " u64,".to_string(),
                })
            })
            .flatten();
        let span = init.map(|i| i.span).unwrap_or(Span { lo: 0, hi: 0 });
        self.push(
            Rule::P4,
            span,
            format!(
                "{msg}; key the heap by `(time, seq)` with a monotonic sequence \
                 number (see dcsim::EventQueue)"
            ),
            fix,
        );
    }

    // ----- bindings -------------------------------------------------------

    fn bind_pat(&mut self, pat: &Pat, ty: &Ty) {
        match pat {
            Pat::Path(segs) if segs.len() == 1 => {
                let name = &segs[0];
                if name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                {
                    self.env.bind(name, ty.clone());
                }
            }
            Pat::TupleStruct { path, elems } => {
                let last = path.last().map(|s| s.as_str()).unwrap_or("");
                if let (Some(k), 1) = (UnitKind::from_name(last), elems.len()) {
                    self.bind_pat(&elems[0], &Ty::Int { from: Some(k) });
                } else if matches!(last, "Some" | "Ok") && elems.len() == 1 {
                    let inner = match ty {
                        Ty::Named { name, args } if name == "Option" || name == "Result" => {
                            args.first().cloned().unwrap_or(Ty::Unknown)
                        }
                        _ => Ty::Unknown,
                    };
                    self.bind_pat(&elems[0], &inner);
                } else if let Some(info) = self.sym.structs.get(last) {
                    let fields = info.tuple_fields.clone();
                    for (i, elem) in elems.iter().enumerate() {
                        let t = fields.get(i).map(Ty::from_typeref).unwrap_or(Ty::Unknown);
                        self.bind_pat(elem, &t);
                    }
                } else {
                    // Unknown payloads still shadow outer bindings.
                    for elem in elems {
                        self.bind_pat(elem, &Ty::Unknown);
                    }
                }
            }
            Pat::Tuple(elems) => {
                if let Ty::Tuple(ts) = ty {
                    for (i, elem) in elems.iter().enumerate() {
                        let t = ts.get(i).cloned().unwrap_or(Ty::Unknown);
                        self.bind_pat(elem, &t);
                    }
                } else {
                    for elem in elems {
                        self.bind_pat(elem, &Ty::Unknown);
                    }
                }
            }
            Pat::Or(ps) => {
                for p in ps {
                    self.bind_pat(p, ty);
                }
            }
            _ => {}
        }
    }

    // ----- expressions ----------------------------------------------------

    fn block_ty(&mut self, block: &Block) -> Ty {
        self.env.push();
        let mut last = Ty::Unknown;
        for stmt in &block.stmts {
            last = Ty::Unknown;
            match stmt {
                Stmt::Let { pat, ty, init } => {
                    let ity = init.as_ref().map(|e| self.expr_ty(e));
                    // Track `let xs = Vec::new()` so a later `.push` in a
                    // loop can target this decl with a `with_capacity` fix.
                    if let (Some(init), Some(binding)) = (init.as_ref(), pat.as_binding()) {
                        if let ExprKind::Call { callee, .. } = &init.kind {
                            if let ExprKind::Path(segs) = &callee.kind {
                                if segs.len() >= 2
                                    && segs[segs.len() - 2] == "Vec"
                                    && segs[segs.len() - 1] == "new"
                                {
                                    let binding = binding.to_string();
                                    if let Some(&fn_idx) = self.fn_stack.last() {
                                        if let Some(site_idx) = self
                                            .facts
                                            .fns
                                            .get(fn_idx)
                                            .map(|f| f.alloc_sites.len())
                                            .filter(|n| *n > 0)
                                            .map(|n| n - 1)
                                        {
                                            self.vec_decls.push((binding, fn_idx, site_idx));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if let Some(ann) = ty {
                        self.check_let_annotation(pat, ann, init.as_ref());
                    }
                    let t = ty
                        .as_ref()
                        .map(Ty::from_typeref)
                        .or(ity)
                        .unwrap_or(Ty::Unknown);
                    self.bind_pat(pat, &t);
                }
                Stmt::Expr(e) => last = self.expr_ty(e),
                Stmt::Item(item) => {
                    self.walk_items(std::slice::from_ref(item), None, self.in_test);
                }
            }
        }
        self.env.pop();
        last
    }

    fn expr_ty(&mut self, e: &Expr) -> Ty {
        match &e.kind {
            ExprKind::Lit(l) => match l {
                Lit::Int(_) => Ty::RAW_INT,
                Lit::Float => Ty::Float,
                Lit::Bool(_) => Ty::Bool,
                _ => Ty::Unknown,
            },
            ExprKind::Path(segs) => {
                if let Some(last) = segs.last() {
                    if is_screaming_case(last) {
                        let name = last.clone();
                        let line = e.line;
                        if let Some(f) = self.fact() {
                            f.caps_refs.push((name, line));
                        }
                    }
                }
                self.path_ty(segs)
            }
            ExprKind::Unary(inner) => self.expr_ty(inner),
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.expr_ty(lhs);
                let rt = self.expr_ty(rhs);
                self.arith_check(*op, None, lhs, rhs, &lt, &rt, e.span);
                match op {
                    BinOp::Cmp | BinOp::Logic => Ty::Bool,
                    BinOp::Range => Ty::Unknown,
                    BinOp::Bit => {
                        if lt.is_int() {
                            lt
                        } else {
                            Ty::Unknown
                        }
                    }
                    _ => Self::arith_result(&lt, &rt),
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let lt = self.expr_ty(lhs);
                let rt = self.expr_ty(rhs);
                if let Some(op) = op {
                    self.arith_check(*op, Some(lhs), lhs, rhs, &lt, &rt, e.span);
                    // `sum += x` on a float inside a loop is a reduction whose
                    // result depends on iteration order (P5 raw material).
                    if matches!(op, BinOp::Add) && matches!(lt, Ty::Float) {
                        if let Some(frame) = self.loop_stack.last() {
                            let accum = FloatAccum {
                                line: e.line,
                                span: e.span,
                                head_unstable: frame.head_unstable,
                                head_calls: frame.head_calls.clone(),
                            };
                            if let Some(f) = self.fact() {
                                f.float_accums.push(accum);
                            }
                        }
                    }
                }
                Ty::Unknown
            }
            ExprKind::Call { callee, args } => {
                self.note_path_call(callee, e);
                self.call_ty(callee, args, e)
            }
            ExprKind::MethodCall { recv, name, args } => {
                let (iters_before, calls_before) = self.fact_marks();
                let rt = self.expr_ty(recv);
                let (iters_after, calls_after) = self.fact_marks();
                let ats: Vec<Ty> = args.iter().map(|a| self.expr_ty(a)).collect();
                self.note_method_call(recv, name, args, &rt, &ats, e);
                // `.fold(0.0, ..)` over an order-unstable chain is a float
                // reduction in disguise (P5).
                if name == "fold"
                    && args.len() == 2
                    && matches!(&args[0].kind, ExprKind::Lit(Lit::Float))
                {
                    let accum = FloatAccum {
                        line: e.line,
                        span: e.span,
                        head_unstable: iters_after > iters_before,
                        head_calls: (calls_before..calls_after).collect(),
                    };
                    if let Some(f) = self.fact() {
                        f.float_accums.push(accum);
                    }
                }
                method_ret(self.sym, &rt, name, &ats)
            }
            ExprKind::Field {
                recv,
                name,
                access_span,
            } => self.field_ty(recv, name, *access_span),
            ExprKind::Cast { expr, ty } => {
                let et = self.expr_ty(expr);
                match Ty::from_typeref(ty) {
                    Ty::Int { .. } => Ty::Int { from: et.taint() },
                    other => other,
                }
            }
            ExprKind::Paren(inner) => self.expr_ty(inner),
            ExprKind::Tuple(es) => Ty::Tuple(es.iter().map(|x| self.expr_ty(x)).collect()),
            ExprKind::Array(es) => {
                for x in es {
                    self.expr_ty(x);
                }
                Ty::Unknown
            }
            ExprKind::Index { recv, idx } => {
                let rt = self.expr_ty(recv);
                self.expr_ty(idx);
                elem_of(&rt)
            }
            ExprKind::Block(b) => self.block_ty(b),
            ExprKind::If { cond, then, else_ } => {
                self.expr_ty(cond);
                self.block_ty(then);
                if let Some(e2) = else_ {
                    self.expr_ty(e2);
                }
                Ty::Unknown
            }
            ExprKind::Match { scrutinee, arms } => {
                let st = self.expr_ty(scrutinee);
                self.check_match(&st, arms);
                for arm in arms {
                    self.env.push();
                    self.bind_pat(&arm.pat, &st);
                    if let Some(g) = &arm.guard {
                        self.expr_ty(g);
                    }
                    self.expr_ty(&arm.body);
                    self.env.pop();
                }
                Ty::Unknown
            }
            ExprKind::Loop { pat, head, body } => {
                let (iters_before, calls_before) = self.fact_marks();
                let ht = head.as_ref().map(|h| self.expr_ty(h));
                // `for (k, v) in &map` iterates without an explicit `.iter()`
                // call; classify the head from its type.
                if let (Some(h), Some(Ty::Named { name, .. })) = (head.as_deref(), &ht) {
                    let container = match name.as_str() {
                        "HashMap" => Some("HashMap"),
                        "HashSet" => Some("HashSet"),
                        _ => None,
                    };
                    if let Some(c) = container {
                        self.note_unstable_iter(c, Some(h), h);
                    }
                }
                // A3 on the loop head itself: `for x in xs.collect()` (any
                // IntoIterator works) — the materialized Vec is pure waste,
                // so deleting the `.collect::<..>()` suffix is type-sound.
                if let Some(h) = head.as_deref() {
                    if let ExprKind::MethodCall {
                        recv: inner,
                        name: hn,
                        ..
                    } = &h.kind
                    {
                        if hn == "collect" {
                            let site = CollectIter {
                                line: h.line,
                                span: h.span,
                                method: "for-loop head",
                                in_loop: !self.loop_stack.is_empty(),
                                fix: Some(Fix {
                                    span: Span {
                                        lo: inner.span.hi,
                                        hi: h.span.hi,
                                    },
                                    replacement: String::new(),
                                }),
                            };
                            if let Some(f) = self.fact() {
                                f.collect_iters.push(site);
                            }
                        }
                    }
                }
                let (iters_after, calls_after) = self.fact_marks();
                self.loop_stack.push(LoopFrame {
                    head_unstable: iters_after > iters_before,
                    head_calls: (calls_before..calls_after).collect(),
                    head_binding: head.as_deref().and_then(|h| {
                        let b = match &h.kind {
                            ExprKind::MethodCall { recv, name, .. }
                                if ITER_METHODS.contains(&name.as_str()) =>
                            {
                                Self::binding_of(recv)
                            }
                            _ => Self::binding_of(h),
                        };
                        b.map(|s| s.to_string())
                    }),
                });
                self.env.push();
                if let (Some(p), Some(h)) = (pat, &ht) {
                    let elem = elem_of(h);
                    self.bind_pat(p, &elem);
                }
                self.block_ty(body);
                self.env.pop();
                self.loop_stack.pop();
                Ty::Unknown
            }
            ExprKind::Closure { params, body } => {
                self.env.push();
                for (pat, ty) in params {
                    let t = ty.as_ref().map(Ty::from_typeref).unwrap_or(Ty::Unknown);
                    self.bind_pat(pat, &t);
                }
                self.expr_ty(body);
                self.env.pop();
                Ty::Unknown
            }
            ExprKind::StructLit { path, fields, rest } => {
                for (_, v) in fields {
                    if let Some(v) = v {
                        self.expr_ty(v);
                    }
                }
                if let Some(r) = rest {
                    self.expr_ty(r);
                }
                match path.last().map(|s| s.as_str()) {
                    Some(last) => match UnitKind::from_name(last) {
                        Some(k) => Ty::Unit(k),
                        None => Ty::Named {
                            name: last.to_string(),
                            args: Vec::new(),
                        },
                    },
                    None => Ty::Unknown,
                }
            }
            ExprKind::MacroCall { name, args } => {
                match name.as_str() {
                    "vec" => self.note_alloc(
                        AllocKind::VecGrowth,
                        "`vec![..]` heap allocation".into(),
                        e,
                    ),
                    "format" => self.note_alloc(
                        AllocKind::StringAlloc,
                        "`format!` string allocation".into(),
                        e,
                    ),
                    _ => {}
                }
                for a in args {
                    self.expr_ty(a);
                }
                Ty::Unknown
            }
            ExprKind::Jump(v) => {
                if let Some(v) = v {
                    self.expr_ty(v);
                }
                Ty::Unknown
            }
            ExprKind::Try(inner) => {
                let t = self.expr_ty(inner);
                match t {
                    Ty::Named { ref name, ref args } if name == "Option" || name == "Result" => {
                        args.first().cloned().unwrap_or(Ty::Unknown)
                    }
                    _ => Ty::Unknown,
                }
            }
            ExprKind::RangeLit { lo, hi } => {
                if let Some(l) = lo {
                    self.expr_ty(l);
                }
                if let Some(h) = hi {
                    self.expr_ty(h);
                }
                Ty::Unknown
            }
            ExprKind::Opaque => Ty::Unknown,
        }
    }

    fn path_ty(&mut self, segs: &[String]) -> Ty {
        match segs {
            [one] => {
                if one
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                {
                    self.env.lookup(one)
                } else if let Some(en) = self.sym.enum_of_variant(one) {
                    Ty::Named {
                        name: en.to_string(),
                        args: Vec::new(),
                    }
                } else {
                    self.env.lookup(one)
                }
            }
            [.., t, last] => {
                if let Some(ty) = self.sym.assoc_consts.get(&(t.clone(), last.clone())) {
                    return Ty::from_typeref(ty);
                }
                if let Some(info) = self.sym.enums.get(t) {
                    if info.variants.iter().any(|v| v == last) {
                        return Ty::Named {
                            name: t.clone(),
                            args: Vec::new(),
                        };
                    }
                }
                if matches!(
                    t.as_str(),
                    "u8" | "u16"
                        | "u32"
                        | "u64"
                        | "u128"
                        | "usize"
                        | "i8"
                        | "i16"
                        | "i32"
                        | "i64"
                        | "i128"
                        | "isize"
                ) {
                    return Ty::RAW_INT;
                }
                Ty::Unknown
            }
            _ => Ty::Unknown,
        }
    }

    fn call_ty(&mut self, callee: &Expr, args: &[Expr], whole: &Expr) -> Ty {
        let ats: Vec<Ty> = args.iter().map(|a| self.expr_ty(a)).collect();
        let ExprKind::Path(segs) = &callee.kind else {
            self.expr_ty(callee);
            return Ty::Unknown;
        };
        let last = segs.last().map(|s| s.as_str()).unwrap_or("");

        // Unit tuple-struct construction: `Nanos(80)`.
        if let Some(k) = UnitKind::from_name(last) {
            self.check_u3(k, segs, args, whole);
            return Ty::Unit(k);
        }

        // `Some(x)` / `Ok(x)` wrap their argument.
        if matches!(last, "Some" | "Ok") && ats.len() == 1 {
            let name = if last == "Some" { "Option" } else { "Result" };
            return Ty::Named {
                name: name.to_string(),
                args: vec![ats[0].clone()],
            };
        }

        if segs.len() >= 2 {
            let t = &segs[segs.len() - 2];
            // Associated function: `Nanos::from_micros(5)`.
            if let Some(info) = self.sym.methods.get(&(t.clone(), last.to_string())) {
                if !info.has_self {
                    return Ty::from_typeref(&info.ret);
                }
            }
            // Enum variant constructor: `Event::Arrival(f)`.
            if let Some(info) = self.sym.enums.get(t) {
                if info.variants.iter().any(|v| v == last) {
                    return Ty::Named {
                        name: t.clone(),
                        args: Vec::new(),
                    };
                }
            }
        } else {
            // Other tuple-struct constructors: `NodeId(3)`.
            if let Some(info) = self.sym.structs.get(last) {
                if !info.tuple_fields.is_empty() {
                    return Ty::Named {
                        name: last.to_string(),
                        args: Vec::new(),
                    };
                }
            }
            if let Some(Some(ret)) = self.sym.free_fns.get(last) {
                return Ty::from_typeref(ret);
            }
        }
        Ty::Unknown
    }

    fn field_ty(&mut self, recv: &Expr, name: &str, access_span: Span) -> Ty {
        let rt = self.expr_ty(recv);
        if name.bytes().all(|b| b.is_ascii_digit()) {
            let idx: usize = name.parse().unwrap_or(usize::MAX);
            return match rt {
                Ty::Unit(k) => {
                    if self.u_on() {
                        let fixable = self
                            .sym
                            .methods
                            .get(&(k.name().to_string(), "as_u64".to_string()))
                            .is_some_and(|m| m.has_self);
                        let fix = fixable.then(|| Fix {
                            span: access_span,
                            replacement: ".as_u64()".to_string(),
                        });
                        self.push(
                            Rule::U2,
                            access_span,
                            format!(
                                "`.0` escapes the {} newtype into an untyped u64; \
                                 use `.as_u64()` so the escape is named and auditable",
                                k.name()
                            ),
                            fix,
                        );
                    }
                    Ty::Int { from: Some(k) }
                }
                Ty::Named { name: n, .. } => self
                    .sym
                    .structs
                    .get(&n)
                    .and_then(|s| s.tuple_fields.get(idx))
                    .map(Ty::from_typeref)
                    .unwrap_or(Ty::Unknown),
                Ty::Tuple(ts) => ts.get(idx).cloned().unwrap_or(Ty::Unknown),
                _ => Ty::Unknown,
            };
        }
        match rt {
            Ty::Named { name: n, .. } => self
                .sym
                .structs
                .get(&n)
                .and_then(|s| s.fields.get(name))
                .map(Ty::from_typeref)
                .unwrap_or(Ty::Unknown),
            _ => Ty::Unknown,
        }
    }

    // ----- the rules ------------------------------------------------------

    /// U3: raw-literal unit construction outside `units.rs`/`time.rs`.
    fn check_u3(&mut self, k: UnitKind, segs: &[String], args: &[Expr], whole: &Expr) {
        if !self.u3_on() || args.len() != 1 {
            return;
        }
        let ExprKind::Lit(lit @ Lit::Int(_)) = &args[0].kind else {
            return;
        };
        let lit_text = self.src_of(args[0].span).to_string();
        let value = lit.int_value();
        // Preserve any path qualifier (`dcsim::Bytes(..)` must become
        // `dcsim::Bytes::ZERO`, not the possibly-unimported bare name).
        let qual = if segs.len() > 1 {
            format!("{}::", segs[..segs.len() - 1].join("::"))
        } else {
            String::new()
        };
        let replacement = format!("{qual}{}", self.unit_ctor(k, &lit_text, value));
        let message = format!(
            "raw literal construction `{}` bypasses the named unit \
             constructors; write `{}` instead",
            self.src_of(whole.span),
            replacement
        );
        self.push(
            Rule::U3,
            whole.span,
            message,
            Some(Fix {
                span: whole.span,
                replacement,
            }),
        );
    }

    /// The named constructor a raw unit literal should use.
    fn unit_ctor(&self, k: UnitKind, lit_text: &str, value: Option<u64>) -> String {
        let has_zero = self
            .sym
            .assoc_consts
            .contains_key(&(k.name().to_string(), "ZERO".to_string()));
        if value == Some(0) && has_zero {
            return format!("{}::ZERO", k.name());
        }
        match k {
            UnitKind::Nanos => format!("Nanos::from_ns({lit_text})"),
            UnitKind::Bytes => format!("Bytes::new({lit_text})"),
            UnitKind::BitRate => format!("BitRate::from_bps({lit_text})"),
        }
    }

    /// U1 (unit mixing) and O1 (overflow policy) on one binary/compound
    /// arithmetic operation. `assign_to` is the target of `op=` forms.
    #[allow(clippy::too_many_arguments)]
    fn arith_check(
        &mut self,
        op: BinOp,
        assign_to: Option<&Expr>,
        lhs: &Expr,
        rhs: &Expr,
        lt: &Ty,
        rt: &Ty,
        span: Span,
    ) {
        if !op.is_arith() {
            return;
        }
        let is_assign = assign_to.is_some();
        let trait_name = op.trait_name().map(|t| {
            if is_assign {
                format!("{t}Assign")
            } else {
                t.to_string()
            }
        });

        // U1: unit/raw mixing.
        if self.u_on() {
            let mix: Option<String> = match (lt, rt) {
                (Ty::Unit(a), Ty::Unit(b)) if a != b => Some(format!(
                    "`{}` {} `{}` mixes two different units",
                    a.name(),
                    op.describe(),
                    b.name()
                )),
                (Ty::Unit(a), Ty::Int { .. }) => {
                    let tn = trait_name.as_deref().unwrap_or("");
                    if self.sym.has_op_impl(tn, a.name(), true) {
                        None
                    } else {
                        Some(format!(
                            "`{}` {} raw integer has no `{}<u64>` impl; convert \
                             explicitly (named constructor or `.as_u64()`)",
                            a.name(),
                            op.describe(),
                            tn
                        ))
                    }
                }
                (Ty::Int { .. }, Ty::Unit(a)) => Some(format!(
                    "raw integer {} `{}` puts the unit on the wrong side; no \
                     such operator impl exists",
                    op.describe(),
                    a.name()
                )),
                (Ty::Int { from: Some(a) }, Ty::Int { from: Some(b) }) if a != b => Some(format!(
                    "mixes a u64 escaped from `{}` with one escaped from `{}`; \
                     convert to a single unit before doing arithmetic",
                    a.name(),
                    b.name()
                )),
                _ => None,
            };
            if let Some(msg) = mix {
                self.push(Rule::U1, span, msg, None);
            }
        }

        // O1: unchecked `+` / `*` / `+=` / `*=` on u64 quantities.
        if matches!(op, BinOp::Add | BinOp::Mul) && self.o1_on() {
            let both_int = lt.is_int() && rt.is_int();
            let tainted = lt.taint().is_some() || rt.taint().is_some();
            if both_int && (self.o1_all() || tainted) {
                let method = match op {
                    BinOp::Add => "saturating_add",
                    _ => "saturating_mul",
                };
                let rhs_src = self.src_of(rhs.span).to_string();
                let fix = if let Some(target) = assign_to {
                    let tgt = self.src_of(target.span).to_string();
                    Some(Fix {
                        span,
                        replacement: format!("{tgt} = {tgt}.{method}({rhs_src})"),
                    })
                } else {
                    Some(Fix {
                        span,
                        replacement: format!("{}.{method}({rhs_src})", self.wrapped(lhs)),
                    })
                };
                let what = lt
                    .taint()
                    .or(rt.taint())
                    .map(|k| format!("u64 {} quantity", k.name()))
                    .unwrap_or_else(|| "u64 quantity".to_string());
                self.push(
                    Rule::O1,
                    span,
                    format!(
                        "unchecked `{}{}` on a {} can overflow and corrupt the \
                         simulation silently; use `{}`/`checked_{}` or add a \
                         justified `simlint: allow(O1)`",
                        op.describe(),
                        if is_assign { "=" } else { "" },
                        what,
                        method,
                        match op {
                            BinOp::Add => "add",
                            _ => "mul",
                        },
                    ),
                    fix,
                );
            }
        }
    }

    fn arith_result(lt: &Ty, rt: &Ty) -> Ty {
        match (lt, rt) {
            (Ty::Unit(a), Ty::Unit(b)) if a == b => Ty::Unit(*a),
            (Ty::Unit(a), Ty::Int { .. }) | (Ty::Int { .. }, Ty::Unit(a)) => Ty::Unit(*a),
            (Ty::Int { from: a }, Ty::Int { from: b }) => Ty::Int { from: a.or(*b) },
            (Ty::Float, _) | (_, Ty::Float) => Ty::Float,
            _ => Ty::Unknown,
        }
    }

    /// E1: unguarded `_` arm in a match over a workspace enum.
    fn check_match(&mut self, st: &Ty, arms: &[Arm]) {
        if !self.e1_on() {
            return;
        }
        let mut target: Option<String> = None;
        if let Some(n) = named_of(st) {
            if self.sym.enums.contains_key(n) {
                target = Some(n.to_string());
            }
        }
        if target.is_none() {
            for arm in arms {
                if let Some(en) = self.variant_enum(&arm.pat) {
                    target = Some(en);
                    break;
                }
            }
        }
        let Some(en) = target else { return };
        let Some(info) = self.sym.enums.get(&en) else {
            return;
        };
        if info.cfg_test {
            return;
        }
        let variants = info.variants.join(", ");
        for arm in arms {
            if matches!(arm.pat, Pat::Wild) && arm.guard.is_none() {
                // Arms carry only a line; synthesize a span at column 1.
                let start = self.line_start(arm.line);
                self.push(
                    Rule::E1,
                    Span {
                        lo: start,
                        hi: start,
                    },
                    format!(
                        "wildcard `_` arm in a match over workspace enum `{en}` \
                         silently swallows future variants; enumerate them \
                         explicitly ({variants})"
                    ),
                    None,
                );
            }
        }
    }

    fn line_start(&self, line: usize) -> usize {
        self.index
            .starts
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(0)
    }

    /// The workspace enum a pattern's variant reference resolves to.
    fn variant_enum(&self, pat: &Pat) -> Option<String> {
        let from_path = |segs: &[String]| -> Option<String> {
            if segs.len() >= 2 {
                let t = &segs[segs.len() - 2];
                let last = &segs[segs.len() - 1];
                if self
                    .sym
                    .enums
                    .get(t)
                    .is_some_and(|i| i.variants.iter().any(|v| v == last))
                {
                    return Some(t.clone());
                }
                None
            } else if segs.len() == 1 && segs[0].chars().next().is_some_and(|c| c.is_uppercase()) {
                self.sym.enum_of_variant(&segs[0]).map(|s| s.to_string())
            } else {
                None
            }
        };
        match pat {
            Pat::Path(segs) => from_path(segs),
            Pat::TupleStruct { path, .. } => from_path(path),
            Pat::Struct { path } => from_path(path),
            Pat::Or(ps) | Pat::Tuple(ps) => ps.iter().find_map(|p| self.variant_enum(p)),
            _ => None,
        }
    }
}

// ----- free helpers for fact collection -----------------------------------

/// `SCREAMING_SNAKE_CASE` identifier: a likely named constant.
pub(crate) fn is_screaming_case(s: &str) -> bool {
    s.len() > 1
        && s.bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
        && s.bytes().any(|b| b.is_ascii_uppercase())
}

/// Whether a type mentions an interior-mutability cell (or an atomic)
/// anywhere in its structure.
pub(crate) fn type_has_interior_mutability(ty: &TypeRef) -> bool {
    match ty {
        TypeRef::Path { segs, args } => {
            segs.last().is_some_and(|s| {
                crate::flow::INTERIOR_CELLS.contains(&s.as_str()) || s.starts_with("Atomic")
            }) || args.iter().any(type_has_interior_mutability)
        }
        TypeRef::Ref(inner) => type_has_interior_mutability(inner),
        TypeRef::Tuple(ts) => ts.iter().any(type_has_interior_mutability),
        _ => false,
    }
}

/// Why a heap key type breaks deterministic tie-breaking, if it does.
fn p4_key_problem(ty: &Ty) -> Option<&'static str> {
    match ty {
        Ty::Unit(UnitKind::Nanos) => {
            Some("BinaryHeap keyed by bare Nanos has no pop order for equal timestamps")
        }
        Ty::Tuple(ts)
            if matches!(ts.first(), Some(Ty::Unit(UnitKind::Nanos)))
                && ts.len() >= 2
                && !matches!(ts.get(1), Some(Ty::Int { .. })) =>
        {
            Some(
                "BinaryHeap entry `(Nanos, payload)` breaks timestamp ties by comparing \
                 payloads, not by arrival order",
            )
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::sym::Symbols;

    /// A self-contained prelude defining the unit types the way the
    /// workspace does, so single-file tests exercise real resolution.
    const PRELUDE: &str = "\
pub struct Nanos(pub u64);
pub struct Bytes(pub u64);
pub struct BitRate(pub u64);
impl Nanos {
    pub const ZERO: Nanos = Nanos(0);
    pub fn as_u64(self) -> u64 { self.0 }
    pub fn from_ns(ns: u64) -> Nanos { Nanos(ns) }
}
impl Bytes {
    pub fn as_u64(self) -> u64 { self.0 }
    pub fn new(b: u64) -> Bytes { Bytes(b) }
}
impl Mul<u64> for Nanos { fn mul(self, rhs: u64) -> Nanos { Nanos(self.0 * rhs) } }
impl Add for Nanos { fn add(self, rhs: Nanos) -> Nanos { Nanos(self.0 + rhs.0) } }
";

    fn check(path: &str, body: &str) -> Vec<Finding> {
        // The prelude lives in `units.rs` exactly like the workspace's
        // real unit definitions, so it is exempt from U/O checks itself.
        let (pf, _) = parse_file("crates/dcsim/src/units.rs", PRELUDE).expect("prelude parses");
        let (bf, _) = parse_file(path, body).expect("test source parses");
        let files = [pf, bf];
        let sym = Symbols::build(&files);
        check_file(&files[1], body, &sym)
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        let mut r: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
        r.sort();
        r.dedup();
        r
    }

    #[test]
    fn u1_flags_unit_plus_raw_int() {
        let f = check(
            "crates/dcsim/src/engine.rs",
            "fn f(t: Nanos) -> Nanos { t + 5 }\n",
        );
        assert_eq!(rules_of(&f), vec![Rule::U1]);
    }

    #[test]
    fn u1_allows_impl_backed_scalar_ops() {
        // `Nanos * u64` exists (`impl Mul<u64> for Nanos`), `Nanos + Nanos` too.
        let f = check(
            "crates/dcsim/src/engine.rs",
            "fn f(t: Nanos, n: u64) -> Nanos { t * n + t }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn u1_flags_cross_unit_taint() {
        let f = check(
            "crates/dcsim/src/engine.rs",
            "fn f(t: Nanos, b: Bytes) -> u64 { t.as_u64() + b.as_u64() }\n",
        );
        assert!(f.iter().any(|x| x.rule == Rule::U1), "{f:?}");
    }

    #[test]
    fn u2_flags_newtype_escape_with_fix() {
        let f = check(
            "crates/netsim/src/network.rs",
            "fn f(t: Nanos) -> u64 { t.0 }\n",
        );
        let u2: Vec<_> = f.iter().filter(|x| x.rule == Rule::U2).collect();
        assert_eq!(u2.len(), 1, "{f:?}");
        assert_eq!(
            u2[0].fix.as_ref().expect("has fix").replacement,
            ".as_u64()"
        );
    }

    #[test]
    fn u2_ignores_non_unit_tuple_fields() {
        let f = check(
            "crates/netsim/src/network.rs",
            "pub struct NodeId(pub u64);\nfn f(n: NodeId) -> u64 { n.0 }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn u3_flags_raw_literal_ctor_and_maps_zero() {
        let f = check(
            "crates/dcsim/src/engine.rs",
            "fn f() -> Nanos { Nanos(80) }\nfn g() -> Nanos { Nanos(0) }\n",
        );
        let u3: Vec<_> = f.iter().filter(|x| x.rule == Rule::U3).collect();
        assert_eq!(u3.len(), 2, "{f:?}");
        assert_eq!(
            u3[0].fix.as_ref().expect("fix").replacement,
            "Nanos::from_ns(80)"
        );
        assert_eq!(u3[1].fix.as_ref().expect("fix").replacement, "Nanos::ZERO");
    }

    #[test]
    fn u3_exempt_in_cfg_test() {
        let f = check(
            "crates/dcsim/src/engine.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() -> Nanos { Nanos(80) }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn o1_flags_tainted_add_with_fix() {
        let f = check(
            "crates/dcsim/src/wheel.rs",
            "fn f(t: Nanos, d: u64) -> u64 { t.as_u64() + d }\n",
        );
        let o1: Vec<_> = f.iter().filter(|x| x.rule == Rule::O1).collect();
        assert_eq!(o1.len(), 1, "{f:?}");
        assert_eq!(
            o1[0].fix.as_ref().expect("fix").replacement,
            "t.as_u64().saturating_add(d)"
        );
    }

    #[test]
    fn o1_ignores_untainted_counters_outside_unit_files() {
        let f = check(
            "crates/dcsim/src/wheel.rs",
            "fn f(i: u64) -> u64 { i + 1 }\n",
        );
        assert!(f.iter().all(|x| x.rule != Rule::O1), "{f:?}");
    }

    #[test]
    fn o1_compound_assign_fix() {
        let f = check(
            "crates/netsim/src/port.rs",
            "fn f(total: u64, t: Nanos) -> u64 { let mut x = total; x += t.as_u64(); x }\n",
        );
        let o1: Vec<_> = f.iter().filter(|x| x.rule == Rule::O1).collect();
        assert_eq!(o1.len(), 1, "{f:?}");
        assert_eq!(
            o1[0].fix.as_ref().expect("fix").replacement,
            "x = x.saturating_add(t.as_u64())"
        );
    }

    #[test]
    fn o1_not_outside_hot_zone() {
        let f = check(
            "crates/cc-hpcc/src/lib.rs",
            "fn f(t: Nanos, d: u64) -> u64 { t.as_u64() + d }\n",
        );
        assert!(f.iter().all(|x| x.rule != Rule::O1), "{f:?}");
    }

    #[test]
    fn e1_flags_wildcard_over_workspace_enum() {
        let f = check(
            "crates/dcsim/src/engine.rs",
            "pub enum SchedulerKind { Heap, Wheel }\n\
             fn f(k: SchedulerKind) -> u64 {\n\
                 match k { SchedulerKind::Heap => 1, _ => 0 }\n\
             }\n",
        );
        let e1: Vec<_> = f.iter().filter(|x| x.rule == Rule::E1).collect();
        assert_eq!(e1.len(), 1, "{f:?}");
        assert!(e1[0].message.contains("SchedulerKind"));
    }

    #[test]
    fn e1_ignores_option_and_guarded_wildcards() {
        let f = check(
            "crates/dcsim/src/engine.rs",
            "fn f(x: Option<u64>) -> u64 { match x { Some(v) => v, _ => 0 } }\n\
             pub enum K { A, B }\n\
             fn g(k: K, c: bool) -> u64 {\n\
                 match k { K::A => 1, K::B => 2, _ if c => 3 }\n\
             }\n",
        );
        assert!(f.iter().all(|x| x.rule != Rule::E1), "{f:?}");
    }

    #[test]
    fn shadowing_clears_unit_types() {
        // `t` rebound by a pattern must not keep its outer Nanos type.
        let f = check(
            "crates/dcsim/src/engine.rs",
            "fn f(t: Nanos, o: Option<u64>) -> u64 {\n\
                 match o { Some(t) => t + 1, None => 0 }\n\
             }\n",
        );
        assert!(f.iter().all(|x| x.rule != Rule::U1), "{f:?}");
    }
}
