//! Recursive-descent parser for the Rust subset the workspace uses.
//!
//! Design rules, in priority order:
//!
//! 1. **Never fail a file.** The only hard parse errors come from the
//!    lexer (unterminated literals) and from unbalanced delimiters; both
//!    are detected before item parsing starts. Everything else degrades:
//!    an unrecognized item becomes [`Item::Other`], an unrecognized
//!    expression becomes [`ExprKind::Opaque`], and the semantic rules are
//!    written to stay silent on what the parser could not shape.
//! 2. **Always make progress.** Every loop either consumes a token or
//!    breaks; top-level recovery force-bumps when a production consumed
//!    nothing.
//! 3. **Keep spans honest.** Expression spans cover the original source
//!    text exactly, because the autofixer splices replacements by span.

use crate::ast::*;
use crate::lex::{lex, LexError, Lexed, Span, TokKind, Token};

/// A file that could not be parsed at all (lexer or delimiter failure).
/// These map to the CLI's exit code 2.
#[derive(Debug, Clone)]
pub struct ParseFailure {
    /// Workspace-relative display path.
    pub path: String,
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: parse error: {}",
            self.path, self.line, self.message
        )
    }
}

/// Parse one file. Returns the lexed stream too (the caller reuses the
/// comments for suppression handling) or a fatal failure.
pub fn parse_file(path: &str, src: &str) -> Result<(File, Lexed), ParseFailure> {
    let lexed = lex(src).map_err(|e: LexError| ParseFailure {
        path: path.to_string(),
        line: e.line,
        message: e.message,
    })?;
    check_balance(path, &lexed.tokens)?;
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
    };
    let items = p.parse_items(false);
    Ok((
        File {
            path: path.to_string(),
            items,
        },
        lexed,
    ))
}

/// Verify delimiters balance; the parser assumes they do.
fn check_balance(path: &str, toks: &[Token]) -> Result<(), ParseFailure> {
    let mut stack: Vec<(char, usize)> = Vec::new();
    for t in toks {
        match t.kind {
            TokKind::Open(c) => stack.push((c, t.line)),
            TokKind::Close(c) => {
                let want = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                match stack.pop() {
                    Some((open, _)) if open == want => {}
                    _ => {
                        return Err(ParseFailure {
                            path: path.to_string(),
                            line: t.line,
                            message: format!("unbalanced `{c}`"),
                        })
                    }
                }
            }
            _ => {}
        }
    }
    if let Some((open, line)) = stack.pop() {
        return Err(ParseFailure {
            path: path.to_string(),
            line,
            message: format!("unclosed `{open}`"),
        });
    }
    Ok(())
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Longest-match operator table, scanned in order.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "<", ">", "+", "-", "*", "/", "%", "^",
    "&", "|", "=", ".", ":", ";", ",", "#", "?", "@", "!",
];

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn nth(&self, n: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn span_here(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .or_else(|| self.toks.last().map(|t| t.span))
            .unwrap_or(Span { lo: 0, hi: 0 })
    }

    fn line_here(&self) -> usize {
        self.peek()
            .map(|t| t.line)
            .or_else(|| self.toks.last().map(|t| t.line))
            .unwrap_or(1)
    }

    fn is_kw(&self, kw: &str) -> bool {
        self.peek().and_then(|t| t.ident()) == Some(kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// The operator starting at `pos`, if any, using joint flags so that
    /// `> >` (split generics) never reads as `>>`.
    fn op_at(&self, n: usize) -> Option<&'static str> {
        'outer: for op in OPS {
            let chars: Vec<char> = op.chars().collect();
            for (k, want) in chars.iter().enumerate() {
                match self.nth(n + k).map(|t| &t.kind) {
                    Some(TokKind::Punct(c, joint)) if c == want => {
                        if k + 1 < chars.len() && !*joint {
                            continue 'outer;
                        }
                    }
                    _ => continue 'outer,
                }
            }
            return Some(op);
        }
        None
    }

    fn at_op(&self, op: &str) -> bool {
        self.op_at(0)
            == Some(match OPS.iter().find(|o| **o == op) {
                Some(o) => o,
                None => return false,
            })
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            self.pos += op.len();
            true
        } else {
            false
        }
    }

    /// Consume a single `>` even when it is the first half of a joint
    /// `>>`/`>=`/`>>=` sequence — closing a nested generic-argument list
    /// splits the shift token (`Vec<Vec<u64>>`).
    fn eat_gt(&mut self) -> bool {
        if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Punct('>', _))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_open(&self, c: char) -> bool {
        matches!(self.peek().map(|t| &t.kind), Some(TokKind::Open(o)) if *o == c)
    }

    fn at_close(&self, c: char) -> bool {
        matches!(self.peek().map(|t| &t.kind), Some(TokKind::Close(o)) if *o == c)
    }

    fn eat_open(&mut self, c: char) -> bool {
        if self.at_open(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_close(&mut self, c: char) -> bool {
        if self.at_close(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// At an `Open`, skip past its matching `Close`. No-op otherwise.
    fn skip_balanced(&mut self) {
        if !matches!(self.peek().map(|t| &t.kind), Some(TokKind::Open(_))) {
            return;
        }
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            match t.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// Skip a generics list `<...>`, tolerating nested delimiters, `->`
    /// arrows, and const-generic braces.
    fn skip_generics(&mut self) {
        if !self.at_op("<") {
            return;
        }
        self.pos += 1;
        let mut angle = 1usize;
        while angle > 0 && !self.at_end() {
            if self.at_op("->") {
                self.pos += 2;
                continue;
            }
            match self.peek().map(|t| &t.kind) {
                Some(TokKind::Open(_)) => self.skip_balanced(),
                Some(TokKind::Punct('<', _)) => {
                    angle += 1;
                    self.pos += 1;
                }
                Some(TokKind::Punct('>', _)) => {
                    angle -= 1;
                    self.pos += 1;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip until a `;` or `{` at delimiter/angle depth zero (used for
    /// where-clauses and trait bounds). Does not consume the terminator.
    fn skip_to_body(&mut self) {
        let mut angle = 0usize;
        while let Some(t) = self.peek() {
            if self.at_op("->") {
                self.pos += 2;
                continue;
            }
            match &t.kind {
                TokKind::Open('{') if angle == 0 => return,
                TokKind::Punct(';', _) if angle == 0 => return,
                TokKind::Open(_) => self.skip_balanced(),
                TokKind::Punct('<', _) => {
                    angle += 1;
                    self.pos += 1;
                }
                TokKind::Punct('>', _) => {
                    angle = angle.saturating_sub(1);
                    self.pos += 1;
                }
                TokKind::Close(_) => return,
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Parse outer attributes; returns whether any mentions `test`.
    fn parse_attrs(&mut self) -> bool {
        let mut has_test = false;
        while self.at_op("#") {
            let start = self.pos;
            self.pos += 1;
            self.eat_op("!");
            if self.at_open('[') {
                let from = self.pos;
                self.skip_balanced();
                for t in &self.toks[from..self.pos] {
                    if t.ident() == Some("test") {
                        has_test = true;
                    }
                }
            } else {
                // `#` that is not an attribute — rewind and leave it.
                self.pos = start;
                break;
            }
        }
        has_test
    }

    // ----- items ---------------------------------------------------------

    /// Parse items until EOF (`in_block` false) or a closing `}`.
    fn parse_items(&mut self, in_block: bool) -> Vec<Item> {
        let mut out = Vec::new();
        loop {
            if self.at_end() || (in_block && self.at_close('}')) {
                return out;
            }
            let before = self.pos;
            self.parse_item_into(&mut out);
            if self.pos == before {
                self.pos += 1; // force progress
            }
        }
    }

    /// Parse one item (possibly expanding to several `Use` bindings).
    fn parse_item_into(&mut self, out: &mut Vec<Item>) {
        let attr_test = self.parse_attrs();
        // Visibility.
        if self.eat_kw("pub") && self.at_open('(') {
            self.skip_balanced();
        }
        // Qualifiers that may precede `fn`.
        let mut saw_const = false;
        loop {
            if self.is_kw("const") && self.nth(1).and_then(|t| t.ident()) == Some("fn") {
                self.pos += 1;
                continue;
            }
            if self.is_kw("unsafe") || self.is_kw("async") {
                self.pos += 1;
                continue;
            }
            if self.is_kw("extern")
                && matches!(self.nth(1).map(|t| &t.kind), Some(TokKind::Str(_)))
                && self.nth(2).and_then(|t| t.ident()) == Some("fn")
            {
                self.pos += 2;
                continue;
            }
            break;
        }
        if self.is_kw("const") || self.is_kw("static") {
            saw_const = true;
        }

        match self.peek().and_then(|t| t.ident()) {
            Some("use") => {
                self.pos += 1;
                self.parse_use(Vec::new(), out);
                self.eat_op(";");
            }
            Some("struct") => {
                self.pos += 1;
                out.push(self.parse_struct());
            }
            Some("enum") => {
                self.pos += 1;
                out.push(self.parse_enum(attr_test));
            }
            Some("fn") => {
                self.pos += 1;
                out.push(Item::Fn(self.parse_fn(attr_test)));
            }
            Some("impl") => {
                self.pos += 1;
                out.push(self.parse_impl(attr_test));
            }
            Some("mod") => {
                self.pos += 1;
                let name = self.bump_ident().unwrap_or_default();
                if self.eat_open('{') {
                    let items = self.parse_items(true);
                    self.eat_close('}');
                    out.push(Item::Mod {
                        name,
                        cfg_test: attr_test,
                        items,
                    });
                } else {
                    self.eat_op(";");
                    out.push(Item::Other);
                }
            }
            Some("trait") => {
                self.pos += 1;
                let name = self.bump_ident().unwrap_or_default();
                self.skip_generics();
                self.skip_to_body();
                let mut items = Vec::new();
                if self.eat_open('{') {
                    items = self.parse_items(true);
                    self.eat_close('}');
                }
                out.push(Item::Trait { name, items });
            }
            Some("const") | Some("static") if saw_const => {
                let is_static = self.is_kw("static");
                let line = self.line_here();
                self.pos += 1;
                let is_mut = self.eat_kw("mut");
                let name = self.bump_ident().unwrap_or_default();
                let ty = if self.eat_op(":") {
                    self.parse_type()
                } else {
                    TypeRef::Other
                };
                let init = if self.eat_op("=") {
                    Some(self.parse_expr(0, false))
                } else {
                    None
                };
                self.eat_op(";");
                out.push(Item::Const {
                    name,
                    ty,
                    init,
                    is_static,
                    is_mut,
                    line,
                });
            }
            Some("type") => {
                self.pos += 1;
                self.skip_to_body();
                self.eat_op(";");
                out.push(Item::Other);
            }
            Some("macro_rules") => {
                self.pos += 1;
                self.eat_op("!");
                self.bump_ident();
                self.skip_balanced();
                out.push(Item::Other);
            }
            Some("extern") => {
                self.pos += 1;
                if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Str(_))) {
                    self.pos += 1;
                }
                if self.at_open('{') {
                    self.skip_balanced();
                } else {
                    self.skip_to_body();
                    self.eat_op(";");
                }
                out.push(Item::Other);
            }
            _ => {
                // Unknown item: recover to the next `;` or skip a block.
                while let Some(t) = self.peek() {
                    match &t.kind {
                        TokKind::Punct(';', _) => {
                            self.pos += 1;
                            break;
                        }
                        TokKind::Open('{') => {
                            self.skip_balanced();
                            break;
                        }
                        TokKind::Open(_) => self.skip_balanced(),
                        TokKind::Close(_) => break,
                        _ => {
                            self.pos += 1;
                        }
                    }
                }
                out.push(Item::Other);
            }
        }
    }

    fn bump_ident(&mut self) -> Option<String> {
        match self.peek().map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        }
    }

    /// Parse the tail of a `use` declaration, expanding groups and globs.
    fn parse_use(&mut self, prefix: Vec<String>, out: &mut Vec<Item>) {
        let mut path = prefix;
        loop {
            if self.at_open('{') {
                self.pos += 1;
                loop {
                    if self.eat_close('}') || self.at_end() {
                        return;
                    }
                    self.parse_use(path.clone(), out);
                    if !self.eat_op(",") {
                        self.eat_close('}');
                        return;
                    }
                }
            }
            if self.eat_op("*") {
                path.push("*".to_string());
                out.push(Item::Use {
                    alias: "*".to_string(),
                    path,
                });
                return;
            }
            let Some(seg) = self.bump_ident() else { return };
            path.push(seg);
            if self.eat_op("::") {
                continue;
            }
            let alias = if self.eat_kw("as") {
                self.bump_ident().unwrap_or_default()
            } else {
                path.last().cloned().unwrap_or_default()
            };
            out.push(Item::Use { path, alias });
            return;
        }
    }

    fn parse_struct(&mut self) -> Item {
        let name = self.bump_ident().unwrap_or_default();
        self.skip_generics();
        if self.is_kw("where") {
            self.skip_to_body();
        }
        let fields = if self.at_open('(') {
            self.pos += 1;
            let mut tys = Vec::new();
            while !self.at_close(')') && !self.at_end() {
                self.parse_attrs();
                if self.eat_kw("pub") && self.at_open('(') {
                    self.skip_balanced();
                }
                tys.push(self.parse_type());
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close(')');
            self.eat_op(";");
            Fields::Tuple(tys)
        } else if self.at_open('{') {
            self.pos += 1;
            let mut fields = Vec::new();
            while !self.at_close('}') && !self.at_end() {
                self.parse_attrs();
                if self.eat_kw("pub") && self.at_open('(') {
                    self.skip_balanced();
                }
                let Some(fname) = self.bump_ident() else {
                    self.pos += 1;
                    continue;
                };
                if !self.eat_op(":") {
                    continue;
                }
                let ty = self.parse_type();
                fields.push((fname, ty));
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close('}');
            Fields::Named(fields)
        } else {
            self.eat_op(";");
            Fields::Unit
        };
        Item::Struct { name, fields }
    }

    fn parse_enum(&mut self, cfg_test: bool) -> Item {
        let line = self.line_here();
        let name = self.bump_ident().unwrap_or_default();
        self.skip_generics();
        if self.is_kw("where") {
            self.skip_to_body();
        }
        let mut variants = Vec::new();
        let mut payloads = Vec::new();
        if self.eat_open('{') {
            while !self.at_close('}') && !self.at_end() {
                self.parse_attrs();
                let Some(vname) = self.bump_ident() else {
                    self.pos += 1;
                    continue;
                };
                variants.push(vname);
                payloads.push(self.parse_variant_payload());
                if self.eat_op("=") {
                    // Discriminant: skip to `,` or `}`.
                    while !self.at_op(",") && !self.at_close('}') && !self.at_end() {
                        if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Open(_))) {
                            self.skip_balanced();
                        } else {
                            self.pos += 1;
                        }
                    }
                }
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close('}');
        } else {
            self.eat_op(";");
        }
        Item::Enum {
            name,
            variants,
            payloads,
            cfg_test,
            line,
        }
    }

    /// Payload types of one enum variant: `(T, U)` tuple payloads, the
    /// field types of `{ f: T, .. }` struct payloads, empty for unit
    /// variants. Malformed payloads degrade to whatever parsed.
    fn parse_variant_payload(&mut self) -> Vec<TypeRef> {
        let mut tys = Vec::new();
        if self.eat_open('(') {
            while !self.at_close(')') && !self.at_end() {
                self.parse_attrs();
                tys.push(self.parse_type());
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close(')');
        } else if self.eat_open('{') {
            while !self.at_close('}') && !self.at_end() {
                self.parse_attrs();
                if self.bump_ident().is_none() {
                    self.pos += 1;
                    continue;
                }
                if !self.eat_op(":") {
                    continue;
                }
                tys.push(self.parse_type());
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close('}');
        }
        tys
    }

    fn parse_fn(&mut self, cfg_test: bool) -> FnItem {
        let line = self.line_here();
        let name = self.bump_ident().unwrap_or_default();
        self.skip_generics();
        let mut self_param = None;
        let mut params = Vec::new();
        if self.eat_open('(') {
            while !self.at_close(')') && !self.at_end() {
                self.parse_attrs();
                // Receiver forms.
                let start = self.pos;
                let mut is_ref = false;
                if self.eat_op("&") {
                    is_ref = true;
                    if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Lifetime(_))) {
                        self.pos += 1;
                    }
                }
                let had_mut = self.eat_kw("mut");
                if self.eat_kw("self") {
                    self_param = Some(if is_ref {
                        SelfKind::Reference
                    } else {
                        SelfKind::Value
                    });
                    let _ = had_mut;
                } else {
                    self.pos = start;
                    let pat = self.parse_pat_or();
                    if self.eat_op(":") {
                        let ty = self.parse_type();
                        params.push((pat, ty));
                    } else {
                        params.push((pat, TypeRef::Other));
                    }
                }
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close(')');
        }
        let ret = if self.eat_op("->") {
            self.parse_type()
        } else {
            TypeRef::Unit
        };
        if self.is_kw("where") {
            self.skip_to_body();
        }
        let body = if self.at_open('{') {
            Some(self.parse_block())
        } else {
            self.eat_op(";");
            None
        };
        FnItem {
            name,
            self_param,
            params,
            ret,
            body,
            cfg_test,
            line,
        }
    }

    fn parse_impl(&mut self, cfg_test: bool) -> Item {
        self.skip_generics();
        let first = self.parse_type();
        let (trait_, self_ty) = if self.eat_kw("for") {
            let st = self.parse_type();
            (Some(first), st)
        } else {
            (None, first)
        };
        if self.is_kw("where") {
            self.skip_to_body();
        }
        let mut items = Vec::new();
        if self.eat_open('{') {
            items = self.parse_items(true);
            self.eat_close('}');
        }
        Item::Impl {
            trait_,
            self_ty,
            items,
            cfg_test,
        }
    }

    // ----- types ---------------------------------------------------------

    fn parse_type(&mut self) -> TypeRef {
        if self.eat_op("&") {
            if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Lifetime(_))) {
                self.pos += 1;
            }
            self.eat_kw("mut");
            return TypeRef::Ref(Box::new(self.parse_type()));
        }
        if self.at_op("&&") {
            self.pos += 1; // treat && as two &
            return TypeRef::Ref(Box::new(self.parse_type()));
        }
        if self.at_open('(') {
            self.pos += 1;
            if self.eat_close(')') {
                return TypeRef::Unit;
            }
            let mut tys = vec![self.parse_type()];
            let mut tuple = false;
            while self.eat_op(",") {
                tuple = true;
                if self.at_close(')') {
                    break;
                }
                tys.push(self.parse_type());
            }
            self.eat_close(')');
            return if tuple {
                TypeRef::Tuple(tys)
            } else {
                tys.pop().unwrap_or(TypeRef::Other)
            };
        }
        if self.at_open('[') {
            self.skip_balanced();
            return TypeRef::Other;
        }
        if self.eat_kw("dyn") || self.eat_kw("impl") {
            // Take the first bound's path; skip the rest of the bounds.
            let t = self.parse_type();
            while self.eat_op("+") {
                if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Lifetime(_))) {
                    self.pos += 1;
                } else {
                    self.parse_type();
                }
            }
            return t;
        }
        if self.is_kw("fn") || self.is_kw("unsafe") || self.is_kw("extern") {
            // fn pointer: skip signature.
            while let Some(t) = self.peek() {
                match &t.kind {
                    TokKind::Open('(') => {
                        self.skip_balanced();
                        break;
                    }
                    _ => {
                        self.pos += 1;
                    }
                }
            }
            if self.eat_op("->") {
                self.parse_type();
            }
            return TypeRef::Other;
        }
        if self.eat_op("*") {
            // Raw pointer.
            let _ = self.eat_kw("const") || self.eat_kw("mut");
            self.parse_type();
            return TypeRef::Other;
        }
        if self.eat_op("!") {
            return TypeRef::Other;
        }
        if self.is_kw("_") {
            self.pos += 1;
            return TypeRef::Other;
        }
        // Path type.
        let mut segs = Vec::new();
        let mut args = Vec::new();
        self.eat_op("::");
        loop {
            let Some(seg) = self.bump_ident() else {
                return if segs.is_empty() {
                    TypeRef::Other
                } else {
                    TypeRef::Path { segs, args }
                };
            };
            segs.push(seg);
            if self.at_op("<") {
                self.pos += 1;
                // Generic argument list.
                loop {
                    if self.eat_gt() || self.at_end() {
                        break;
                    }
                    if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Lifetime(_))) {
                        self.pos += 1;
                    } else if self.at_open('{') {
                        self.skip_balanced(); // const-generic expression
                    } else if matches!(
                        self.peek().map(|t| &t.kind),
                        Some(TokKind::Int(_) | TokKind::Char | TokKind::Str(_))
                    ) {
                        self.pos += 1; // const-generic literal
                    } else if self.peek().and_then(|t| t.ident()).is_some()
                        && self.op_at(1) == Some("=")
                    {
                        // Associated type binding `Item = T`.
                        self.pos += 2;
                        args.push(self.parse_type());
                    } else {
                        args.push(self.parse_type());
                    }
                    if !self.eat_op(",") {
                        self.eat_gt();
                        break;
                    }
                }
            }
            if self.at_op("::") && self.nth(2).and_then(|t| t.ident()).is_some() {
                self.pos += 2;
                continue;
            }
            if self.at_op("::") && self.op_at(2) == Some("<") {
                self.pos += 2;
                continue;
            }
            break;
        }
        if self.at_open('(') {
            // Fn-trait sugar `FnMut(A) -> B`.
            self.skip_balanced();
            if self.eat_op("->") {
                self.parse_type();
            }
        }
        TypeRef::Path { segs, args }
    }

    // ----- patterns ------------------------------------------------------

    /// Parse a pattern with optional `|` alternatives.
    fn parse_pat_or(&mut self) -> Pat {
        self.eat_op("|");
        let first = self.parse_pat();
        if !self.at_op("|") || self.at_op("||") {
            return first;
        }
        let mut alts = vec![first];
        while self.eat_op("|") {
            alts.push(self.parse_pat());
        }
        Pat::Or(alts)
    }

    fn parse_pat(&mut self) -> Pat {
        // Reference and binding-mode prefixes are transparent.
        while self.eat_op("&") || self.eat_kw("ref") || self.eat_kw("mut") {
            if self.at_op("&&") {
                self.pos += 1;
            }
        }
        if self.is_kw("_") {
            self.pos += 1;
            return Pat::Wild;
        }
        if self.eat_kw("box") {
            return self.parse_pat();
        }
        if self.at_op("..") || self.at_op("..=") {
            // Rest pattern or open range.
            self.pos += 2;
            if matches!(
                self.peek().map(|t| &t.kind),
                Some(TokKind::Int(_) | TokKind::Float(_) | TokKind::Char)
            ) {
                self.pos += 1;
                return Pat::Lit;
            }
            return Pat::Other;
        }
        // Literals (with optional leading minus) and literal ranges.
        if self.at_op("-")
            || matches!(
                self.peek().map(|t| &t.kind),
                Some(TokKind::Int(_) | TokKind::Float(_) | TokKind::Str(_) | TokKind::Char)
            )
        {
            self.eat_op("-");
            self.pos += 1;
            if self.eat_op("..=") || self.eat_op("..") {
                self.eat_op("-");
                if matches!(
                    self.peek().map(|t| &t.kind),
                    Some(TokKind::Int(_) | TokKind::Float(_) | TokKind::Char)
                ) {
                    self.pos += 1;
                }
            }
            return Pat::Lit;
        }
        if self.at_open('(') {
            self.pos += 1;
            let mut elems = Vec::new();
            while !self.at_close(')') && !self.at_end() {
                elems.push(self.parse_pat_or());
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close(')');
            return Pat::Tuple(elems);
        }
        if self.at_open('[') {
            self.skip_balanced();
            return Pat::Other;
        }
        // Path-ish pattern.
        let mut segs = Vec::new();
        self.eat_op("::");
        while let Some(seg) = self.bump_ident() {
            segs.push(seg);
            if self.at_op("::") && self.op_at(2) == Some("<") {
                self.pos += 2;
                self.skip_generics();
            }
            if !self.eat_op("::") {
                break;
            }
        }
        if segs.is_empty() {
            // Unknown pattern token: consume it so the caller progresses.
            self.pos += 1;
            return Pat::Other;
        }
        if self.at_op("@") {
            self.pos += 1;
            self.parse_pat();
            return Pat::Other;
        }
        if self.eat_op("..=") || self.eat_op("..") {
            self.eat_op("-");
            if matches!(
                self.peek().map(|t| &t.kind),
                Some(TokKind::Int(_) | TokKind::Float(_) | TokKind::Char | TokKind::Ident(_))
            ) {
                self.pos += 1;
            }
            return Pat::Lit;
        }
        if self.at_open('(') {
            self.pos += 1;
            let mut elems = Vec::new();
            while !self.at_close(')') && !self.at_end() {
                elems.push(self.parse_pat_or());
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close(')');
            return Pat::TupleStruct { path: segs, elems };
        }
        if self.at_open('{') {
            self.skip_balanced();
            return Pat::Struct { path: segs };
        }
        Pat::Path(segs)
    }

    // ----- statements and blocks -----------------------------------------

    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.eat_open('{') {
            return block;
        }
        loop {
            if self.eat_close('}') || self.at_end() {
                return block;
            }
            let before = self.pos;
            if let Some(stmt) = self.parse_stmt() {
                block.stmts.push(stmt);
            }
            if self.pos == before {
                self.pos += 1; // force progress
            }
        }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        self.parse_attrs();
        if self.eat_op(";") {
            return None;
        }
        if self.is_kw("let") {
            self.pos += 1;
            let pat = self.parse_pat_or();
            let ty = if self.eat_op(":") {
                Some(self.parse_type())
            } else {
                None
            };
            let init = if self.eat_op("=") {
                Some(self.parse_expr(0, false))
            } else {
                None
            };
            if self.eat_kw("else") {
                // let-else diverging block.
                if self.at_open('{') {
                    let b = self.parse_block();
                    let _ = b;
                }
            }
            self.eat_op(";");
            return Some(Stmt::Let { pat, ty, init });
        }
        // Nested items.
        let kw = self.peek().and_then(|t| t.ident());
        let is_item_kw = matches!(
            kw,
            Some(
                "fn" | "struct"
                    | "enum"
                    | "impl"
                    | "use"
                    | "mod"
                    | "trait"
                    | "macro_rules"
                    | "type"
            )
        ) || (kw == Some("const")
            && self.nth(1).and_then(|t| t.ident()) != Some("_"))
            || kw == Some("static")
            || (kw == Some("pub"));
        // `const` can also start a const-block expression; the workspace
        // has none, so treat it as an item unconditionally above.
        if is_item_kw {
            let mut items = Vec::new();
            self.parse_item_into(&mut items);
            return items.pop().map(|i| Stmt::Item(Box::new(i)));
        }
        let expr = self.parse_expr(0, false);
        self.eat_op(";");
        Some(Stmt::Expr(expr))
    }

    // ----- expressions ---------------------------------------------------

    /// Binding power of a binary operator; `None` when `op` does not
    /// continue an expression.
    fn binary_bp(op: &str) -> Option<(u8, u8, BinOp)> {
        Some(match op {
            "*" => (20, 21, BinOp::Mul),
            "/" => (20, 21, BinOp::Div),
            "%" => (20, 21, BinOp::Rem),
            "+" => (18, 19, BinOp::Add),
            "-" => (18, 19, BinOp::Sub),
            "<<" | ">>" => (16, 17, BinOp::Bit),
            "&" => (14, 15, BinOp::Bit),
            "^" => (13, 14, BinOp::Bit),
            "|" => (12, 13, BinOp::Bit),
            "==" | "!=" | "<" | ">" | "<=" | ">=" => (10, 11, BinOp::Cmp),
            "&&" => (8, 9, BinOp::Logic),
            "||" => (6, 7, BinOp::Logic),
            ".." | "..=" => (4, 5, BinOp::Range),
            _ => return None,
        })
    }

    fn assign_op(op: &str) -> Option<Option<BinOp>> {
        Some(match op {
            "=" => None,
            "+=" => Some(BinOp::Add),
            "-=" => Some(BinOp::Sub),
            "*=" => Some(BinOp::Mul),
            "/=" => Some(BinOp::Div),
            "%=" => Some(BinOp::Rem),
            "^=" | "&=" | "|=" | "<<=" | ">>=" => Some(BinOp::Bit),
            _ => return None,
        })
    }

    /// Pratt expression parser. `no_struct` suppresses struct literals
    /// (scrutinee / condition / iterator positions).
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(no_struct);
        loop {
            if self.is_kw("as") {
                self.pos += 1;
                let ty = self.parse_type();
                let span = lhs.span.to(self.prev_span());
                let line = lhs.line;
                lhs = Expr {
                    kind: ExprKind::Cast {
                        expr: Box::new(lhs),
                        ty,
                    },
                    span,
                    line,
                };
                continue;
            }
            let Some(op) = self.op_at(0) else { break };
            if let Some(inner) = Self::assign_op(op) {
                if min_bp > 2 {
                    break;
                }
                self.pos += op.len();
                let rhs = self.parse_expr(2, no_struct); // right-assoc
                let span = lhs.span.to(rhs.span);
                let line = lhs.line;
                lhs = Expr {
                    kind: ExprKind::Assign {
                        op: inner,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    span,
                    line,
                };
                continue;
            }
            let Some((l_bp, r_bp, bop)) = Self::binary_bp(op) else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            self.pos += op.len();
            if bop == BinOp::Range {
                // Open-ended range: `a..` with no RHS.
                let hi = if self.expr_can_start(no_struct) {
                    Some(Box::new(self.parse_expr(r_bp, no_struct)))
                } else {
                    None
                };
                let span = hi.as_ref().map(|h| lhs.span.to(h.span)).unwrap_or(lhs.span);
                let line = lhs.line;
                lhs = Expr {
                    kind: ExprKind::RangeLit {
                        lo: Some(Box::new(lhs)),
                        hi,
                    },
                    span,
                    line,
                };
                continue;
            }
            let rhs = self.parse_expr(r_bp, no_struct);
            let span = lhs.span.to(rhs.span);
            let line = lhs.line;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: bop,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
                line,
            };
        }
        lhs
    }

    fn prev_span(&self) -> Span {
        self.toks
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or(Span { lo: 0, hi: 0 })
    }

    /// Can the current token begin an expression? (Used for open ranges.)
    fn expr_can_start(&self, _no_struct: bool) -> bool {
        match self.peek().map(|t| &t.kind) {
            None => false,
            Some(TokKind::Close(_)) => false,
            Some(TokKind::Punct(c, _)) => matches!(c, '-' | '!' | '&' | '*' | '|' | '.'),
            _ => true,
        }
    }

    fn parse_prefix(&mut self, no_struct: bool) -> Expr {
        let start_span = self.span_here();
        let line = self.line_here();
        let mk = |kind: ExprKind, span: Span, line: usize| Expr { kind, span, line };

        self.parse_attrs();

        // Unary operators (postfix binds tighter, so recurse into prefix).
        for op in ["-", "!", "*"] {
            if self.at_op(op) && self.op_at(0) == Some(op) {
                self.pos += op.len();
                let inner = self.parse_prefix(no_struct);
                let span = start_span.to(inner.span);
                return mk(ExprKind::Unary(Box::new(inner)), span, line);
            }
        }
        if self.at_op("&&") {
            self.pos += 1; // && as two reference ops
            let inner = self.parse_prefix(no_struct);
            let span = start_span.to(inner.span);
            return mk(ExprKind::Unary(Box::new(inner)), span, line);
        }
        if self.at_op("&") {
            self.pos += 1;
            self.eat_kw("mut");
            let inner = self.parse_prefix(no_struct);
            let span = start_span.to(inner.span);
            return mk(ExprKind::Unary(Box::new(inner)), span, line);
        }
        if self.at_op("..") || self.at_op("..=") {
            let len = if self.at_op("..=") { 3 } else { 2 };
            self.pos += len;
            let hi = if self.expr_can_start(no_struct) {
                Some(Box::new(self.parse_expr(5, no_struct)))
            } else {
                None
            };
            let span = hi
                .as_ref()
                .map(|h| start_span.to(h.span))
                .unwrap_or(start_span);
            return mk(ExprKind::RangeLit { lo: None, hi }, span, line);
        }

        let head = self.parse_primary(no_struct);
        self.parse_postfix(head)
    }

    fn parse_postfix(&mut self, mut e: Expr) -> Expr {
        loop {
            // Field / method / tuple-index access.
            if self.at_op(".") && self.op_at(0) != Some("..") && self.op_at(0) != Some("..=") {
                let dot_span = self.span_here();
                self.pos += 1;
                match self.peek().map(|t| t.kind.clone()) {
                    Some(TokKind::Ident(name)) => {
                        let name_span = self.span_here();
                        self.pos += 1;
                        // `.await` behaves like a field read.
                        // Turbofish: `.collect::<Vec<_>>()`.
                        if self.at_op("::") && self.op_at(2) == Some("<") {
                            self.pos += 2;
                            self.skip_generics();
                        }
                        if self.at_open('(') {
                            let args = self.parse_call_args();
                            let span = e.span.to(self.prev_span());
                            let line = e.line;
                            e = Expr {
                                kind: ExprKind::MethodCall {
                                    recv: Box::new(e),
                                    name,
                                    args,
                                },
                                span,
                                line,
                            };
                        } else {
                            let span = e.span.to(name_span);
                            let line = e.line;
                            e = Expr {
                                kind: ExprKind::Field {
                                    recv: Box::new(e),
                                    name,
                                    access_span: dot_span.to(name_span),
                                },
                                span,
                                line,
                            };
                        }
                        continue;
                    }
                    Some(TokKind::Int(text)) => {
                        let idx_span = self.span_here();
                        self.pos += 1;
                        let span = e.span.to(idx_span);
                        let line = e.line;
                        e = Expr {
                            kind: ExprKind::Field {
                                recv: Box::new(e),
                                name: text,
                                access_span: dot_span.to(idx_span),
                            },
                            span,
                            line,
                        };
                        continue;
                    }
                    Some(TokKind::Float(text)) => {
                        // `x.0.1` lexes the `0.1` as a float: split it into
                        // two tuple-index accesses.
                        let idx_span = self.span_here();
                        self.pos += 1;
                        let parts: Vec<&str> = text.split('.').collect();
                        let span = e.span.to(idx_span);
                        let line = e.line;
                        for part in parts {
                            e = Expr {
                                kind: ExprKind::Field {
                                    recv: Box::new(e),
                                    name: part.to_string(),
                                    access_span: dot_span.to(idx_span),
                                },
                                span,
                                line,
                            };
                        }
                        continue;
                    }
                    _ => {
                        // Stray dot: leave it unconsumed as Opaque food.
                        continue;
                    }
                }
            }
            if self.at_open('(') {
                let args = self.parse_call_args();
                let span = e.span.to(self.prev_span());
                let line = e.line;
                e = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                    span,
                    line,
                };
                continue;
            }
            if self.at_open('[') {
                self.pos += 1;
                let idx = self.parse_expr(0, false);
                self.eat_close(']');
                let span = e.span.to(self.prev_span());
                let line = e.line;
                e = Expr {
                    kind: ExprKind::Index {
                        recv: Box::new(e),
                        idx: Box::new(idx),
                    },
                    span,
                    line,
                };
                continue;
            }
            if self.at_op("?") {
                self.pos += 1;
                let span = e.span.to(self.prev_span());
                let line = e.line;
                e = Expr {
                    kind: ExprKind::Try(Box::new(e)),
                    span,
                    line,
                };
                continue;
            }
            return e;
        }
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_open('(') {
            return args;
        }
        while !self.at_close(')') && !self.at_end() {
            args.push(self.parse_expr(0, false));
            if !self.eat_op(",") {
                break;
            }
        }
        self.eat_close(')');
        args
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let span = self.span_here();
        let line = self.line_here();
        let mk = |kind: ExprKind, span: Span| Expr { kind, span, line };

        let Some(tok) = self.peek() else {
            return mk(ExprKind::Opaque, span);
        };

        match &tok.kind {
            TokKind::Int(text) => {
                let text = text.clone();
                self.pos += 1;
                mk(ExprKind::Lit(Lit::Int(text)), span)
            }
            TokKind::Float(_) => {
                self.pos += 1;
                mk(ExprKind::Lit(Lit::Float), span)
            }
            TokKind::Str(ne) => {
                let ne = *ne;
                self.pos += 1;
                mk(ExprKind::Lit(Lit::Str(ne)), span)
            }
            TokKind::Char => {
                self.pos += 1;
                mk(ExprKind::Lit(Lit::Char), span)
            }
            TokKind::Lifetime(_) => {
                // Loop label: `'outer: loop { … }`.
                self.pos += 1;
                self.eat_op(":");
                self.parse_prefix(no_struct)
            }
            TokKind::Open('(') => {
                self.pos += 1;
                if self.eat_close(')') {
                    return mk(ExprKind::Tuple(Vec::new()), span.to(self.prev_span()));
                }
                let first = self.parse_expr(0, false);
                if self.eat_op(",") {
                    let mut elems = vec![first];
                    while !self.at_close(')') && !self.at_end() {
                        elems.push(self.parse_expr(0, false));
                        if !self.eat_op(",") {
                            break;
                        }
                    }
                    self.eat_close(')');
                    mk(ExprKind::Tuple(elems), span.to(self.prev_span()))
                } else {
                    self.eat_close(')');
                    mk(ExprKind::Paren(Box::new(first)), span.to(self.prev_span()))
                }
            }
            TokKind::Open('[') => {
                self.pos += 1;
                let mut elems = Vec::new();
                while !self.at_close(']') && !self.at_end() {
                    elems.push(self.parse_expr(0, false));
                    if self.eat_op(";") {
                        elems.push(self.parse_expr(0, false));
                        break;
                    }
                    if !self.eat_op(",") {
                        break;
                    }
                }
                self.eat_close(']');
                mk(ExprKind::Array(elems), span.to(self.prev_span()))
            }
            TokKind::Open('{') => {
                let b = self.parse_block();
                mk(ExprKind::Block(b), span.to(self.prev_span()))
            }
            TokKind::Punct('|', _) => self.parse_closure(span, line),
            TokKind::Ident(id) => {
                let id = id.clone();
                match id.as_str() {
                    "true" => {
                        self.pos += 1;
                        mk(ExprKind::Lit(Lit::Bool(true)), span)
                    }
                    "false" => {
                        self.pos += 1;
                        mk(ExprKind::Lit(Lit::Bool(false)), span)
                    }
                    "if" => self.parse_if(span, line),
                    "match" => self.parse_match(span, line),
                    "while" => {
                        self.pos += 1;
                        let (pat, head) = if self.eat_kw("let") {
                            let p = self.parse_pat_or();
                            self.eat_op("=");
                            (Some(p), Some(Box::new(self.parse_expr(0, true))))
                        } else {
                            (None, Some(Box::new(self.parse_expr(0, true))))
                        };
                        let body = self.parse_block();
                        mk(
                            ExprKind::Loop { pat, head, body },
                            span.to(self.prev_span()),
                        )
                    }
                    "for" => {
                        self.pos += 1;
                        let pat = self.parse_pat_or();
                        self.eat_kw("in");
                        let head = Box::new(self.parse_expr(0, true));
                        let body = self.parse_block();
                        mk(
                            ExprKind::Loop {
                                pat: Some(pat),
                                head: Some(head),
                                body,
                            },
                            span.to(self.prev_span()),
                        )
                    }
                    "loop" => {
                        self.pos += 1;
                        let body = self.parse_block();
                        mk(
                            ExprKind::Loop {
                                pat: None,
                                head: None,
                                body,
                            },
                            span.to(self.prev_span()),
                        )
                    }
                    "unsafe" => {
                        self.pos += 1;
                        let b = self.parse_block();
                        mk(ExprKind::Block(b), span.to(self.prev_span()))
                    }
                    "return" | "break" => {
                        self.pos += 1;
                        if id == "break"
                            && matches!(self.peek().map(|t| &t.kind), Some(TokKind::Lifetime(_)))
                        {
                            self.pos += 1;
                        }
                        let val = if self.expr_can_start(no_struct)
                            && !self.at_op(";")
                            && !self.at_op(",")
                        {
                            Some(Box::new(self.parse_expr(0, no_struct)))
                        } else {
                            None
                        };
                        let sp = val.as_ref().map(|v| span.to(v.span)).unwrap_or(span);
                        mk(ExprKind::Jump(val), sp)
                    }
                    "continue" => {
                        self.pos += 1;
                        if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Lifetime(_))) {
                            self.pos += 1;
                        }
                        mk(ExprKind::Jump(None), span)
                    }
                    "move" => {
                        self.pos += 1;
                        self.parse_closure(span, line)
                    }
                    "_" => {
                        self.pos += 1;
                        mk(ExprKind::Opaque, span)
                    }
                    _ => self.parse_path_expr(no_struct, span, line),
                }
            }
            _ => {
                // Unrecognized token: consume it, return opaque.
                self.pos += 1;
                mk(ExprKind::Opaque, span)
            }
        }
    }

    fn parse_closure(&mut self, span: Span, line: usize) -> Expr {
        let mut params = Vec::new();
        if self.eat_op("||") {
            // No parameters.
        } else if self.eat_op("|") {
            while !self.at_op("|") && !self.at_end() {
                // Closure params use `parse_pat`, not `parse_pat_or`: the
                // closing `|` of the header must terminate the list, not
                // read as an or-pattern separator.
                let pat = self.parse_pat();
                let ty = if self.eat_op(":") {
                    Some(self.parse_type())
                } else {
                    None
                };
                params.push((pat, ty));
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_op("|");
        }
        if self.eat_op("->") {
            self.parse_type();
        }
        let body = self.parse_expr(0, false);
        let sp = span.to(body.span);
        Expr {
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
            span: sp,
            line,
        }
    }

    fn parse_if(&mut self, span: Span, line: usize) -> Expr {
        self.pos += 1; // `if`
        let cond = if self.eat_kw("let") {
            let _pat = self.parse_pat_or();
            self.eat_op("=");
            self.parse_expr(0, true)
        } else {
            self.parse_expr(0, true)
        };
        let then = self.parse_block();
        let else_ = if self.eat_kw("else") {
            if self.is_kw("if") {
                let sp = self.span_here();
                let ln = self.line_here();
                Some(Box::new(self.parse_if(sp, ln)))
            } else {
                let sp = self.span_here();
                let ln = self.line_here();
                let b = self.parse_block();
                Some(Box::new(Expr {
                    kind: ExprKind::Block(b),
                    span: sp.to(self.prev_span()),
                    line: ln,
                }))
            }
        } else {
            None
        };
        Expr {
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                else_,
            },
            span: span.to(self.prev_span()),
            line,
        }
    }

    fn parse_match(&mut self, span: Span, line: usize) -> Expr {
        self.pos += 1; // `match`
        let scrutinee = self.parse_expr(0, true);
        let mut arms = Vec::new();
        if self.eat_open('{') {
            loop {
                if self.eat_close('}') || self.at_end() {
                    break;
                }
                self.parse_attrs();
                let pat_line = self.line_here();
                let before = self.pos;
                let pat = self.parse_pat_or();
                let guard = if self.eat_kw("if") {
                    Some(self.parse_expr(0, true))
                } else {
                    None
                };
                if !self.eat_op("=>") {
                    // Could not shape this arm; recover to the next `,` at
                    // depth zero or the closing brace.
                    self.pos = before;
                    let mut depth = 0usize;
                    while let Some(t) = self.peek() {
                        match &t.kind {
                            TokKind::Open(_) => {
                                depth += 1;
                                self.pos += 1;
                            }
                            TokKind::Close('}') if depth == 0 => break,
                            TokKind::Close(_) => {
                                depth = depth.saturating_sub(1);
                                self.pos += 1;
                            }
                            TokKind::Punct(',', _) if depth == 0 => {
                                self.pos += 1;
                                break;
                            }
                            _ => {
                                self.pos += 1;
                            }
                        }
                    }
                    continue;
                }
                let body = self.parse_expr(0, false);
                self.eat_op(",");
                arms.push(Arm {
                    pat,
                    guard,
                    body,
                    line: pat_line,
                });
            }
        }
        Expr {
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
            span: span.to(self.prev_span()),
            line,
        }
    }

    /// A path head: plain path, macro call, call, or struct literal.
    fn parse_path_expr(&mut self, no_struct: bool, span: Span, line: usize) -> Expr {
        let mut segs = Vec::new();
        self.eat_op("::");
        while let Some(seg) = self.bump_ident() {
            segs.push(seg);
            if self.at_op("::") && self.op_at(2) == Some("<") {
                // Turbofish in path position.
                self.pos += 2;
                self.skip_generics();
                if !self.eat_op("::") {
                    break;
                }
                continue;
            }
            if !self.at_op("::") {
                break;
            }
            if self.nth(2).and_then(|t| t.ident()).is_none() {
                break;
            }
            self.pos += 2;
        }
        let path_span = span.to(self.prev_span());

        // Macro invocation.
        if self.at_op("!")
            && matches!(
                self.nth(1).map(|t| &t.kind),
                Some(TokKind::Open('(') | TokKind::Open('[') | TokKind::Open('{'))
            )
        {
            self.pos += 1;
            let name = segs.last().cloned().unwrap_or_default();
            let args = self.parse_macro_args();
            return Expr {
                kind: ExprKind::MacroCall { name, args },
                span: span.to(self.prev_span()),
                line,
            };
        }

        // Struct literal.
        if self.at_open('{') && !no_struct {
            self.pos += 1;
            let mut fields = Vec::new();
            let mut rest = None;
            while !self.at_close('}') && !self.at_end() {
                self.parse_attrs();
                if self.eat_op("..") {
                    rest = Some(Box::new(self.parse_expr(0, false)));
                    break;
                }
                let Some(fname) = self.bump_ident() else {
                    self.pos += 1;
                    continue;
                };
                if self.eat_op(":") {
                    let v = self.parse_expr(0, false);
                    fields.push((fname, Some(v)));
                } else {
                    fields.push((fname, None));
                }
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_close('}');
            return Expr {
                kind: ExprKind::StructLit {
                    path: segs,
                    fields,
                    rest,
                },
                span: span.to(self.prev_span()),
                line,
            };
        }

        Expr {
            kind: ExprKind::Path(segs),
            span: path_span,
            line,
        }
    }

    /// Parse macro arguments as comma-separated expressions, tolerantly:
    /// whatever does not shape as an expression is skipped to the next
    /// top-level comma.
    fn parse_macro_args(&mut self) -> Vec<Expr> {
        let close = match self.peek().map(|t| &t.kind) {
            Some(TokKind::Open('(')) => ')',
            Some(TokKind::Open('[')) => ']',
            Some(TokKind::Open('{')) => '}',
            _ => return Vec::new(),
        };
        self.pos += 1;
        let mut args = Vec::new();
        loop {
            if self.eat_close(close) || self.at_end() {
                return args;
            }
            let before = self.pos;
            let e = self.parse_expr(0, false);
            args.push(e);
            if self.pos == before {
                self.pos += 1;
            }
            // Skip any unconsumed residue to the next top-level comma or
            // the closing delimiter.
            let mut depth = 0usize;
            loop {
                match self.peek().map(|t| &t.kind) {
                    None => return args,
                    Some(TokKind::Open(_)) => {
                        depth += 1;
                        self.pos += 1;
                    }
                    Some(TokKind::Close(c)) => {
                        if depth == 0 {
                            if *c == close {
                                self.pos += 1;
                                return args;
                            }
                            self.pos += 1;
                        } else {
                            depth -= 1;
                            self.pos += 1;
                        }
                    }
                    Some(TokKind::Punct(',', _)) if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    Some(_) => {
                        self.pos += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> File {
        parse_file("test.rs", src).expect("parses").0
    }

    fn first_fn(file: &File) -> &FnItem {
        file.items
            .iter()
            .find_map(|i| match i {
                Item::Fn(f) => Some(f),
                _ => None,
            })
            .expect("a fn item")
    }

    #[test]
    fn parses_struct_enum_use() {
        let f = parse(
            "use std::collections::{BTreeMap, BTreeSet as Set};\n\
             pub struct Nanos(pub u64);\n\
             pub enum Kind { A, B(u32), C { x: u64 } }\n",
        );
        let uses: Vec<_> = f
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Use { alias, .. } => Some(alias.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(uses, vec!["BTreeMap", "Set"]);
        assert!(f.items.iter().any(|i| matches!(
            i,
            Item::Struct { name, fields: Fields::Tuple(t) } if name == "Nanos" && t.len() == 1
        )));
        assert!(f.items.iter().any(|i| matches!(
            i,
            Item::Enum { name, variants, .. } if name == "Kind" && variants == &["A", "B", "C"]
        )));
    }

    #[test]
    fn parses_fn_signature_and_body() {
        let f = parse("fn f(a: Nanos, b: &mut u64) -> Nanos { let c = a; c }\n");
        let func = first_fn(&f);
        assert_eq!(func.name, "f");
        assert_eq!(func.params.len(), 2);
        assert_eq!(func.ret.last_seg(), Some("Nanos"));
        let body = func.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 2);
    }

    #[test]
    fn parses_impl_with_trait_args() {
        let f = parse("impl Mul<u64> for Nanos { fn mul(self, rhs: u64) -> Nanos { self } }\n");
        let Some(Item::Impl {
            trait_,
            self_ty,
            items,
            ..
        }) = f.items.first()
        else {
            panic!("impl item");
        };
        let t = trait_.as_ref().expect("trait");
        assert_eq!(t.last_seg(), Some("Mul"));
        assert!(matches!(t, TypeRef::Path { args, .. } if args.len() == 1));
        assert_eq!(self_ty.last_seg(), Some("Nanos"));
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn binary_precedence_and_spans() {
        let src = "fn f() { let x = a + b * c; }";
        let f = parse(src);
        let body = first_fn(&f).body.as_ref().expect("body");
        let Stmt::Let { init: Some(e), .. } = &body.stmts[0] else {
            panic!("let stmt");
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &e.kind
        else {
            panic!("add at top: {e:?}");
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
        assert_eq!(&src[e.span.lo..e.span.hi], "a + b * c");
    }

    #[test]
    fn match_arms_and_wildcard() {
        let src = "fn f(k: Kind) -> u32 { match k { Kind::A => 1, Kind::B(x) => x, _ => 0 } }";
        let f = parse(src);
        let body = first_fn(&f).body.as_ref().expect("body");
        let Stmt::Expr(e) = &body.stmts[0] else {
            panic!()
        };
        let ExprKind::Match { arms, .. } = &e.kind else {
            panic!("match: {e:?}")
        };
        assert_eq!(arms.len(), 3);
        assert!(matches!(&arms[0].pat, Pat::Path(p) if p == &["Kind", "A"]));
        assert!(matches!(&arms[1].pat, Pat::TupleStruct { path, .. } if path == &["Kind", "B"]));
        assert!(matches!(arms[2].pat, Pat::Wild));
    }

    #[test]
    fn method_chain_tuple_index_and_cast() {
        let src = "fn f() { let v = x.at.0.max(y) as u64; }";
        let f = parse(src);
        let body = first_fn(&f).body.as_ref().expect("body");
        let Stmt::Let { init: Some(e), .. } = &body.stmts[0] else {
            panic!()
        };
        let ExprKind::Cast { expr, ty } = &e.kind else {
            panic!("cast: {e:?}")
        };
        assert_eq!(ty.last_seg(), Some("u64"));
        let ExprKind::MethodCall { recv, name, .. } = &expr.kind else {
            panic!("method: {expr:?}")
        };
        assert_eq!(name, "max");
        let ExprKind::Field { name, recv: r2, .. } = &recv.kind else {
            panic!("field: {recv:?}")
        };
        assert_eq!(name, "0");
        assert!(matches!(&r2.kind, ExprKind::Field { name, .. } if name == "at"));
    }

    #[test]
    fn struct_literal_vs_match_scrutinee() {
        // `match self.prob { … }` must not read the brace as a struct lit.
        let src = "fn f() { match x { A { .. } => 1, _ => 0 }; let p = Point { x: 1, ..base }; }";
        let f = parse(src);
        let body = first_fn(&f).body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 2);
        let Stmt::Let { init: Some(e), .. } = &body.stmts[1] else {
            panic!()
        };
        let ExprKind::StructLit { fields, rest, .. } = &e.kind else {
            panic!("struct lit: {e:?}")
        };
        assert_eq!(fields.len(), 1);
        assert!(rest.is_some());
    }

    #[test]
    fn closures_generics_macros() {
        let src = "fn f() { let s: Vec<Nanos> = v.iter().map(|e| e.at).collect::<Vec<_>>(); \
                   assert!(a + b <= c, \"msg {x}\", q); }";
        let f = parse(src);
        let body = first_fn(&f).body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 2);
        let Stmt::Let { ty: Some(t), .. } = &body.stmts[0] else {
            panic!()
        };
        assert_eq!(t.last_seg(), Some("Vec"));
        let Stmt::Expr(e) = &body.stmts[1] else {
            panic!()
        };
        let ExprKind::MacroCall { name, args } = &e.kind else {
            panic!("macro: {e:?}")
        };
        assert_eq!(name, "assert");
        assert!(args.len() >= 2, "{args:?}");
        assert!(matches!(
            args[0].kind,
            ExprKind::Binary { op: BinOp::Cmp, .. }
        ));
    }

    #[test]
    fn shift_and_generics_disambiguate() {
        let src = "fn f() { let a: Vec<Vec<u64>> = q; let b = x >> 3; }";
        let f = parse(src);
        let body = first_fn(&f).body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 2);
        let Stmt::Let { init: Some(e), .. } = &body.stmts[1] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Bit, .. }));
    }

    #[test]
    fn if_let_while_let_for() {
        let src = "fn f() { if let Some(x) = m.get(&k) { g(x); } \
                   while let Some(t) = q.pop() { h(t); } \
                   for e in 0..n { i(e); } }";
        let f = parse(src);
        let body = first_fn(&f).body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(
            &body.stmts[0],
            Stmt::Expr(Expr {
                kind: ExprKind::If { .. },
                ..
            })
        ));
        assert!(matches!(
            &body.stmts[2],
            Stmt::Expr(Expr {
                kind: ExprKind::Loop { pat: Some(_), .. },
                ..
            })
        ));
    }

    #[test]
    fn unbalanced_delimiters_fail() {
        assert!(parse_file("t.rs", "fn f() { (").is_err());
        assert!(parse_file("t.rs", "fn f() }").is_err());
    }

    #[test]
    fn fn_local_items_are_statements() {
        let src = "fn f() { enum Rx { Keep, Drop } let r = Rx::Keep; }";
        let f = parse(src);
        let body = first_fn(&f).body.as_ref().expect("body");
        assert!(matches!(&body.stmts[0], Stmt::Item(b) if matches!(**b, Item::Enum { .. })));
    }
}
