//! Machine-readable finding emitters: plain JSON and SARIF 2.1.0.
//!
//! Both are hand-written string builders (the crate is dependency-free
//! by design). The SARIF output is the minimal valid subset GitHub code
//! scanning ingests: one run, one rule descriptor per distinct rule,
//! one result per finding with a physical location.

use crate::parse::ParseFailure;
use crate::{Finding, Rule};

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON report:
/// `{ "findings": [...], "parse_errors": [...], "files_scanned": N }`.
pub fn to_json(findings: &[Finding], failures: &[ParseFailure], scanned: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"fixable\": {}}}",
            json_escape(&f.path),
            f.line,
            f.col,
            f.rule.id(),
            json_escape(&f.message),
            f.fix.is_some(),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"parse_errors\": [");
    for (i, e) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(&e.path),
            e.line,
            json_escape(&e.message),
        ));
    }
    if !failures.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"files_scanned\": {scanned}\n}}\n"));
    out
}

/// Render findings as SARIF 2.1.0 for GitHub code scanning.
pub fn to_sarif(findings: &[Finding], failures: &[ParseFailure]) -> String {
    // Rule descriptors, one per distinct rule seen (plus the parse error
    // pseudo-rule when any file failed to parse).
    let mut rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();

    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"simlint\",\n          \
         \"informationUri\": \"https://github.com/\",\n          \"rules\": [",
    );
    let mut first = true;
    for r in &rules {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            r.id(),
            json_escape(r.summary()),
        ));
    }
    if !failures.is_empty() {
        if !first {
            out.push(',');
        }
        out.push_str(
            "\n            {\"id\": \"parse\", \"shortDescription\": \
             {\"text\": \"simlint could not parse this file\"}}",
        );
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");

    let mut first = true;
    let mut push_result = |out: &mut String,
                           rule_id: &str,
                           level: &str,
                           path: &str,
                           line: usize,
                           col: usize,
                           msg: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
                "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"{}\",\n          \
                 \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
                 {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
                 \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}\n          ]\n        }}",
                rule_id,
                level,
                json_escape(msg),
                json_escape(path),
                line.max(1),
                col.max(1),
            ));
    };
    for f in findings {
        push_result(
            &mut out,
            f.rule.id(),
            "error",
            &f.path,
            f.line,
            f.col,
            &f.message,
        );
    }
    for e in failures {
        push_result(&mut out, "parse", "warning", &e.path, e.line, 1, &e.message);
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Fix, Rule};

    fn sample() -> Vec<Finding> {
        vec![Finding {
            path: "crates/dcsim/src/a.rs".into(),
            line: 3,
            col: 9,
            rule: Rule::U2,
            message: "escape with \"quotes\"".into(),
            fix: Some(Fix {
                span: crate::lex::Span { lo: 0, hi: 2 },
                replacement: ".as_u64()".into(),
            }),
        }]
    }

    #[test]
    fn json_has_finding_fields_and_escapes() {
        let j = to_json(&sample(), &[], 12);
        assert!(j.contains("\"rule\": \"U2\""));
        assert!(j.contains("\"line\": 3"));
        assert!(j.contains("\"col\": 9"));
        assert!(j.contains("\"fixable\": true"));
        assert!(j.contains("escape with \\\"quotes\\\""));
        assert!(j.contains("\"files_scanned\": 12"));
    }

    #[test]
    fn sarif_has_schema_rule_and_location() {
        let s = to_sarif(&sample(), &[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"U2\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("\"startColumn\": 9"));
        // Exactly one rule descriptor for the one distinct rule.
        assert_eq!(s.matches("\"shortDescription\"").count(), 1);
    }

    #[test]
    fn sarif_reports_parse_failures_as_warnings() {
        let fail = crate::parse::ParseFailure {
            path: "crates/dcsim/src/broken.rs".into(),
            line: 7,
            message: "unbalanced delimiter".into(),
        };
        let s = to_sarif(&[], &[fail]);
        assert!(s.contains("\"ruleId\": \"parse\""));
        assert!(s.contains("\"level\": \"warning\""));
    }

    #[test]
    fn empty_reports_are_valid_shape() {
        let j = to_json(&[], &[], 0);
        assert!(j.contains("\"findings\": []"));
        let s = to_sarif(&[], &[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
