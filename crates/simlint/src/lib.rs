//! `simlint` — the workspace's determinism/invariant static-analysis pass.
//!
//! The paper's figures are reproducible only because every run is
//! bit-deterministic. The golden-fingerprint tests catch a regression *after*
//! it changed results; this crate prevents the usual sources from entering
//! the tree at all. It is a hermetic, dependency-free line/token-level
//! scanner in the spirit of the in-repo `minijson`: a small hand-rolled
//! lexer strips string literals and comments, then per-line token rules
//! flag constructs that are forbidden in simulation code.
//!
//! # Rules
//!
//! | id | forbids | scope |
//! |----|---------|-------|
//! | D1 | `HashMap`/`HashSet` with the default `RandomState` hasher | sim crates |
//! | D2 | wall-clock reads (`Instant`, `SystemTime`) | everywhere but `bench` |
//! | D3 | ambient randomness (`thread_rng`, `rand::`, `getrandom`, `RandomState`) | everywhere |
//! | D4 | lossy float→integer casts on time/byte quantities | sim crates, except `units.rs` |
//! | D5 | `.unwrap()` / `.expect("")` without an invariant message | sim crates |
//!
//! *Sim crates* are `dcsim`, `netsim`, `core` (faircc), `cc-*`, `fairsim`,
//! and the workspace root's `src/`, `tests/`, and `examples/`. The support
//! crates (`minijson`, `workloads`, `metrics`, `fluid`, `simlint` itself)
//! and the timing harness (`bench`, which legitimately reads the wall
//! clock) get the reduced rule set shown above.
//!
//! # Suppression
//!
//! A finding is suppressed by a comment on the same line, or on a
//! comment-only line directly above:
//!
//! ```text
//! let k = (us / interval).ceil() as usize; // simlint: allow(D4) — bounded count
//! ```
//!
//! Multiple ids separate with commas: `simlint: allow(D1, D5)`.
//!
//! # Heuristics, stated plainly
//!
//! This is a token scanner, not a type checker. D4 in particular flags a
//! line only when an integer cast (`as u64` and friends) co-occurs with
//! float evidence on the same line (`f64`/`f32` in any token, or a
//! `.round()`/`.ceil()`/`.floor()` call). Casts split across lines can
//! evade it; the runtime `sim-audit` layer is the backstop for what the
//! scanner cannot see.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One of the five determinism/invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Default-hasher `HashMap`/`HashSet` in sim crates.
    D1,
    /// Wall-clock reads outside `bench`.
    D2,
    /// Ambient randomness anywhere.
    D3,
    /// Lossy float→integer casts on unit quantities outside `units.rs`.
    D4,
    /// `.unwrap()` / empty-message `.expect()` in sim crates.
    D5,
}

impl Rule {
    /// Every rule, in id order.
    pub const ALL: [Rule; 5] = [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::D5];

    /// The short id used in reports and suppression comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
        }
    }

    /// One-line description for `--explain` output.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => {
                "std HashMap/HashSet iterate in RandomState order; use BTreeMap/BTreeSet \
                 or an explicitly seeded hasher in sim crates"
            }
            Rule::D2 => {
                "wall-clock reads (Instant/SystemTime) make sim logic time-dependent; \
                 only the bench crate may time things"
            }
            Rule::D3 => {
                "ambient randomness (thread_rng/rand::/getrandom/RandomState) breaks \
                 seeded reproducibility; use dcsim::DetRng"
            }
            Rule::D4 => {
                "float→integer casts on time/byte quantities truncate platform-sensitively; \
                 route them through the allowlisted units.rs helpers"
            }
            Rule::D5 => {
                ".unwrap()/.expect(\"\") hides the violated invariant; use a typed error \
                 or .expect(\"why this cannot fail\")"
            }
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as displayed (relative to the scan root).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rule set a file gets, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Full rule set: the deterministic simulation stack.
    Sim,
    /// Support code (minijson, workloads, metrics, fluid, simlint): only the
    /// workspace-wide rules D2 and D3.
    Support,
    /// The timing harness: D3 only (it exists to read the wall clock).
    Bench,
}

/// Classify a workspace-relative path into a rule scope.
///
/// Anything not recognizably inside a support crate — including the root
/// package's `src/`, `tests/`, and `examples/`, and out-of-tree files such
/// as the self-test fixtures — gets the full sim rule set.
pub fn scope_of(path: &str) -> Scope {
    let norm = path.replace('\\', "/");
    if let Some(rest) = norm.split("crates/").nth(1) {
        let krate = rest.split('/').next().unwrap_or("");
        return match krate {
            "bench" => Scope::Bench,
            "minijson" | "workloads" | "metrics" | "fluid" | "simlint" => Scope::Support,
            _ => Scope::Sim,
        };
    }
    Scope::Sim
}

/// A source line after lexing: executable code with string-literal contents
/// replaced by placeholders, plus the concatenated comment text.
#[derive(Debug, Default, Clone)]
struct StrippedLine {
    code: String,
    comment: String,
}

/// Strip comments and string/char literal contents, preserving line
/// structure. Non-empty string literals become `"s"`, empty ones stay
/// `""` (so D5 can distinguish `.expect("")` from `.expect("msg")`).
fn strip_source(src: &str) -> Vec<StrippedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<StrippedLine> = vec![StrippedLine::default()];
    let mut i = 0;

    // Push a char to the current line's code, tracking newlines.
    fn newline(lines: &mut Vec<StrippedLine>) {
        lines.push(StrippedLine::default());
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        if c == '\n' {
            newline(&mut lines);
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && next == Some('/') {
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            let last = lines.len() - 1;
            lines[last].comment.push_str(&text);
            i = j;
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1;
            let mut j = i + 2;
            let mut seg_start = i;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else if chars[j] == '\n' {
                    // Attribute the comment text line by line.
                    let text: String = chars[seg_start..j].iter().collect();
                    let last = lines.len() - 1;
                    lines[last].comment.push_str(&text);
                    newline(&mut lines);
                    seg_start = j + 1;
                    j += 1;
                } else {
                    j += 1;
                }
            }
            let text: String = chars[seg_start..j.min(chars.len())].iter().collect();
            let last = lines.len() - 1;
            lines[last].comment.push_str(&text);
            i = j;
            continue;
        }

        // Raw / byte string literals: r"...", r#"..."#, b"...", br#"..."#.
        let prev_is_ident = {
            let last = lines.len() - 1;
            lines[last]
                .code
                .chars()
                .last()
                .is_some_and(|p| p.is_alphanumeric() || p == '_')
        };
        if (c == 'r' || c == 'b') && !prev_is_ident {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            let is_raw = c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'));
            if chars.get(j) == Some(&'"') && (is_raw || hashes == 0) {
                // Scan to the closing quote (+ matching hashes for raw).
                let body_start = j + 1;
                let mut k = body_start;
                loop {
                    match chars.get(k) {
                        None => break,
                        Some('\n') => {
                            newline(&mut lines);
                            k += 1;
                        }
                        Some('\\') if !is_raw => k += 2,
                        Some('"') => {
                            let close = (1..=hashes).all(|h| chars.get(k + h) == Some(&'#'));
                            if close {
                                k += 1 + hashes;
                                break;
                            }
                            k += 1;
                        }
                        Some(_) => k += 1,
                    }
                }
                let nonempty = k > body_start + 1 + hashes;
                let last = lines.len() - 1;
                lines[last]
                    .code
                    .push_str(if nonempty { "\"s\"" } else { "\"\"" });
                i = k;
                continue;
            }
            // Not a literal prefix: plain identifier char.
            let last = lines.len() - 1;
            lines[last].code.push(c);
            i += 1;
            continue;
        }

        // Ordinary string literal.
        if c == '"' {
            let mut k = i + 1;
            loop {
                match chars.get(k) {
                    None => break,
                    Some('\\') => k += 2,
                    Some('\n') => {
                        newline(&mut lines);
                        k += 1;
                    }
                    Some('"') => {
                        k += 1;
                        break;
                    }
                    Some(_) => k += 1,
                }
            }
            let nonempty = k > i + 2;
            let last = lines.len() - 1;
            lines[last]
                .code
                .push_str(if nonempty { "\"s\"" } else { "\"\"" });
            i = k;
            continue;
        }

        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no
        // closing quote right after one char) is a lifetime.
        if c == '\'' {
            let is_char = matches!(
                (chars.get(i + 1), chars.get(i + 2)),
                (Some('\\'), _) | (Some(_), Some('\''))
            );
            if is_char {
                let mut k = i + 1;
                if chars.get(k) == Some(&'\\') {
                    k += 2;
                    // Skip extended escapes like '\u{1F600}'.
                    while k < chars.len() && chars[k] != '\'' {
                        k += 1;
                    }
                } else {
                    k += 1;
                }
                if chars.get(k) == Some(&'\'') {
                    k += 1;
                }
                let last = lines.len() - 1;
                lines[last].code.push_str("' '");
                i = k;
                continue;
            }
        }

        let last = lines.len() - 1;
        lines[last].code.push(c);
        i += 1;
    }
    lines
}

/// Whether `code` contains `word` as a standalone identifier.
fn has_ident(code: &str, word: &str) -> bool {
    find_ident(code, word).is_some()
}

/// Byte offset of the first standalone occurrence of identifier `word`.
fn find_ident(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len().max(1);
    }
    None
}

/// Whether `code` calls method `name` (an identifier preceded by `.` and
/// followed, after whitespace, by `(`).
fn has_method_call(code: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_ident(&code[from..], name).map(|p| p + from) {
        let before_dot = code[..at].trim_end().ends_with('.');
        let after = code[at + name.len()..].trim_start();
        if before_dot && after.starts_with('(') {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// Whether `code` contains `ident ::` (a path rooted at `ident`).
fn has_path_root(code: &str, ident: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_ident(&code[from..], ident).map(|p| p + from) {
        let after = code[at + ident.len()..].trim_start();
        if after.starts_with("::") {
            return true;
        }
        from = at + ident.len();
    }
    false
}

const INT_CAST_TARGETS: [&str; 10] = [
    "u64", "u32", "u16", "u8", "usize", "i64", "i32", "i16", "i8", "isize",
];

/// D4 evidence: does the line cast to an integer type with `as`?
fn has_int_cast(code: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_ident(&code[from..], "as").map(|p| p + from) {
        let after = code[at + 2..].trim_start();
        if INT_CAST_TARGETS.iter().any(|t| {
            after.starts_with(t)
                && !after[t.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
        }) {
            return true;
        }
        from = at + 2;
    }
    false
}

/// D4 evidence: does the line plausibly involve floating-point values?
fn has_float_evidence(code: &str) -> bool {
    code.contains("f64")
        || code.contains("f32")
        || has_method_call(code, "round")
        || has_method_call(code, "ceil")
        || has_method_call(code, "floor")
        || has_float_literal(code)
}

/// Whether the line contains a float literal (`8.0`, `1_000.5`, `1e9`).
/// Hex literals and tuple-field access (`self.0`) are excluded.
fn has_float_literal(code: &str) -> bool {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if !b[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // A numeric token only counts when it starts one (not `x.0`, `id2`).
        let prev_ok = i == 0 || {
            let p = b[i - 1];
            !(p.is_ascii_alphanumeric() || p == b'_' || p == b'.')
        };
        let start = i;
        let mut j = i;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.') {
            j += 1;
        }
        let tok = &b[start..j];
        let hex = tok.len() > 1 && tok[0] == b'0' && (tok[1] == b'x' || tok[1] == b'X');
        if prev_ok && !hex {
            for (p, &c) in tok.iter().enumerate() {
                let next_digit = tok.get(p + 1).is_some_and(|n| n.is_ascii_digit());
                if c == b'.' && next_digit {
                    return true; // 8.0 — not 1.max(2)
                }
                if (c == b'e' || c == b'E') && p > 0 && tok[p - 1].is_ascii_digit() && next_digit {
                    return true; // 1e9
                }
            }
        }
        i = j;
    }
    false
}

/// Parse `simlint: allow(D1, D4)` style suppressions out of comment text.
fn parse_suppressions(comment: &str) -> Vec<Rule> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("simlint: allow(") {
        let args = &rest[at + "simlint: allow(".len()..];
        if let Some(close) = args.find(')') {
            for part in args[..close].split(',') {
                if let Some(r) = Rule::parse(part) {
                    out.push(r);
                }
            }
            rest = &args[close..];
        } else {
            break;
        }
    }
    out
}

/// Scan one file's source text. `display_path` drives both scope
/// classification and the paths embedded in findings.
pub fn scan_source(display_path: &str, src: &str) -> Vec<Finding> {
    let scope = scope_of(display_path);
    let file_name = Path::new(display_path)
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_default();
    let lines = strip_source(src);

    // Suppression map: rule -> suppressed on line k (0-based).
    let mut suppressed: Vec<Vec<Rule>> = vec![Vec::new(); lines.len() + 1];
    for (k, line) in lines.iter().enumerate() {
        let rules = parse_suppressions(&line.comment);
        if rules.is_empty() {
            continue;
        }
        suppressed[k].extend(rules.iter().copied());
        if line.code.trim().is_empty() {
            // Comment-only line: the suppression covers the next line too.
            suppressed[k + 1].extend(rules.iter().copied());
        }
    }

    let mut findings = Vec::new();
    let mut push = |k: usize, rule: Rule, message: String, sup: &[Rule]| {
        if !sup.contains(&rule) {
            findings.push(Finding {
                path: display_path.to_string(),
                line: k + 1,
                rule,
                message,
            });
        }
    };

    for (k, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let sup = &suppressed[k];

        // D1: default-hasher hash collections in sim code.
        if scope == Scope::Sim
            && (has_ident(code, "HashMap") || has_ident(code, "HashSet"))
            && !has_ident(code, "with_hasher")
            && !has_ident(code, "BuildHasher")
        {
            push(
                k,
                Rule::D1,
                "HashMap/HashSet with the default RandomState hasher iterates in \
                 nondeterministic order; use BTreeMap/BTreeSet or a seeded hasher"
                    .into(),
                sup,
            );
        }

        // D2: wall-clock reads outside bench.
        if scope != Scope::Bench && (has_ident(code, "Instant") || has_ident(code, "SystemTime")) {
            push(
                k,
                Rule::D2,
                "wall-clock access (Instant/SystemTime) in simulation code; \
                 simulated time comes from the engine clock, timing belongs in crates/bench"
                    .into(),
                sup,
            );
        }

        // D3: ambient randomness anywhere.
        if has_ident(code, "thread_rng")
            || has_ident(code, "getrandom")
            || has_ident(code, "RandomState")
            || has_path_root(code, "rand")
        {
            push(
                k,
                Rule::D3,
                "ambient randomness (thread_rng/rand::/getrandom/RandomState); \
                 all randomness must flow from a seeded dcsim::DetRng"
                    .into(),
                sup,
            );
        }

        // D4: lossy float→int casts on unit quantities outside units.rs.
        if scope == Scope::Sim
            && file_name != "units.rs"
            && has_int_cast(code)
            && has_float_evidence(code)
        {
            push(
                k,
                Rule::D4,
                "lossy float→integer cast on a unit quantity; use the allowlisted \
                 units.rs helpers (BitRate::from_bps_f64 / Nanos::from_ns_f64)"
                    .into(),
                sup,
            );
        }

        // D5: undocumented panics in sim code.
        if scope == Scope::Sim {
            if has_method_call(code, "unwrap") {
                push(
                    k,
                    Rule::D5,
                    ".unwrap() hides the invariant it relies on; use a typed error or \
                     .expect(\"why this cannot fail\")"
                        .into(),
                    sup,
                );
            }
            if code.contains(".expect(\"\")") {
                push(
                    k,
                    Rule::D5,
                    ".expect(\"\") documents nothing; state the invariant in the message".into(),
                    sup,
                );
            }
        }
    }
    findings
}

/// Directories never descended into during a tree walk.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Recursively collect the `.rs` files under `root`, sorted for
/// deterministic report order.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan every `.rs` file under `root`. Returns `(findings, files_scanned)`.
pub fn scan_tree(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let files = collect_rust_files(root)?;
    let n = files.len();
    let mut findings = Vec::new();
    for path in files {
        let display = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        findings.extend(scan_source(&display, &src));
    }
    Ok((findings, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_in(path: &str, src: &str) -> Vec<Rule> {
        let mut r: Vec<Rule> = scan_source(path, src).into_iter().map(|f| f.rule).collect();
        r.sort();
        r.dedup();
        r
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = "let x = \"HashMap Instant .unwrap()\"; // HashMap in comment\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "let x = r#\"thread_rng HashSet\"#;\nlet y = b\"Instant\";\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn multiline_strings_and_block_comments_keep_line_numbers() {
        let src = "let s = \"line one\nline two\";\n/* block\n comment */\nlet m: HashMap<u32, u32> = HashMap::new();\n";
        let f = scan_source("crates/netsim/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive char-literal scanner would swallow from 'a to the next
        // quote and hide the HashMap behind it.
        let src = "fn f<'a>(x: &'a u32) {}\nlet m = HashMap::new();\n";
        let f = scan_source("crates/dcsim/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn d1_seeded_hasher_is_allowed() {
        let src = "let m: HashMap<u32, u32, S> = HashMap::with_hasher(seeded);\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn d1_only_in_sim_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_in("crates/dcsim/src/a.rs", src), vec![Rule::D1]);
        assert_eq!(rules_in("tests/foo.rs", src), vec![Rule::D1]);
        assert!(rules_in("crates/minijson/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d2_everywhere_but_bench() {
        let src = "let t0 = Instant::now();\n";
        assert_eq!(rules_in("crates/dcsim/src/engine.rs", src), vec![Rule::D2]);
        assert_eq!(rules_in("crates/workloads/src/lib.rs", src), vec![Rule::D2]);
        assert!(rules_in("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d3_everywhere_including_bench() {
        let src = "let r = rand::thread_rng();\n";
        let got = rules_in("crates/bench/src/lib.rs", src);
        assert_eq!(got, vec![Rule::D3]);
    }

    #[test]
    fn d3_detrng_is_fine() {
        let src = "let mut rng = DetRng::new(7); let v = rng.below(10);\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn d4_flags_float_casts_and_allows_units_rs() {
        let src = "let r = BitRate((x * 8.0 / secs).round() as u64);\n";
        assert_eq!(rules_in("crates/core/src/cc.rs", src), vec![Rule::D4]);
        assert!(rules_in("crates/dcsim/src/units.rs", src).is_empty());
        // Integer-only casts carry no float evidence.
        let ok = "let slot = (t >> shift) as usize;\n";
        assert!(rules_in("crates/dcsim/src/wheel.rs", ok).is_empty());
    }

    #[test]
    fn d5_unwrap_flagged_expect_with_message_ok() {
        assert_eq!(
            rules_in("crates/netsim/src/port.rs", "let v = x.unwrap();\n"),
            vec![Rule::D5]
        );
        assert_eq!(
            rules_in("crates/netsim/src/port.rs", "let v = x.expect(\"\");\n"),
            vec![Rule::D5]
        );
        assert!(rules_in(
            "crates/netsim/src/port.rs",
            "let v = x.expect(\"backlog checked above\");\n"
        )
        .is_empty());
        // unwrap_or and friends are fine.
        assert!(rules_in(
            "crates/netsim/src/port.rs",
            "let v = x.unwrap_or(0); let w = y.unwrap_or_else(f);\n"
        )
        .is_empty());
    }

    #[test]
    fn suppression_same_line_and_line_above() {
        let same = "let k = x.ceil() as usize; // simlint: allow(D4) — bounded count\n";
        assert!(rules_in("crates/fairsim/src/a.rs", same).is_empty());
        let above = "// simlint: allow(D4) — bounded count\nlet k = x.ceil() as usize;\n";
        assert!(rules_in("crates/fairsim/src/a.rs", above).is_empty());
        // The wrong rule id does not suppress.
        let wrong = "let k = x.ceil() as usize; // simlint: allow(D1)\n";
        assert_eq!(rules_in("crates/fairsim/src/a.rs", wrong), vec![Rule::D4]);
        // A suppression only reaches one line down.
        let far = "// simlint: allow(D4)\n\nlet k = x.ceil() as usize;\n";
        assert_eq!(rules_in("crates/fairsim/src/a.rs", far), vec![Rule::D4]);
    }

    #[test]
    fn suppression_lists_multiple_rules() {
        let src = "let m = HashMap::new(); let v = m.get(&k).unwrap(); // simlint: allow(D1, D5)\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn finding_display_format() {
        let f = scan_source("crates/dcsim/src/a.rs", "let v = x.unwrap();\n");
        let line = format!("{}", f[0]);
        assert!(
            line.starts_with("crates/dcsim/src/a.rs:1: error[D5]:"),
            "{line}"
        );
    }

    #[test]
    fn scope_classification() {
        assert_eq!(scope_of("crates/dcsim/src/engine.rs"), Scope::Sim);
        assert_eq!(scope_of("crates/cc-hpcc/src/lib.rs"), Scope::Sim);
        assert_eq!(scope_of("crates/bench/src/lib.rs"), Scope::Bench);
        assert_eq!(scope_of("crates/minijson/src/lib.rs"), Scope::Support);
        assert_eq!(scope_of("crates/simlint/src/lib.rs"), Scope::Support);
        assert_eq!(scope_of("tests/determinism.rs"), Scope::Sim);
        assert_eq!(scope_of("examples/quickstart.rs"), Scope::Sim);
    }
}
